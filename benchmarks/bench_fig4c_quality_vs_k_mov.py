"""Figure 4(c): quality vs k on MOV.

Paper shape: quality falls with k, but MOV (about 2 alternatives per
x-tuple) stays well above the synthetic database (10 per x-tuple) at
equal x-tuple counts.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig4a, fig4c
from repro.core.tp import compute_quality_tp


def test_fig4c_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig4c, scale, results_dir)
    scores = table.column("S")
    assert all(a > b for a, b in zip(scores, scores[1:]))


def test_mov_quality_above_synthetic(benchmark, scale):
    k = min(15, scale.k_max)
    mov = benchmark.pedantic(
        compute_quality_tp,
        args=(workloads.mov_ranked(scale.mov_m), k),
        rounds=scale.repeats,
        iterations=1,
    ).quality
    synthetic = compute_quality_tp(
        workloads.synthetic_ranked(scale.clean_m), k
    ).quality
    assert mov > synthetic


@pytest.mark.parametrize("k", [1, 15, 30])
def test_tp_quality_mov_at_k(benchmark, scale, k):
    ranked = workloads.mov_ranked(scale.mov_m)
    benchmark.pedantic(
        compute_quality_tp, args=(ranked, k), rounds=scale.repeats, iterations=1
    )
