"""Ablation: RandU's candidate pool ("nonzero" vs "all").

The paper does not say whether RandU draws from every x-tuple or only
from those that can affect the quality (the candidate set Z).  DESIGN.md
defaults to the charitable reading ("nonzero"); this bench quantifies
how much that choice matters: drawing from all 5000 x-tuples when only
~50 carry quality mass wastes almost the whole budget.
"""

import statistics

import pytest

from repro.bench import Table
from repro.bench import workloads
from repro.cleaning.improvement import expected_improvement
from repro.cleaning.random_cleaners import RandUCleaner


def test_pool_choice_dominates_randu(benchmark, scale, results_dir):
    k = min(15, scale.k_max)
    budget = min(100, scale.budget_max)
    problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)

    def mean_improvement(candidates):
        return statistics.fmean(
            expected_improvement(
                problem, RandUCleaner(seed=s, candidates=candidates).plan(problem)
            )
            for s in range(5)
        )

    nonzero = benchmark.pedantic(
        mean_improvement, args=("nonzero",), rounds=1, iterations=1
    )
    everything = mean_improvement("all")

    table = Table(
        experiment="ablation_randu_pool",
        title=f"RandU candidate pool (m={scale.clean_m}, C={budget})",
        columns=["pool", "mean_improvement"],
        notes="'nonzero' = the paper-ambiguous choice DESIGN.md defaults to",
    )
    table.add_row("nonzero (Z)", nonzero)
    table.add_row("all x-tuples", everything)
    table.save(results_dir)
    print()
    print(table.format())
    assert nonzero > everything
