"""Figure 6(f): improvement vs budget on MOV.

Paper shape: identical ordering to the synthetic data (DP >= Greedy >>
RandP >= RandU) with smaller absolute improvements -- MOV's quality is
higher to start with, so there is less ambiguity to remove.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig6f
from repro.cleaning.greedy import GreedyCleaner


def test_fig6f_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig6f, scale, results_dir)
    for _, dp, greedy, randp, randu in table.rows:
        assert dp >= greedy - 1e-9
        assert greedy >= randu - 1e-9
    dp_curve = table.column("DP")
    assert all(a <= b + 1e-9 for a, b in zip(dp_curve, dp_curve[1:]))


@pytest.mark.parametrize("budget", [100, 1_000])
def test_greedy_on_mov(benchmark, scale, budget):
    if budget > scale.budget_max:
        pytest.skip("beyond current scale")
    k = min(15, scale.k_max)
    problem = workloads.mov_cleaning_problem(scale.mov_m, k, budget)
    benchmark.pedantic(
        GreedyCleaner().plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
