"""Figure 4(b): quality vs uncertainty pdf (G10..G100, uniform).

Paper shape: a tighter Gaussian concentrates each x-tuple's mass on few
alternatives, so the top-k answer is less ambiguous:
G10 > G30 > G50 > G100 > uniform.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig4b
from repro.core.tp import compute_quality_tp


def test_fig4b_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig4b, scale, results_dir)
    scores = dict(zip(table.column("pdf"), table.column("S")))
    assert scores["G10"] > scores["G30"] >= scores["G50"] >= scores["G100"]
    assert scores["G100"] >= scores["Uniform"]


@pytest.mark.parametrize("sigma", [10.0, 100.0])
def test_tp_quality_per_sigma(benchmark, scale, sigma):
    ranked = workloads.synthetic_ranked(scale.clean_m, sigma)
    k = min(15, scale.k_max)
    benchmark.pedantic(
        compute_quality_tp, args=(ranked, k), rounds=scale.repeats, iterations=1
    )
