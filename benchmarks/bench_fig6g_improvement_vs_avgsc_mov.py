"""Figure 6(g): improvement vs average sc-probability on MOV.

Paper shape: as on the synthetic data, every planner's improvement
rises with the average success probability.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig6g
from repro.cleaning.dp import DPCleaner


def test_fig6g_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig6g, scale, results_dir)
    for column in ("DP", "Greedy"):
        curve = table.column(column)
        assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:]))
    assert table.column("RandU")[-1] > table.column("RandU")[0]


@pytest.mark.parametrize("low", [0.0, 0.8])
def test_dp_on_mov_at_avg_sc(benchmark, scale, low):
    k = min(15, scale.k_max)
    budget = min(100, scale.budget_max)
    problem = workloads.mov_cleaning_problem(
        scale.mov_m, k, budget, sc_distribution="uniform", sc_low=low, sc_high=1.0
    )
    benchmark.pedantic(
        DPCleaner().plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
