"""Figure 6(c): improvement vs average sc-probability (uniform [x, 1]).

Paper shape: raising the average success probability helps every
planner -- each probe is more likely to land, so the same budget buys
more expected improvement.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig6c
from repro.cleaning.dp import DPCleaner


def test_fig6c_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig6c, scale, results_dir)
    for column in ("DP", "Greedy", "RandP", "RandU"):
        curve = table.column(column)
        # Allow tiny local noise for the random planners, but the
        # overall trend must be increasing.
        assert curve[-1] > curve[0]
    dp_curve = table.column("DP")
    assert all(a <= b + 1e-9 for a, b in zip(dp_curve, dp_curve[1:]))


@pytest.mark.parametrize("low", [0.0, 0.8])
def test_dp_at_avg_sc(benchmark, scale, low):
    k = min(15, scale.k_max)
    budget = min(100, scale.budget_max)
    problem = workloads.synthetic_cleaning_problem(
        scale.clean_m, k, budget, sc_distribution="uniform", sc_low=low, sc_high=1.0
    )
    benchmark.pedantic(
        DPCleaner().plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
