#!/usr/bin/env python3
"""Compare successive ``BENCH_pr*.json`` perf snapshots and gate CI.

Usage::

    python benchmarks/compare.py                  # latest vs previous
    python benchmarks/compare.py OLD.json NEW.json
    python benchmarks/compare.py --strict         # fail across hosts too
    python benchmarks/compare.py --threshold 0.3  # custom gate

Walks both snapshot documents and pairs every ``*_ms`` measurement
that exists in both, addressing grid points by their identifying
fields (``n``, ``k``, ``workers``, ...) rather than list position, so
re-ordered or extended sweeps still line up.  A measurement that got
more than ``--threshold`` (default 20%) slower fails the run with
exit status 1.

Two escape hatches keep the gate honest instead of flaky:

* Pairs where both sides are below ``--noise-floor-ms`` (default
  5 ms) are reported but never fail -- timer jitter dominates there.
* When the snapshots were taken on different hosts (``platform`` or
  ``python`` differ), regressions are downgraded to warnings unless
  ``--strict`` is passed: cross-host wall-clock deltas measure the
  hardware, not the code.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Fields that identify a grid point inside a snapshot list (in
#: priority order); used to address measurements stably across PRs.
IDENTITY_FIELDS = (
    "n",
    "k",
    "m",
    "workers",
    "budget",
    "threads",
    "block_rows",
    "backend",
)

#: Keys whose numeric values are tracked measurements.
MEASUREMENT_SUFFIX = "_ms"

DEFAULT_THRESHOLD = 0.20
DEFAULT_NOISE_FLOOR_MS = 5.0

BENCH_PATTERN = re.compile(r"BENCH_pr(\d+)\.json$")


def _identity(item: Dict) -> str:
    parts = [
        f"{field}={item[field]}"
        for field in IDENTITY_FIELDS
        if isinstance(item.get(field), (int, float, str))
    ]
    return "[" + ",".join(parts) + "]" if parts else ""


def walk_measurements(node, path: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(address, value)`` for every ``*_ms`` number in a doc."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if (
                key.endswith(MEASUREMENT_SUFFIX)
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                yield child, float(value)
            else:
                yield from walk_measurements(value, child)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            if isinstance(item, dict):
                suffix = _identity(item) or f"[{index}]"
            else:
                suffix = f"[{index}]"
            yield from walk_measurements(item, path + suffix)


def compare_snapshots(
    old: Dict,
    new: Dict,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_ms: float = DEFAULT_NOISE_FLOOR_MS,
) -> Tuple[List[str], List[str]]:
    """``(regressions, report_lines)`` for every shared measurement.

    A regression is a shared ``*_ms`` address whose new value exceeds
    the old by more than ``threshold`` *and* where at least one side
    is above the noise floor.
    """
    old_values = dict(walk_measurements(old))
    new_values = dict(walk_measurements(new))
    shared = sorted(set(old_values) & set(new_values))
    regressions: List[str] = []
    lines: List[str] = []
    for address in shared:
        before, after = old_values[address], new_values[address]
        ratio = (after / before - 1.0) if before > 0 else 0.0
        marker = " "
        if ratio > threshold:
            if before < noise_floor_ms and after < noise_floor_ms:
                marker = "~"  # over threshold but within timer noise
            else:
                marker = "!"
                regressions.append(
                    f"{address}: {before:.1f} ms -> {after:.1f} ms "
                    f"(+{ratio * 100.0:.0f}%)"
                )
        lines.append(
            f"{marker} {address}: {before:.2f} -> {after:.2f} ms "
            f"({ratio * 100.0:+.0f}%)"
        )
    if not shared:
        lines.append("(no shared *_ms measurements between the snapshots)")
    return regressions, lines


def same_host(old: Dict, new: Dict) -> bool:
    """Whether both snapshots were measured on comparable hosts."""
    return old.get("platform") == new.get("platform") and old.get(
        "python"
    ) == new.get("python")


def discover_pair(root: Path) -> Optional[Tuple[Path, Path]]:
    """The two most recent ``BENCH_pr<N>.json`` files under ``root``."""
    candidates = []
    for path in root.glob("BENCH_pr*.json"):
        match = BENCH_PATTERN.search(path.name)
        if match:
            candidates.append((int(match.group(1)), path))
    candidates.sort()
    if len(candidates) < 2:
        return None
    return candidates[-2][1], candidates[-1][1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "snapshots",
        nargs="*",
        metavar="PATH",
        help="OLD.json NEW.json (default: two latest BENCH_pr*.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional slowdown that fails the run (default 0.20)",
    )
    parser.add_argument(
        "--noise-floor-ms",
        type=float,
        default=DEFAULT_NOISE_FLOOR_MS,
        help="pairs entirely below this never fail (default 5 ms)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on regressions even across different hosts",
    )
    args = parser.parse_args(argv)

    if len(args.snapshots) == 2:
        old_path, new_path = Path(args.snapshots[0]), Path(args.snapshots[1])
    elif not args.snapshots:
        pair = discover_pair(Path(__file__).resolve().parent.parent)
        if pair is None:
            print("compare: fewer than two BENCH_pr*.json snapshots; nothing to do")
            return 0
        old_path, new_path = pair
    else:
        parser.error("pass zero or exactly two snapshot paths")

    old = json.loads(old_path.read_text(encoding="utf-8"))
    new = json.loads(new_path.read_text(encoding="utf-8"))
    regressions, lines = compare_snapshots(
        old, new, threshold=args.threshold, noise_floor_ms=args.noise_floor_ms
    )
    print(f"comparing {old_path.name} -> {new_path.name}")
    for line in lines:
        print(line)

    if regressions:
        comparable = same_host(old, new)
        heading = (
            f"{len(regressions)} measurement(s) regressed more than "
            f"{args.threshold * 100.0:.0f}%:"
        )
        print(heading, file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        if comparable or args.strict:
            return 1
        print(
            "hosts differ between snapshots "
            f"({old.get('platform')!r} / py{old.get('python')} vs "
            f"{new.get('platform')!r} / py{new.get('python')}); "
            "treating regressions as warnings (pass --strict to fail)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
