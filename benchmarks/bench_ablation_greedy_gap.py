"""Ablation: how close is Greedy to the DP optimum, really?

The paper asserts Greedy is "close to optimal" by visual overlap in
Figure 6(a).  This bench puts numbers on it: the relative gap
``(DP - Greedy) / DP`` across budgets, which the knapsack boundary-item
argument predicts to be tiny (one geometric-tail item at most).
"""

import pytest

from repro.bench import Table
from repro.bench import workloads
from repro.bench.figures import _budgets
from repro.cleaning.dp import DPCleaner
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.improvement import expected_improvement


def test_greedy_gap_across_budgets(benchmark, scale, results_dir):
    k = min(15, scale.k_max)
    table = Table(
        experiment="ablation_greedy_gap",
        title=f"Greedy's optimality gap vs budget (m={scale.clean_m}, k={k})",
        columns=["C", "DP", "Greedy", "relative_gap"],
        notes="gap = (DP - Greedy) / DP; paper claims visual overlap",
    )

    def run():
        table.rows.clear()
        for budget in _budgets(scale):
            if budget > 10_000:
                continue  # exact DP only (no pruning) for a fair gap
            problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)
            dp_value = expected_improvement(problem, DPCleaner().plan(problem))
            greedy_value = expected_improvement(
                problem, GreedyCleaner().plan(problem)
            )
            gap = 0.0 if dp_value == 0.0 else (dp_value - greedy_value) / dp_value
            table.add_row(budget, dp_value, greedy_value, gap)
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    table.save(results_dir)
    print()
    print(table.format())
    for gap in table.column("relative_gap"):
        assert gap < 0.01, "greedy must stay within 1% of optimal"
