"""Figure 5(d): PT-k vs quality time under sharing, on MOV.

Paper shape: same split as Figure 5(b) but faster in absolute terms --
MOV has far fewer tuples with nonzero top-k probability (75 vs 579 at
k=15 in the paper), so both the query and the quality step shrink.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig5d
from repro.queries.engine import evaluate


def test_fig5d_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig5d, scale, results_dir)
    shares = table.column("quality_share")
    assert shares[-1] < 0.5


def test_mov_nonzero_set_smaller_than_synthetic(benchmark, scale):
    k = min(15, scale.k_max)
    report = benchmark.pedantic(
        evaluate,
        args=(workloads.mov_ranked(scale.mov_m), k),
        rounds=scale.repeats,
        iterations=1,
    )
    mov_nonzero = sum(
        1 for _ in report.rank_probabilities.nonzero_tuples()
    )
    synthetic = evaluate(workloads.synthetic_ranked(scale.clean_m), k)
    synthetic_nonzero = sum(
        1 for _ in synthetic.rank_probabilities.nonzero_tuples()
    )
    # Paper: 75 vs 579 at k=15 -- MOV's candidate set is much smaller.
    assert mov_nonzero < synthetic_nonzero


@pytest.mark.parametrize("k", [15, 100])
def test_evaluate_mov(benchmark, scale, k):
    if k > scale.k_max:
        pytest.skip("beyond current scale")
    ranked = workloads.mov_ranked(scale.mov_m)
    benchmark.pedantic(evaluate, args=(ranked, k), rounds=scale.repeats, iterations=1)
