"""Figure 5(b): PT-k evaluation time vs the extra quality time (sharing).

Paper shape: with sharing, the quality step only adds the weight
computation and the weighted sum on top of the query's PSR pass; its
share of the total falls from 33.3% at k=15 to 6.3% at k=100 (PSR's
cost grows with k, the quality extra barely does).
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig5b
from repro.core.tp import compute_quality_tp
from repro.queries.psr import compute_rank_probabilities


def test_fig5b_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig5b, scale, results_dir)
    shares = table.column("quality_share")
    # The quality share of the total must shrink as k grows.
    assert shares[-1] < shares[0]
    assert shares[-1] < 0.5


@pytest.mark.parametrize("k", [15, 100])
def test_quality_extra_with_sharing(benchmark, scale, k):
    if k > scale.k_max:
        pytest.skip("beyond current scale")
    ranked = workloads.synthetic_ranked(scale.synth_m)
    rank_probs = compute_rank_probabilities(ranked, k)
    benchmark.pedantic(
        compute_quality_tp,
        args=(ranked, k),
        kwargs={"rank_probabilities": rank_probs},
        rounds=max(scale.repeats, 3),
        iterations=1,
    )
