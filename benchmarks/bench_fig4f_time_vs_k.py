"""Figure 4(f): quality time vs k, PWR vs TP.

Paper shape: PWR's cost is exponential in k (the pw-result count is
bounded by n^k) while TP is O(kn); their curves cross almost
immediately and PWR drops out (capped, '-') for moderate k.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig4f
from repro.core.pwr import ResultLimitExceeded, compute_quality_pwr
from repro.core.tp import compute_quality_tp


def test_fig4f_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig4f, scale, results_dir)
    # TP present everywhere; PWR capped at the largest k.
    assert all(t is not None for t in table.column("TP_ms"))
    assert table.rows[-1][1] is None


@pytest.mark.parametrize("k", [1, 2])
def test_pwr_at_small_k(benchmark, scale, k):
    ranked = workloads.synthetic_ranked(scale.synth_m)
    try:
        benchmark.pedantic(
            compute_quality_pwr,
            args=(ranked, k),
            kwargs={"max_results": scale.pwr_max_results},
            rounds=scale.repeats,
            iterations=1,
        )
    except ResultLimitExceeded:
        pytest.skip("pw-result count exceeds cap at this scale")


@pytest.mark.parametrize("k", [1, 10, 100])
def test_tp_at_k(benchmark, scale, k):
    if k > scale.k_max:
        pytest.skip("beyond current scale")
    ranked = workloads.synthetic_ranked(scale.synth_m)
    benchmark.pedantic(
        compute_quality_tp, args=(ranked, k), rounds=scale.repeats, iterations=1
    )
