"""Figure 4(a): quality score vs k on the synthetic database.

Paper shape: the quality score decreases (more pw-results, more
ambiguity) as k grows.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig4a
from repro.core.tp import compute_quality_tp


def test_fig4a_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig4a, scale, results_dir)
    scores = table.column("S")
    assert all(a > b for a, b in zip(scores, scores[1:])), (
        "quality must fall monotonically with k"
    )


@pytest.mark.parametrize("k", [1, 15, 30])
def test_tp_quality_at_k(benchmark, scale, k):
    ranked = workloads.synthetic_ranked(scale.clean_m)
    result = benchmark.pedantic(
        compute_quality_tp, args=(ranked, k), rounds=scale.repeats, iterations=1
    )
    assert result.quality <= 0.0
