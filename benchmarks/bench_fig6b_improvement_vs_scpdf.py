"""Figure 6(b): improvement vs sc-pdf shape.

Paper shape: DP and Greedy exploit the sc-probabilities when planning,
so a wider sc-pdf (more x-tuples with high success probability to pick
from) raises their improvement; the random planners ignore
sc-probabilities, and since all tested pdfs share mean 0.5 their
improvement barely moves.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig6b
from repro.cleaning.greedy import GreedyCleaner


def test_fig6b_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig6b, scale, results_dir)
    rows = {row[0]: row for row in table.rows}
    # The paper's robust contrast: the uniform sc-pdf (largest
    # dispersion) maximizes the informed planners' improvement.  The
    # fine ordering among the three normals is a single-draw effect
    # (the paper plots one realization as well), so it is not asserted.
    assert rows["uniform"][1] >= max(r[1] for r in table.rows) - 1e-9  # DP
    assert rows["uniform"][2] >= max(r[2] for r in table.rows) - 1e-9  # Greedy
    # Informed planners dominate the randoms under every sc-pdf.
    for _, dp, greedy, randp, randu in table.rows:
        assert dp >= greedy - 1e-9
        assert greedy >= randp - 1e-9
        assert greedy >= randu - 1e-9


@pytest.mark.parametrize("sigma", [0.13, 0.3])
def test_greedy_under_normal_scpdf(benchmark, scale, sigma):
    k = min(15, scale.k_max)
    budget = min(100, scale.budget_max)
    problem = workloads.synthetic_cleaning_problem(
        scale.clean_m, k, budget, sc_distribution="normal", sc_sigma=sigma
    )
    benchmark.pedantic(
        GreedyCleaner().plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
