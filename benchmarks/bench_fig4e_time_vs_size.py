"""Figure 4(e): quality time vs database size at k=15, PWR vs TP.

Paper shape: at k=15 the pw-result count explodes with size, so PWR
"cannot return the quality score in a reasonable time" (here: exceeds
the result cap and is reported as '-'), while TP stays near-linear.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig4e
from repro.core.tp import compute_quality_tp


def test_fig4e_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig4e, scale, results_dir)
    tp_times = table.column("TP_ms")
    assert all(t is not None for t in tp_times)
    # PWR must have failed (capped) at the largest size while TP ran.
    assert table.rows[-1][1] is None or table.rows[-1][1] > table.rows[-1][2]


@pytest.mark.parametrize("tuples", [1_000, 10_000])
def test_tp_at_size(benchmark, scale, tuples):
    if tuples > scale.synth_m * 10:
        pytest.skip("beyond current scale")
    ranked = workloads.synthetic_ranked(tuples // 10)
    k = min(15, scale.k_max)
    benchmark.pedantic(
        compute_quality_tp, args=(ranked, k), rounds=scale.repeats, iterations=1
    )
