"""Ablations on the DP planner: item pruning and knapsack backend.

DESIGN.md commits to two engineering choices the paper does not have to
make (its C++ can brute-force the exact sweep): (1) pruning
value-negligible probe-ladder items at large budgets, (2) a
numpy-vectorized knapsack DP.  These benches quantify both: pruning
must not change the achieved improvement beyond float noise while
cutting planning time; the numpy backend must beat the pure-Python
reference.
"""

import pytest

from repro.bench import Table, time_call
from repro.bench import workloads
from repro.cleaning.dp import DPCleaner
from repro.cleaning.improvement import expected_improvement


@pytest.fixture(scope="module")
def problem(scale):
    k = min(15, scale.k_max)
    budget = min(1_000, scale.budget_max)
    return workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)


def test_pruning_preserves_improvement(benchmark, scale, problem, results_dir):
    exact = DPCleaner()
    pruned = DPCleaner(prune_tolerance=1e-14)
    exact_plan = exact.plan(problem)
    pruned_plan = benchmark.pedantic(
        pruned.plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
    exact_value = expected_improvement(problem, exact_plan)
    pruned_value = expected_improvement(problem, pruned_plan)
    assert pruned_value == pytest.approx(exact_value, rel=1e-9)

    table = Table(
        experiment="ablation_dp_pruning",
        title=f"DP item pruning at C={problem.budget}",
        columns=["variant", "time_ms", "improvement"],
    )
    table.add_row(
        "exact",
        time_call(lambda: exact.plan(problem), repeats=scale.repeats),
        exact_value,
    )
    table.add_row(
        "pruned(1e-14)",
        time_call(lambda: pruned.plan(problem), repeats=scale.repeats),
        pruned_value,
    )
    table.save(results_dir)
    print()
    print(table.format())


def test_numpy_backend_beats_python(benchmark, scale, problem, results_dir):
    numpy_planner = DPCleaner(use_numpy=True)
    python_planner = DPCleaner(use_numpy=False)
    numpy_plan = benchmark.pedantic(
        numpy_planner.plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
    python_plan = python_planner.plan(problem)
    assert expected_improvement(problem, numpy_plan) == pytest.approx(
        expected_improvement(problem, python_plan), abs=1e-9
    )

    numpy_ms = time_call(lambda: numpy_planner.plan(problem), repeats=scale.repeats)
    python_ms = time_call(
        lambda: python_planner.plan(problem), repeats=1
    )
    table = Table(
        experiment="ablation_knapsack_backend",
        title=f"knapsack backend at C={problem.budget}",
        columns=["backend", "time_ms"],
    )
    table.add_row("numpy", numpy_ms)
    table.add_row("pure-python", python_ms)
    table.save(results_dir)
    print()
    print(table.format())
    assert numpy_ms < python_ms
