"""Figure 6(a): expected quality improvement vs budget (synthetic).

Paper shape: DP (optimal) on top, Greedy indistinguishably close,
RandP above RandU, and every curve climbs toward |S| as the budget
grows (with enough probes everything can be cleaned).
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig6a
from repro.cleaning.dp import DPCleaner
from repro.cleaning.greedy import GreedyCleaner


def test_fig6a_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig6a, scale, results_dir)
    for _, dp, greedy, randp, randu in table.rows:
        assert dp >= greedy - 1e-9
        assert greedy >= randp - 1e-9
    # Improvement grows with budget for the optimal planner.
    dp_curve = table.column("DP")
    assert all(a <= b + 1e-9 for a, b in zip(dp_curve, dp_curve[1:]))


@pytest.mark.parametrize("budget", [100, 1_000])
@pytest.mark.parametrize(
    "planner", [DPCleaner(), GreedyCleaner()], ids=["DP", "Greedy"]
)
def test_planner_at_budget(benchmark, scale, budget, planner):
    if budget > scale.budget_max:
        pytest.skip("beyond current scale")
    k = min(15, scale.k_max)
    problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)
    plan = benchmark.pedantic(
        planner.plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
    assert plan.is_feasible(problem)
