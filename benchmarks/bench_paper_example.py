"""Tables I-II / Figures 2-3: the paper's worked example.

Regenerates the pw-result distributions of udb1 and udb2 and asserts
the paper's exact numbers (seven results at quality -2.55; four at
-1.85), while timing all three quality algorithms on the toy input.
"""

import pytest

from conftest import run_figure
from repro.bench.figures import fig2_fig3
from repro.core.quality import compute_quality_detailed
from repro.datasets.paper import udb1, udb2


def test_fig2_3_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig2_fig3, scale, results_dir)
    udb1_rows = [r for r in table.rows if r[0] == "udb1"]
    udb2_rows = [r for r in table.rows if r[0] == "udb2"]
    assert len(udb1_rows) == 7
    assert len(udb2_rows) == 4
    assert udb1_rows[0][3] == pytest.approx(-2.55, abs=0.005)
    assert udb2_rows[0][3] == pytest.approx(-1.85, abs=0.005)


@pytest.mark.parametrize("method", ["pw", "pwr", "tp"])
@pytest.mark.parametrize("factory", [udb1, udb2], ids=["udb1", "udb2"])
def test_quality_method_on_toy(benchmark, scale, method, factory):
    ranked = factory().ranked()
    result = benchmark.pedantic(
        compute_quality_detailed,
        args=(ranked, 2),
        kwargs={"method": method},
        rounds=max(scale.repeats, 3),
        iterations=1,
    )
    assert result.quality < 0.0
