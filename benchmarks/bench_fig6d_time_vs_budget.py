"""Figure 6(d): planning time vs budget.

Paper shape: DP's knapsack grows with C (the paper reports minutes at
C = 1e5 in C++); Greedy is orders of magnitude cheaper; RandP pays a
small weighting overhead over RandU.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig6d
from repro.cleaning.random_cleaners import RandPCleaner, RandUCleaner


def test_fig6d_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig6d, scale, results_dir)
    for _, dp_ms, greedy_ms, randp_ms, randu_ms in table.rows:
        assert dp_ms > greedy_ms
    # DP cost must grow with the budget.
    dp_curve = table.column("DP_ms")
    assert dp_curve[-1] > dp_curve[0]


@pytest.mark.parametrize(
    "planner", [RandPCleaner(), RandUCleaner()], ids=["RandP", "RandU"]
)
def test_random_planner_time(benchmark, scale, planner):
    k = min(15, scale.k_max)
    budget = min(1_000, scale.budget_max)
    problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)
    benchmark.pedantic(
        planner.plan, args=(problem,), rounds=max(scale.repeats, 3), iterations=1
    )
