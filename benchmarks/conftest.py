"""Shared fixtures for the benchmark suite.

Run with ``pytest benchmarks/ --benchmark-only``.  Each figure's series
table is written to ``benchmarks/results/<experiment>.txt``; the
pytest-benchmark summary reports the per-point timings.  Workload scale
is selected with ``REPRO_BENCH_SCALE=quick|default|full`` (see
``repro.bench.harness``).
"""

from pathlib import Path

import pytest

from repro.bench import current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def results_dir():
    directory = Path(__file__).parent / "results"
    directory.mkdir(exist_ok=True)
    return directory


def run_figure(benchmark, figure_fn, scale, results_dir):
    """Generate one figure's table exactly once, timed, and save it."""
    table = benchmark.pedantic(figure_fn, args=(scale,), rounds=1, iterations=1)
    table.save(results_dir)
    print()
    print(table.format())
    return table
