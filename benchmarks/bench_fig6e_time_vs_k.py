"""Figure 6(e): planning time vs k.

Paper shape: k only enters the planners through the candidate set size
|Z| (more tuples have nonzero top-k probability at larger k), so DP and
Greedy grow mildly with k while the random planners stay flat.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig6e
from repro.cleaning.dp import DPCleaner
from repro.cleaning.greedy import GreedyCleaner


def test_fig6e_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig6e, scale, results_dir)
    # |Z| grows with k (the paper: 79 at k=15 -> 98 at k=30).
    candidates = table.column("num_candidates")
    assert candidates[-1] >= candidates[0]
    for row in table.rows:
        _, _, dp_ms, greedy_ms, randp_ms, randu_ms = row
        assert dp_ms >= greedy_ms


@pytest.mark.parametrize("k", [5, 30])
@pytest.mark.parametrize(
    "planner", [DPCleaner(), GreedyCleaner()], ids=["DP", "Greedy"]
)
def test_planner_at_k(benchmark, scale, k, planner):
    if k > scale.k_max:
        pytest.skip("beyond current scale")
    budget = min(100, scale.budget_max)
    problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)
    benchmark.pedantic(
        planner.plan, args=(problem,), rounds=scale.repeats, iterations=1
    )
