"""Figure 5(a): query+quality time, sharing vs non-sharing.

Paper shape: computing the quality from the query's own PSR pass
(Section IV-C) cuts the combined time substantially -- to about 52% of
the back-to-back pipeline at k=100 (the non-sharing pipeline runs PSR
twice, and PSR dominates).
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig5a
from repro.queries.engine import evaluate, evaluate_without_sharing


def test_fig5a_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig5a, scale, results_dir)
    fractions = table.column("sharing_fraction")
    # Sharing must never be slower, and at the largest k it must save
    # a substantial fraction (paper: ~48%; we require >= 25%).
    assert all(f < 1.05 for f in fractions)
    assert fractions[-1] < 0.75


@pytest.mark.parametrize("k", [15, 100])
@pytest.mark.parametrize("mode", ["sharing", "non_sharing"])
def test_pipeline(benchmark, scale, k, mode):
    if k > scale.k_max:
        pytest.skip("beyond current scale")
    ranked = workloads.synthetic_ranked(scale.synth_m)
    fn = evaluate if mode == "sharing" else evaluate_without_sharing
    benchmark.pedantic(fn, args=(ranked, k), rounds=scale.repeats, iterations=1)
