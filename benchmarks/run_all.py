#!/usr/bin/env python3
"""Regenerate every table/figure of the paper in one run.

Usage::

    python benchmarks/run_all.py [--scale quick|default|full] [--only figXX ...]
    python benchmarks/run_all.py --json BENCH_pr2.json [--quick]
    python benchmarks/run_all.py --json bench-ci.json --smoke

Without ``--json``: prints each experiment's series in the paper's
layout and writes them to ``benchmarks/results/``.  This is the script
EXPERIMENTS.md numbers come from.

With ``--json PATH``: skips the figures and emits a machine-readable
performance snapshot instead (PSR pass times per backend at
n ∈ {1k, 10k, 100k} and k ∈ {15, 100}, QuerySession cold/warm timings,
and the adaptive-cleaning delta-engine section with its per-round
speedup over the cold-derive path) so successive PRs have a perf
trajectory to compare against.

``--smoke`` shrinks the snapshot to n = 500 so it finishes in seconds;
the adaptive section still cross-validates the delta kernels against
cold passes and makes the run fail on disagreement, which is what CI
executes on every push.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "full"),
        default=os.environ.get("REPRO_BENCH_SCALE", "default"),
        help="workload scale (see repro.bench.harness)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="FIG",
        help="run only these experiments (e.g. fig4a fig6a)",
    )
    parser.add_argument(
        "--results-dir",
        default=Path(__file__).parent / "results",
        type=Path,
        help="directory for the .txt tables",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="emit a machine-readable perf snapshot to PATH instead of "
        "regenerating figures",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with --json: skip the pure-python backend at n > 10k",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="with --json: tiny n=500 snapshot (seconds, not minutes) "
        "that still cross-validates the incremental kernels -- the "
        "per-push CI gate",
    )
    args = parser.parse_args(argv)
    os.environ["REPRO_BENCH_SCALE"] = args.scale

    if args.json is not None:
        from repro.bench.perf import format_snapshot, write_perf_snapshot

        start = time.perf_counter()
        snapshot = write_perf_snapshot(args.json, quick=args.quick, smoke=args.smoke)
        print(format_snapshot(snapshot))
        print(
            f"\nsnapshot written to {args.json} "
            f"in {time.perf_counter() - start:.1f}s"
        )
        return 0

    from repro.bench import ALL_FIGURES, current_scale

    scale = current_scale()
    names = args.only if args.only else list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; pick from {list(ALL_FIGURES)}")

    print(f"# scale = {scale.name} "
          f"(synth_m={scale.synth_m}, clean_m={scale.clean_m}, "
          f"mov_m={scale.mov_m}, budget_max={scale.budget_max})")
    total_start = time.perf_counter()
    for name in names:
        start = time.perf_counter()
        table = ALL_FIGURES[name](scale)
        elapsed = time.perf_counter() - start
        print()
        print(table.format())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        table.save(args.results_dir)
    print(f"\nall done in {time.perf_counter() - total_start:.1f}s; "
          f"tables in {args.results_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
