"""Figure 5(c): evaluation time of U-kRanks / Global-topk / PT-k vs the
extra quality time.

Paper shape: the three semantics cost about the same (the PSR pass
dominates all of them), so the quality overhead is a small slice of any
query's total evaluation time.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig5c
from repro.queries import global_topk, ptk, ukranks
from repro.queries.psr import compute_rank_probabilities


def test_fig5c_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig5c, scale, results_dir)
    for row in table.rows:
        _, uk, gt, pt, quality_extra = row
        slowest_query = max(uk, gt, pt)
        assert quality_extra < slowest_query


QUERY_FNS = {
    "ukranks": ukranks.answer_from_rank_probabilities,
    "global_topk": global_topk.answer_from_rank_probabilities,
    "ptk": lambda rp: ptk.answer_from_rank_probabilities(rp, 0.1),
}


@pytest.mark.parametrize("semantics", sorted(QUERY_FNS))
def test_query_semantics_time(benchmark, scale, semantics):
    ranked = workloads.synthetic_ranked(scale.synth_m)
    k = min(50, scale.k_max)

    def run():
        rank_probs = compute_rank_probabilities(ranked, k)
        return QUERY_FNS[semantics](rank_probs)

    benchmark.pedantic(run, rounds=scale.repeats, iterations=1)
