"""Ablation (extension): adaptive re-planning vs one-shot planning.

The paper plans once before any probe runs and leaves budget
re-investment to future work (Section V-A).  This bench measures what
that future work is worth: mean *realized* quality improvement of the
adaptive loop vs the one-shot plan, at equal budget, over many
simulated executions.
"""

import random
import statistics

import pytest

from repro.bench import Table
from repro.bench import workloads
from repro.cleaning.adaptive import clean_adaptively
from repro.cleaning.executor import execute_plan
from repro.cleaning.greedy import GreedyCleaner
from repro.core.tp import compute_quality_tp


def test_adaptive_vs_oneshot(benchmark, scale, results_dir):
    k = min(15, scale.k_max)
    budget = min(100, scale.budget_max)
    # A moderate size keeps the repeated TP re-evaluations cheap.
    m = min(scale.clean_m, 1_000)
    problem = workloads.synthetic_cleaning_problem(m, k, budget)
    db = workloads.synthetic_db(m)
    planner = GreedyCleaner()
    trials = 30 if scale.name != "quick" else 10
    rng = random.Random(12345)

    def trial_pair():
        adaptive = clean_adaptively(db, problem, planner, rng=rng)
        outcome = execute_plan(db, problem, planner.plan(problem), rng=rng)
        oneshot_after = compute_quality_tp(
            outcome.cleaned_db.ranked(), k
        ).quality
        return (
            adaptive.realized_improvement,
            oneshot_after - problem.quality,
        )

    pairs = [trial_pair() for _ in range(trials - 1)]
    pairs.append(benchmark.pedantic(trial_pair, rounds=1, iterations=1))
    adaptive_mean = statistics.fmean(p[0] for p in pairs)
    oneshot_mean = statistics.fmean(p[1] for p in pairs)

    table = Table(
        experiment="ablation_adaptive",
        title=f"adaptive vs one-shot planning (m={m}, C={budget}, {trials} trials)",
        columns=["strategy", "mean_realized_improvement"],
        notes="adaptive re-invests budget freed by early probe successes",
    )
    table.add_row("one-shot", oneshot_mean)
    table.add_row("adaptive", adaptive_mean)
    table.save(results_dir)
    print()
    print(table.format())
    # Re-planning must not systematically hurt (sampling noise allowed).
    assert adaptive_mean >= oneshot_mean - 0.1 * abs(oneshot_mean)
