"""Figure 4(d): quality time vs database size at k=5, PW vs PWR vs TP.

Paper shape: PW is exponential in the number of x-tuples (the authors
report 36.2 minutes at a mere 10 x-tuples) and falls off the chart
almost immediately; PWR is polynomial but grows with the pw-result
count; TP stays flat.
"""

import pytest

from conftest import run_figure
from repro.bench import workloads
from repro.bench.figures import fig4d
from repro.core.pw import compute_quality_pw
from repro.core.pwr import compute_quality_pwr
from repro.core.tp import compute_quality_tp


def test_fig4d_series(benchmark, scale, results_dir):
    table = run_figure(benchmark, fig4d, scale, results_dir)
    rows = {r[0]: r for r in table.rows}
    smallest = min(rows)
    _, pw_ms, pwr_ms, tp_ms = rows[smallest]
    # At the smallest size all three run; the ordering must hold.
    assert pw_ms is not None and pwr_ms is not None
    assert pw_ms > tp_ms
    # PW must blow up relative to TP even at toy sizes.
    largest_pw = max(size for size, row in rows.items() if row[1] is not None)
    assert rows[largest_pw][1] > 10 * rows[largest_pw][3]


@pytest.mark.parametrize("tuples", [20, 40])
def test_pw_small(benchmark, scale, tuples):
    ranked = workloads.synthetic_ranked(tuples // 10)
    benchmark.pedantic(
        compute_quality_pw, args=(ranked, 5), rounds=scale.repeats, iterations=1
    )


@pytest.mark.parametrize("tuples", [20, 100])
def test_pwr_small(benchmark, scale, tuples):
    ranked = workloads.synthetic_ranked(tuples // 10)
    benchmark.pedantic(
        compute_quality_pwr, args=(ranked, 5), rounds=scale.repeats, iterations=1
    )


@pytest.mark.parametrize("tuples", [20, 100, 1000])
def test_tp_small(benchmark, scale, tuples):
    ranked = workloads.synthetic_ranked(tuples // 10)
    benchmark.pedantic(
        compute_quality_tp, args=(ranked, 5), rounds=scale.repeats, iterations=1
    )
