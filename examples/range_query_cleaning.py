#!/usr/bin/env python3
"""Range-query quality and cleaning: the [16] lineage, on this library.

The paper generalizes its predecessor [16] (Cheng, Chen, Xie, VLDB
2008), which handled PWS-quality and budgeted cleaning for *range and
max* queries.  This example exercises the library's range-query
extension on a wildfire-monitoring story: sensors report uncertain
temperatures, the operator watches the alert band [t_lo, t_hi], and a
limited probing budget should make the alert set as unambiguous as
possible.

It also shows why top-k needed a paper of its own: the range quality is
a closed form (per-sensor entropies add up), which this script verifies
against brute-force possible-world enumeration on a small database.

Run:  python examples/range_query_cleaning.py
"""

from repro.cleaning import (
    DPCleaner,
    GreedyCleaner,
    execute_plan,
    expected_improvement,
)
from repro.datasets.synthetic import (
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)
from repro.queries.range_query import (
    answer_range_query,
    build_range_cleaning_problem,
    compute_quality_range,
    compute_quality_range_bruteforce,
)

ALERT_BAND = (9_000.0, 10_000.0)  # the hottest decile of the domain
NUM_SENSORS = 600
BUDGET = 40


def main() -> None:
    # Closed form vs brute force on a tiny database first.
    tiny = generate_synthetic(num_xtuples=4, seed=1)
    closed = compute_quality_range(tiny, 2_000.0, 8_000.0).quality
    brute = compute_quality_range_bruteforce(tiny, 2_000.0, 8_000.0)
    print(f"closed-form vs possible-world quality on 4 sensors: "
          f"{closed:.6f} vs {brute:.6f}")
    assert abs(closed - brute) < 1e-9

    # The real scenario.
    db = generate_synthetic(num_xtuples=NUM_SENSORS, seed=17)
    low, high = ALERT_BAND
    answer = answer_range_query(db, low, high)
    quality = compute_quality_range(db, low, high)
    maybe = [(tid, p) for tid, p in answer.members if p < 0.999]
    print(f"\n{NUM_SENSORS} sensors; alert band [{low:.0f}, {high:.0f}]")
    print(f"candidate alert readings: {len(answer)} "
          f"({len(maybe)} of them uncertain)")
    print(f"range-query PWS-quality: {quality.quality:.3f}")

    costs = generate_costs(db, seed=18)
    sc = generate_sc_probabilities(db, low=0.4, high=1.0, seed=19)
    problem = build_range_cleaning_problem(db, low, high, costs, sc, BUDGET)
    print(f"\nsensors whose probing could matter: "
          f"{len(problem.candidate_indices())}")

    for planner in (DPCleaner(), GreedyCleaner()):
        plan = planner.plan(problem)
        print(f"{planner.name}: probe {len(plan)} sensors "
              f"({plan.total_operations} probes, "
              f"cost {plan.total_cost(problem)}/{BUDGET}), "
              f"expected improvement "
              f"{expected_improvement(problem, plan):.3f}")

    # Execute the optimal plan and re-measure.
    plan = DPCleaner().plan(problem)
    outcome = execute_plan(db, problem, plan)
    after = compute_quality_range(outcome.cleaned_db, low, high)
    print(f"\nafter probing ({outcome.num_succeeded} sensors confirmed): "
          f"quality {after.quality:.3f} (was {quality.quality:.3f})")


if __name__ == "__main__":
    main()
