#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the sensor database of Table I (udb1), answers the three
probabilistic top-k queries, scores the answer's ambiguity with the
PWS-quality, plans a budgeted cleaning, and executes it -- reproducing
the udb1 -> udb2 story of the paper's introduction.

Run:  python examples/quickstart.py
"""

from repro import (
    DPCleaner,
    build_cleaning_problem,
    compute_quality_pwr,
    evaluate,
    execute_plan,
)
from repro.cleaning import expected_improvement
from repro.datasets.paper import udb1


def main() -> None:
    db = udb1()
    print(f"database: {db.name} with {db.num_xtuples} sensors, "
          f"{db.num_tuples} candidate readings")

    # ------------------------------------------------------------------
    # 1. Query + quality in one shared pass (paper Section IV-C).
    # ------------------------------------------------------------------
    report = evaluate(db, k=2, threshold=0.4)
    print("\nPT-2 answer (threshold 0.4):", report.ptk.tids)
    print("U-kRanks winners:", [(w.rank, w.tid) for w in report.ukranks.winners])
    print("Global-top2:", report.global_topk.tids)
    print(f"PWS-quality: {report.quality_score:.4f}  (paper: -2.55)")

    # The pw-result distribution behind that score (Figure 2).
    distribution = compute_quality_pwr(db.ranked(), 2, collect=True).distribution
    print("\npw-results (Figure 2):")
    for result, probability in sorted(distribution.items(), key=lambda kv: -kv[1]):
        print(f"  ({', '.join(result)}): {probability:.3f}")

    # ------------------------------------------------------------------
    # 2. Plan cleaning under a budget (paper Section V).
    # ------------------------------------------------------------------
    costs = {"S1": 2, "S2": 2, "S3": 1, "S4": 3}       # probe costs
    sc = {"S1": 0.7, "S2": 0.7, "S3": 0.9, "S4": 1.0}  # success chances
    problem = build_cleaning_problem(report.quality, costs, sc, budget=3)
    plan = DPCleaner().plan(problem)
    print(f"\noptimal plan under budget 3: {dict(plan.operations)}")
    print(f"expected quality improvement: "
          f"{expected_improvement(problem, plan):.4f}")

    # ------------------------------------------------------------------
    # 3. Execute the probes and re-score.
    # ------------------------------------------------------------------
    outcome = execute_plan(db, problem, plan)
    after = evaluate(outcome.cleaned_db, k=2, threshold=0.4)
    print(f"\nprobes spent {outcome.cost_spent} of {outcome.cost_assigned} "
          f"budgeted units; {outcome.num_succeeded} sensor(s) confirmed")
    for record in outcome.records:
        status = f"revealed {record.revealed_tid}" if record.succeeded else "failed"
        print(f"  pclean({record.xid}) x{record.performed}: {status}")
    print(f"quality after cleaning: {after.quality_score:.4f} "
          f"(was {report.quality_score:.4f})")


if __name__ == "__main__":
    main()
