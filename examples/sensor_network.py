#!/usr/bin/env python3
"""Sensor-network monitoring: quality-aware probing under a budget.

The scenario motivating the paper's introduction: a base station keeps
the latest (stale, noisy) readings from thousands of sensors as
x-tuples, answers "which regions are hottest?" as a probabilistic
top-k query, and -- when the answer is too ambiguous -- spends limited
radio bandwidth probing sensors for fresh values.  Probes can fail
(packet loss), so the planner weighs cost, success probability, and
each sensor's contribution to the answer's ambiguity.

This example compares all four planners at several budgets and then
simulates actually executing the greedy plan, including failed probes.

Run:  python examples/sensor_network.py
"""

import random

from repro import (
    DPCleaner,
    GreedyCleaner,
    RandPCleaner,
    RandUCleaner,
    build_cleaning_problem,
    evaluate,
    execute_plan,
)
from repro.cleaning import expected_improvement
from repro.datasets.synthetic import (
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)

NUM_SENSORS = 800
K = 10
BUDGETS = (25, 100, 400)


def main() -> None:
    # Each sensor's reading is an x-tuple: ten discretized hypotheses
    # for the true temperature (Section VI's synthetic model).
    db = generate_synthetic(num_xtuples=NUM_SENSORS, sigma=100.0, seed=3)
    report = evaluate(db, k=K, threshold=0.1)
    print(f"{NUM_SENSORS} sensors, top-{K} hottest-region query")
    print(f"PT-{K} answer size: {len(report.ptk)}")
    print(f"PWS-quality before probing: {report.quality_score:.3f}")

    # Probing cost models radio hops (1..10); success probability models
    # link reliability.
    costs = generate_costs(db, seed=4)
    sc = generate_sc_probabilities(db, seed=5)

    print("\nexpected improvement by planner and budget:")
    print(f"{'budget':>8}  {'DP':>8}  {'Greedy':>8}  {'RandP':>8}  {'RandU':>8}")
    for budget in BUDGETS:
        problem = build_cleaning_problem(report.quality, costs, sc, budget)
        row = [budget]
        for planner in (DPCleaner(), GreedyCleaner(), RandPCleaner(), RandUCleaner()):
            plan = planner.plan(problem)
            row.append(expected_improvement(problem, plan))
        print(f"{row[0]:>8}  {row[1]:>8.3f}  {row[2]:>8.3f}  "
              f"{row[3]:>8.3f}  {row[4]:>8.3f}")

    # Execute the greedy plan at the middle budget and observe reality.
    budget = BUDGETS[1]
    problem = build_cleaning_problem(report.quality, costs, sc, budget)
    plan = GreedyCleaner().plan(problem)
    outcome = execute_plan(db, problem, plan, rng=random.Random(6))
    after = evaluate(outcome.cleaned_db, k=K, threshold=0.1)

    expected = expected_improvement(problem, plan)
    realized = after.quality_score - report.quality_score
    print(f"\ngreedy plan at budget {budget}: probe "
          f"{len(plan)} sensors, {plan.total_operations} operations")
    print(f"  probes performed: {outcome.cost_spent} cost units "
          f"({outcome.num_succeeded}/{len(outcome.records)} sensors confirmed)")
    print(f"  expected improvement: {expected:.3f}")
    print(f"  realized improvement: {realized:.3f}")
    print(f"  quality after probing: {after.quality_score:.3f}")


if __name__ == "__main__":
    main()
