#!/usr/bin/env python3
"""Comparing the quality-computation algorithms (a mini Figure 4(d)).

Runs PW, PWR, TP and the Monte-Carlo estimator on growing synthetic
databases and prints score agreement and wall-clock times -- a living
demonstration of why the paper needed TP: PW dies almost immediately,
PWR survives only small k/sizes, TP stays microscopic.

Run:  python examples/quality_algorithms.py
"""

import time

from repro import compute_quality_detailed
from repro.core.pwr import ResultLimitExceeded
from repro.datasets.synthetic import generate_synthetic

K = 5
SIZES = (20, 50, 100, 1000)  # tuples


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, (time.perf_counter() - start) * 1000.0


def main() -> None:
    print(f"top-{K} quality, synthetic databases (10 tuples per x-tuple)")
    header = f"{'tuples':>8}  {'algorithm':>11}  {'quality':>10}  {'time':>10}"
    print(header)
    print("-" * len(header))
    for size in SIZES:
        db = generate_synthetic(num_xtuples=size // 10, seed=42)
        ranked = db.ranked()

        rows = []
        if db.num_possible_worlds() <= 200_000:
            result, ms = timed(lambda: compute_quality_detailed(ranked, K, "pw"))
            rows.append(("PW", result.quality, f"{ms:9.1f}ms"))
        else:
            rows.append(("PW", None, "  skipped"))

        try:
            result, ms = timed(
                lambda: compute_quality_detailed(
                    ranked, K, "pwr", max_results=500_000
                )
            )
            rows.append(("PWR", result.quality, f"{ms:9.1f}ms"))
        except ResultLimitExceeded:
            rows.append(("PWR", None, "   capped"))

        result, ms = timed(lambda: compute_quality_detailed(ranked, K, "tp"))
        rows.append(("TP", result.quality, f"{ms:9.1f}ms"))

        result, ms = timed(
            lambda: compute_quality_detailed(
                ranked, K, "montecarlo", num_samples=5000
            )
        )
        rows.append(("MonteCarlo", result.quality, f"{ms:9.1f}ms"))

        for name, quality, when in rows:
            score = f"{quality:10.4f}" if quality is not None else "         -"
            print(f"{size:>8}  {name:>11}  {score}  {when:>10}")
        print()

    print("note: PW / PWR / TP agree to ~1e-9 wherever PW and PWR complete;")
    print("the Monte-Carlo estimate carries sampling error (see std_error).")


if __name__ == "__main__":
    main()
