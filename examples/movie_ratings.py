#!/usr/bin/env python3
"""Movie-rating curation: confirm ratings by phone under a call budget.

The paper's second motivating application: a rating database integrated
from multiple sources (the MOV dataset) stores, per (movie, viewer),
several alternative (date, rating) records with confidences.  A
"freshest high ratings" dashboard is a probabilistic top-k query over
``date + rating``.  Calling a viewer confirms their true rating -- if
they pick up -- and each call costs money.

This example runs the dashboard query, then uses the *inverse* cleaning
solver (a library extension; the paper's Section VII names it future
work) to answer: what is the cheapest calling campaign that removes 60%
of the answer's ambiguity?

Run:  python examples/movie_ratings.py
"""

from repro import build_cleaning_problem, evaluate, min_cost_plan
from repro.cleaning import expected_improvement, improvement_upper_bound
from repro.datasets.mov import generate_mov, mov_ranking
from repro.datasets.synthetic import generate_costs, generate_sc_probabilities

NUM_RATINGS = 2000
K = 15


def main() -> None:
    db = generate_mov(num_xtuples=NUM_RATINGS, seed=8)
    report = evaluate(db, k=K, threshold=0.1, ranking=mov_ranking())
    print(f"{NUM_RATINGS} (movie, viewer) rating entities; top-{K} dashboard")
    print(f"PT-{K} answer size: {len(report.ptk)}")
    print(f"PWS-quality: {report.quality_score:.3f}")

    top = report.global_topk.members[:5]
    print("\nmost likely dashboard entries:")
    for tid, probability in top:
        t = db.tuple(tid)
        print(f"  {tid}: rating={t.value['rating'] * 4 + 1:.0f}/5, "
              f"p(top-{K}) = {probability:.2f}")

    # Call costs (agent minutes) and pick-up probabilities.
    costs = generate_costs(db, low=1, high=5, seed=9)
    pickup = generate_sc_probabilities(db, low=0.3, high=0.95, seed=10)
    problem = build_cleaning_problem(report.quality, costs, pickup, budget=0)

    ceiling = improvement_upper_bound(problem)
    target = 0.6 * ceiling
    print(f"\nmax removable ambiguity: {ceiling:.3f} bits")
    print(f"target: 60% of that = {target:.3f} bits")

    for method in ("greedy", "dp"):
        solution = min_cost_plan(problem, target, method=method)
        print(f"\n{method}: cheapest campaign costs {solution.cost} "
              f"agent-minutes, {solution.plan.total_operations} calls to "
              f"{len(solution.plan)} viewers")
        print(f"  expected improvement: {solution.expected_improvement:.3f}")
        assert expected_improvement(problem, solution.plan) >= target - 1e-9

    # How the cheapest campaign allocates repeat calls: viewers with low
    # pick-up probability get several attempts.
    solution = min_cost_plan(problem, target, method="dp")
    repeats = sorted(
        solution.plan.operations.items(), key=lambda kv: -kv[1]
    )[:5]
    print("\nmost-retried viewers (low pick-up probability):")
    for xid, count in repeats:
        print(f"  {xid}: {count} calls (pick-up p = {pickup[xid]:.2f})")


if __name__ == "__main__":
    main()
