#!/usr/bin/env python3
"""Adaptive cleaning: re-investing budget that early successes free up.

The paper plans the whole probe schedule before the first probe runs
and explicitly leaves "how to use the rest of the resources" to future
work (Section V-A).  This example runs that future work -- the
library's adaptive loop (plan, execute, observe, re-plan) -- head to
head against one-shot planning over many simulated campaigns, and
reports the realized (not just expected) quality improvements.

Run:  python examples/adaptive_cleaning.py
"""

import random
import statistics

from repro import (
    GreedyCleaner,
    build_cleaning_problem,
    clean_adaptively,
    evaluate,
    execute_plan,
)
from repro.core.tp import compute_quality_tp
from repro.datasets.synthetic import (
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)

NUM_SENSORS = 400
K = 10
BUDGET = 60
TRIALS = 200


def main() -> None:
    db = generate_synthetic(num_xtuples=NUM_SENSORS, seed=21)
    report = evaluate(db, k=K)
    costs = generate_costs(db, seed=22)
    sc = generate_sc_probabilities(db, low=0.2, high=0.9, seed=23)
    problem = build_cleaning_problem(report.quality, costs, sc, BUDGET)
    planner = GreedyCleaner()
    print(f"{NUM_SENSORS} sensors, top-{K}, budget {BUDGET}")
    print(f"quality before cleaning: {report.quality_score:.3f}")

    rng = random.Random(24)
    oneshot_gains = []
    adaptive_gains = []
    adaptive_rounds = []
    for _ in range(TRIALS):
        outcome = execute_plan(db, problem, planner.plan(problem), rng=rng)
        after = compute_quality_tp(outcome.cleaned_db.ranked(), K).quality
        oneshot_gains.append(after - report.quality_score)

        result = clean_adaptively(db, problem, planner, rng=rng)
        adaptive_gains.append(result.realized_improvement)
        adaptive_rounds.append(len(result.rounds))

    def summarize(label, gains):
        mean = statistics.fmean(gains)
        stderr = statistics.stdev(gains) / len(gains) ** 0.5
        print(f"{label:>10}: mean realized improvement "
              f"{mean:.3f} +/- {1.96 * stderr:.3f} (95% CI)")
        return mean

    print(f"\n{TRIALS} simulated campaigns:")
    oneshot = summarize("one-shot", oneshot_gains)
    adaptive = summarize("adaptive", adaptive_gains)
    print(f"\nadaptive used {statistics.fmean(adaptive_rounds):.1f} "
          f"plan/execute rounds on average")
    if adaptive > oneshot:
        print(f"adaptive recovered {adaptive - oneshot:.3f} extra bits of "
              f"quality by re-investing saved probes")
    else:
        print("one-shot matched adaptive on this workload "
              "(few early successes to exploit)")


if __name__ == "__main__":
    main()
