"""Setuptools shim for legacy editable installs (offline environment).

All packaging metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
