#!/usr/bin/env sh
# Single entry point for everything CI gates on: repro-lint, ruff,
# mypy, and the tier-1 test suite.  `make check` calls this.
#
# repro-lint and pytest always run (they ship with the repo).  ruff
# and mypy run when installed and are reported as SKIPPED otherwise,
# so the script is useful both in CI (all tools present) and in a
# minimal dev environment -- a skip is loud, never silent.
set -u

fail=0

step() {
    name=$1
    shift
    echo "==> $name"
    if "$@"; then
        echo "==> $name: ok"
    else
        echo "==> $name: FAILED"
        fail=1
    fi
    echo
}

step "repro-lint" python -m repro.tooling.lint src

if command -v ruff >/dev/null 2>&1; then
    step "ruff" ruff check src tests benchmarks
else
    echo "==> ruff: SKIPPED (not installed; pip install -e '.[lint]')"
    echo
fi

if command -v mypy >/dev/null 2>&1; then
    step "mypy" mypy --strict src/repro
else
    echo "==> mypy: SKIPPED (not installed; pip install -e '.[typecheck]')"
    echo
fi

step "pytest" python -m pytest -q

if [ "$fail" -ne 0 ]; then
    echo "check: FAILED"
else
    echo "check: all gates passed"
fi
exit "$fail"
