# Developer entry points.  `make check` is the one command that runs
# every gate CI runs (repro-lint, ruff, mypy, tier-1 tests); the other
# targets run individual gates.

.PHONY: check lint ruff typecheck test bench

check:
	sh scripts/check.sh

lint:
	python -m repro.tooling.lint src

ruff:
	ruff check src tests benchmarks

typecheck:
	mypy --strict src/repro

test:
	python -m pytest -q

bench:
	python benchmarks/run_all.py --smoke
