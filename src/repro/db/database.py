"""The probabilistic database and its ranked (pre-sorted) view.

:class:`ProbabilisticDatabase` stores x-tuples (Section III-A of the
paper).  The quality and cleaning algorithms never consume the raw
database directly; they consume a :class:`RankedDatabase` -- the
database's tuples pre-sorted in descending rank order under a chosen
ranking function.  This mirrors the paper's standing assumption that
"tuples in D are arranged in descending order of ranks" (Section IV)
while paying the sort exactly once per (database, ranking) pair.

The ranked view's canonical storage is *columnar*: contiguous
``float64`` / ``int64`` NumPy arrays (``probabilities_array``,
``xtuple_indices_array``, ``scores_array``, ``completion_array``) that
the vectorized kernels consume directly.  The historical list
attributes (``probabilities``, ``xtuple_indices``, ``scores``,
``completion``) survive as lazily materialized views of those arrays,
so scalar code -- including the pure-Python reference backend -- keeps
working unchanged.

Incremental derivation
----------------------
Cleaning replaces exactly one x-tuple per successful probe, so the
ranked view supports *patched* derivation: :meth:`RankedDatabase.\
with_xtuple_replaced` / :meth:`RankedDatabase.with_xtuple_removed`
splice the changed x-tuple's rows out of / into the columnar arrays in
O(n) (``np.delete`` plus a ``np.searchsorted`` insert that replicates
the full sort's exact ``(-score, insertion index)`` tie-breaking)
instead of re-sorting, and return a :class:`RankDelta` describing the
affected rank window.  The delta is what the incremental PSR kernels
(:mod:`repro.queries.psr` / :mod:`repro.queries.psr_numpy`) and the
query engine (:meth:`repro.queries.engine.QuerySession.derive`) consume
to re-evaluate only the rows whose inputs moved.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.db.ranking import RankingFunction, by_value, score_column
from repro.db.tuples import ProbabilisticTuple, XTuple
from repro.exceptions import InvalidDatabaseError

#: Mirror of :data:`repro.queries.psr.SATURATION_EPSILON` (the queries
#: layer imports this one, so the two can never drift apart).  A factor
#: whose cumulative mass reaches ``1 - ε`` behaves as a certain
#: higher-ranked tuple in the PSR scan; the delta machinery uses the
#: same threshold to decide where an x-tuple swap stops affecting rows.
SATURATION_EPSILON = 1e-12


class ProbabilisticDatabase:
    """An x-tuple probabilistic database.

    The database is immutable by convention: cleaning produces *new*
    databases via :meth:`with_xtuple_replaced` rather than mutating in
    place, so that quality scores computed against one snapshot stay
    meaningful.

    Parameters
    ----------
    xtuples:
        The entities of the database, in insertion order.  Insertion
        order of their member tuples defines the tie-breaking order of
        the ranking (smaller index ranks higher on equal scores).
    name:
        Optional label used in reprs and benchmark output.
    """

    def __init__(self, xtuples: Iterable[XTuple], name: str = "") -> None:
        self._xtuples: Tuple[XTuple, ...] = tuple(xtuples)
        self.name = name
        self._by_xid: Optional[Dict[str, XTuple]] = {}
        self._by_tid: Optional[Dict[str, ProbabilisticTuple]] = {}
        self._insertion_index: Optional[Dict[str, int]] = {}
        index = 0
        for xt in self._xtuples:
            if xt.xid in self._by_xid:
                raise InvalidDatabaseError(f"duplicate x-tuple id {xt.xid!r}")
            self._by_xid[xt.xid] = xt
            for t in xt.alternatives:
                if t.tid in self._by_tid:
                    raise InvalidDatabaseError(
                        f"duplicate tuple id {t.tid!r} across x-tuples"
                    )
                self._by_tid[t.tid] = t
                self._insertion_index[t.tid] = index
                index += 1
        self._num_tuples = index

    @classmethod
    def _derived(
        cls, xtuples: Tuple[XTuple, ...], name: str, num_tuples: int
    ) -> "ProbabilisticDatabase":
        """Trusted fast-path constructor for cleaning derivations.

        Swapping one already-validated x-tuple inside an
        already-validated database cannot introduce duplicate ids, so
        every index build -- the O(m) x-tuple map included -- is
        deferred to first use (:meth:`xtuple` / :meth:`tuple` /
        :meth:`insertion_index`).  Internal use only -- arbitrary
        x-tuple collections must go through ``__init__``.
        """
        self = cls.__new__(cls)
        self._xtuples = tuple(xtuples)
        self.name = name
        self._by_xid = None
        self._by_tid = None
        self._insertion_index = None
        self._num_tuples = num_tuples
        return self

    def _xid_map(self) -> Dict[str, XTuple]:
        if self._by_xid is None:
            self._by_xid = {xt.xid: xt for xt in self._xtuples}
        return self._by_xid

    def _tuple_maps(
        self,
    ) -> Tuple[Dict[str, ProbabilisticTuple], Dict[str, int]]:
        """The per-tuple lookup maps, built lazily on derived databases."""
        if self._by_tid is None:
            by_tid: Dict[str, ProbabilisticTuple] = {}
            insertion: Dict[str, int] = {}
            index = 0
            for xt in self._xtuples:
                for t in xt.alternatives:
                    by_tid[t.tid] = t
                    insertion[t.tid] = index
                    index += 1
            self._by_tid = by_tid
            self._insertion_index = insertion
        return self._by_tid, self._insertion_index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def xtuples(self) -> Tuple[XTuple, ...]:
        """The entities in insertion order."""
        return self._xtuples

    @property
    def num_xtuples(self) -> int:
        """Number of entities ``m``."""
        return len(self._xtuples)

    @property
    def num_tuples(self) -> int:
        """Total number of alternatives ``n`` across all entities."""
        return self._num_tuples

    def __len__(self) -> int:
        return self.num_tuples

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        """Iterate over all tuples in insertion order."""
        for xt in self._xtuples:
            yield from xt.alternatives

    def __contains__(self, tid: str) -> bool:
        return tid in self._tuple_maps()[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ProbabilisticDatabase{label}: {self.num_xtuples} x-tuples, "
            f"{self.num_tuples} tuples>"
        )

    def xtuple(self, xid: str) -> XTuple:
        """Return the x-tuple with identifier ``xid``."""
        try:
            return self._xid_map()[xid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}") from None

    def tuple(self, tid: str) -> ProbabilisticTuple:
        """Return the tuple with identifier ``tid``."""
        try:
            return self._tuple_maps()[0][tid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown tuple id {tid!r}") from None

    def has_xtuple(self, xid: str) -> bool:
        """Whether an x-tuple with identifier ``xid`` exists."""
        return xid in self._xid_map()

    def insertion_index(self, tid: str) -> int:
        """Position of ``tid`` in the database's insertion order.

        Used as the deterministic tie-breaker of the ranking function.
        """
        return self._tuple_maps()[1][tid]

    @property
    def is_complete(self) -> bool:
        """``True`` when every x-tuple always produces a real tuple."""
        return all(xt.is_complete for xt in self._xtuples)

    def num_possible_worlds(self) -> int:
        """Exact count of possible worlds (null choices included)."""
        count = 1
        for xt in self._xtuples:
            count *= len(xt.alternatives) + (0 if xt.is_complete else 1)
        return count

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """Deterministic SHA-256 of the database's logical content.

        Two databases with the same x-tuples (ids, alternatives, values,
        probabilities, order) hash identically regardless of how they
        were constructed -- cold load, :meth:`with_xtuple_replaced`
        derivation, or deserialization.  The name is deliberately
        excluded: snapshot identity is content identity.  The service
        layer (:mod:`repro.api`) uses this as the snapshot id under
        which immutable databases are registered, so repeated
        registration of equal content is idempotent.  Computed once and
        cached (the database is immutable by convention).
        """
        cached = getattr(self, "_content_hash", None)
        if cached is not None:
            return cached
        import hashlib
        import json

        hasher = hashlib.sha256()
        for xt in self._xtuples:
            record = [
                xt.xid,
                [[t.tid, t.value, t.probability] for t in xt.alternatives],
            ]
            hasher.update(
                json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
            )
            hasher.update(b"\x00")
        digest = hasher.hexdigest()
        self._content_hash = digest
        return digest

    def with_xtuple_replaced(self, xid: str, replacement: XTuple) -> "ProbabilisticDatabase":
        """Return a copy of the database with one x-tuple swapped out.

        This is the primitive the cleaning executor uses: a successful
        ``pclean(τ_l)`` replaces ``τ_l`` by a certain x-tuple (paper
        Definition 5 -- compare Tables I and II, where cleaning ``S3``
        turns ``udb1`` into ``udb2``).
        """
        if xid not in self._xid_map():
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}")
        if replacement.xid != xid:
            raise InvalidDatabaseError(
                f"replacement x-tuple has id {replacement.xid!r}, expected {xid!r}"
            )
        new_xtuples = tuple(
            replacement if xt.xid == xid else xt for xt in self._xtuples
        )
        return ProbabilisticDatabase(new_xtuples, name=self.name)

    def ranked(self, ranking: Optional[RankingFunction] = None) -> "RankedDatabase":
        """Pre-sort the database under ``ranking`` (default: by value)."""
        return RankedDatabase(self, ranking or by_value())


@dataclass(frozen=True, eq=False)
class RankDelta:
    """How one x-tuple swap moved the ranked view's rows.

    Produced by :meth:`RankedDatabase.with_xtuple_replaced` /
    :meth:`RankedDatabase.with_xtuple_removed`; consumed by the delta
    PSR kernels and :meth:`repro.queries.engine.QuerySession.derive`.

    Attributes
    ----------
    old_ranked / new_ranked:
        The view the delta was derived from and the patched view.
    xid:
        Identifier of the swapped x-tuple.
    old_index:
        Its dense x-tuple index in the old view.
    new_index:
        Its dense index in the new view, or ``None`` when removed.  On
        removal every dense index above ``old_index`` shifts down by
        one (see :meth:`map_xtuple_index`).
    removed_rows / inserted_rows:
        Rank positions of the old members (old coordinates) and the new
        members (new coordinates), both ascending.
    window_start:
        First rank position whose PSR inputs moved; rows above it are
        bitwise identical between the views.
    tail_old / tail_new:
        Matching rank positions from which the two views' scan states
        coincide again -- every old row at or below ``tail_old`` equals
        the new row shifted to ``tail_new`` coordinates.  ``None`` when
        the swap's effect extends to the bottom of the ranking (the old
        or new x-tuple never saturates, so its factor never leaves the
        Poisson-binomial product).
    """

    old_ranked: "RankedDatabase"
    new_ranked: "RankedDatabase"
    xid: str
    old_index: int
    new_index: Optional[int]
    removed_rows: np.ndarray
    inserted_rows: np.ndarray
    window_start: int
    tail_old: Optional[int]
    tail_new: Optional[int]

    @property
    def row_offset(self) -> int:
        """``new row - old row`` for rows below the affected window."""
        return int(self.inserted_rows.size - self.removed_rows.size)

    def map_xtuple_index(self, l: int) -> int:
        """Old dense x-tuple index ``l`` expressed in new-view indexing."""
        if self.new_index is None and l > self.old_index:
            return l - 1
        return l


def _splice_list(items: List, removed: np.ndarray, positions: np.ndarray, values: List) -> List:
    """``items`` with rows ``removed`` dropped and ``values`` inserted.

    ``positions`` are insertion points relative to the survivor list
    (``np.insert`` semantics).  Slice-level copying keeps the whole
    splice at C speed -- the per-probe cost that matters on the
    cleaning hot path.
    """
    out: List = []
    prev = 0
    for r in removed.tolist():
        out.extend(items[prev:r])
        prev = r + 1
    out.extend(items[prev:])
    for offset, (pos, value) in enumerate(zip(positions.tolist(), values)):
        out.insert(pos + offset, value)
    return out


class _OrderPatch:
    """A deferred splice of a ranked ``order`` list.

    The tuple-object list is the one column nothing on the cleaning hot
    path reads -- the kernels consume the numeric arrays -- so patched
    views record the splice and materialize only when (and if) someone
    asks for ``order`` / ``position``.  Holds the *parent's order
    state* (a list, or another pending patch), never the parent view
    itself, so dropped intermediate snapshots stay collectable.
    """

    __slots__ = ("parent", "removed", "positions", "values")

    def __init__(
        self,
        parent: Union["_OrderPatch", List[ProbabilisticTuple]],
        removed: np.ndarray,
        positions: np.ndarray,
        values: List[ProbabilisticTuple],
    ) -> None:
        self.parent = parent
        self.removed = removed
        self.positions = positions
        self.values = values

    def materialize(self) -> List[ProbabilisticTuple]:
        # Collapse the whole pending chain iteratively (chains grow one
        # link per probe; recursion would hit limits on long runs).
        chain = [self]
        parent = self.parent
        while isinstance(parent, _OrderPatch):
            chain.append(parent)
            parent = parent.parent
        items = parent
        for patch in reversed(chain):
            items = _splice_list(
                items, patch.removed, patch.positions, patch.values
            )
        return items


def _scan_saturates(probabilities: np.ndarray) -> bool:
    """Whether the PSR scan treats this member mass as saturated.

    Replicates the scan's own accumulation (sequential adds in rank
    order, clamped at one) rather than ``fsum``, so the delta layer's
    saturation decision can never disagree with the kernels'.
    """
    mass = 0.0
    for e in probabilities:
        mass = min(1.0, mass + float(e))
    return mass >= 1.0 - SATURATION_EPSILON


#: Attribute names of the ranked view's canonical columnar arrays.
#: Every array listed here is write-protected at rest; mutation must go
#: through :meth:`RankedDatabase.mutable_view`.
CANONICAL_COLUMNS = (
    "scores_array",
    "insertion_array",
    "xtuple_indices_array",
    "probabilities_array",
    "completion_array",
)


class RankedDatabase:
    """A database pre-sorted in descending rank order.

    All the paper's algorithms assume this view.  Canonical storage is
    columnar -- contiguous NumPy arrays consumed by the vectorized
    kernels:

    ``probabilities_array[i]`` (float64)
        existential probability ``e_i`` of the i-th ranked tuple;
    ``xtuple_indices_array[i]`` (int64)
        dense integer index of that tuple's x-tuple (``0 .. m-1``);
    ``scores_array[i]`` (float64)
        the ranking score (descending, ties broken by insertion index);
    ``completion_array[l]`` (float64)
        ``s_l`` -- the probability that x-tuple ``l`` produces a real
        tuple.

    The list attributes ``probabilities`` / ``xtuple_indices`` /
    ``scores`` / ``completion`` are lazily built plain-Python views of
    those arrays, kept for scalar consumers (and the reference
    backend).
    """

    def __init__(self, db: ProbabilisticDatabase, ranking: RankingFunction) -> None:
        self.db = db
        self.ranking = ranking
        tuples = list(db)
        raw_scores = score_column(ranking, tuples)
        # Descending score, insertion order as the deterministic
        # tie-break: lexsort's last key dominates.
        insertion = np.arange(len(tuples), dtype=np.int64)
        perm = np.lexsort((insertion, -raw_scores))
        self._order_state: Union[List[ProbabilisticTuple], _OrderPatch] = [
            tuples[i] for i in perm
        ]
        self.scores_array: np.ndarray = np.ascontiguousarray(raw_scores[perm])
        #: Insertion index of each ranked row -- the sort's tie-break
        #: key, kept so patched derivations can replicate it exactly.
        self.insertion_array: np.ndarray = np.ascontiguousarray(perm)
        xid_to_index = {xt.xid: l for l, xt in enumerate(db.xtuples)}
        self.xtuple_ids: List[str] = [xt.xid for xt in db.xtuples]
        self.xtuple_indices_array: np.ndarray = np.array(
            [xid_to_index[t.xtuple_id] for t in self.order],
            dtype=np.int64,
        )
        self.probabilities_array: np.ndarray = np.array(
            [t.probability for t in self.order], dtype=np.float64
        )
        self.completion_array: np.ndarray = np.array(
            [xt.completion_probability for xt in db.xtuples], dtype=np.float64
        )
        self._xid_to_index_map: Optional[Dict[str, int]] = xid_to_index
        # Lazily materialized views (rebuilt on demand after patching).
        self._position: Optional[Dict[str, int]] = None
        self._scores_list: Optional[List[float]] = None
        self._xtuple_indices_list: Optional[List[int]] = None
        self._probabilities_list: Optional[List[float]] = None
        self._completion_list: Optional[List[float]] = None
        self._freeze_columns()

    @classmethod
    def _patched(
        cls,
        db: ProbabilisticDatabase,
        ranking: RankingFunction,
        order: List[ProbabilisticTuple],
        scores: np.ndarray,
        insertion: np.ndarray,
        xtuple_indices: np.ndarray,
        probabilities: np.ndarray,
        completion: np.ndarray,
        xtuple_ids: List[str],
        xid_to_index: Optional[Dict[str, int]],
    ) -> "RankedDatabase":
        """Assemble a ranked view directly from patched columnar arrays."""
        self = cls.__new__(cls)
        self.db = db
        self.ranking = ranking
        self._order_state = order
        self.scores_array = scores
        self.insertion_array = insertion
        self.xtuple_indices_array = xtuple_indices
        self.probabilities_array = probabilities
        self.completion_array = completion
        self.xtuple_ids = xtuple_ids
        self._xid_to_index_map = xid_to_index
        self._position = None
        self._scores_list = None
        self._xtuple_indices_list = None
        self._probabilities_list = None
        self._completion_list = None
        self._freeze_columns()
        return self

    def _freeze_columns(self) -> None:
        """Write-protect the canonical arrays (shared-state armor).

        Sessions, the shm export and delta checkpoints all alias these
        arrays, so a stray in-place write would silently corrupt every
        cached result derived from the view.  With the flag cleared,
        such a write raises ``ValueError: assignment destination is
        read-only`` at the offending line instead.  Deliberate patching
        goes through :meth:`mutable_view`.
        """
        for column in CANONICAL_COLUMNS:
            getattr(self, column).setflags(write=False)

    @contextmanager
    def mutable_view(self, column: str) -> Iterator[np.ndarray]:
        """Temporarily writable access to one canonical column.

        The explicit escape hatch for code that *must* mutate a
        canonical array in place (the delta engine's patch paths);
        everything else reads the arrays or builds fresh ones.  The
        column is re-frozen when the ``with`` block exits, error or
        not::

            with ranked.mutable_view("probabilities_array") as column:
                column[rows] = new_masses

        Mutating shared state invalidates any session cache built over
        the view -- callers own that invalidation, which is why the
        hatch is this loud.
        """
        if column not in CANONICAL_COLUMNS:
            raise ValueError(
                f"unknown canonical column {column!r}; "
                f"expected one of {CANONICAL_COLUMNS}"
            )
        array: np.ndarray = getattr(self, column)
        array.setflags(write=True)
        try:
            yield array
        finally:
            array.setflags(write=False)

    def psr_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy export of the PSR scan's input columns.

        Returns ``(probabilities_array, xtuple_indices_array)`` -- the
        canonical arrays themselves, not copies.  This is the seam the
        parallel backend publishes into shared memory
        (:func:`repro.core.parallel.shared_columns`); callers must
        treat the arrays as read-only.
        """
        return self.probabilities_array, self.xtuple_indices_array

    # ------------------------------------------------------------------
    # List views (back-compat API over the canonical arrays)
    # ------------------------------------------------------------------
    @property
    def order(self) -> List[ProbabilisticTuple]:
        """The ranked tuple objects (materialized lazily after patches)."""
        if isinstance(self._order_state, _OrderPatch):
            self._order_state = self._order_state.materialize()
        return self._order_state

    @property
    def position(self) -> Dict[str, int]:
        """``tid -> rank position`` (built lazily)."""
        if self._position is None:
            self._position = {t.tid: i for i, t in enumerate(self.order)}
        return self._position

    @property
    def _xid_to_index(self) -> Dict[str, int]:
        if self._xid_to_index_map is None:
            self._xid_to_index_map = {
                xid: l for l, xid in enumerate(self.xtuple_ids)
            }
        return self._xid_to_index_map
    @property
    def scores(self) -> List[float]:
        """Ranking scores as a plain list (view of ``scores_array``)."""
        if self._scores_list is None:
            self._scores_list = self.scores_array.tolist()
        return self._scores_list

    @property
    def xtuple_indices(self) -> List[int]:
        """Dense x-tuple indices as a plain list."""
        if self._xtuple_indices_list is None:
            self._xtuple_indices_list = self.xtuple_indices_array.tolist()
        return self._xtuple_indices_list

    @property
    def probabilities(self) -> List[float]:
        """Existential probabilities as a plain list."""
        if self._probabilities_list is None:
            self._probabilities_list = self.probabilities_array.tolist()
        return self._probabilities_list

    @property
    def completion(self) -> List[float]:
        """Per-x-tuple completion probabilities as a plain list."""
        if self._completion_list is None:
            self._completion_list = self.completion_array.tolist()
        return self._completion_list

    @property
    def num_tuples(self) -> int:
        return len(self.order)

    @property
    def num_xtuples(self) -> int:
        return len(self.xtuple_ids)

    def __len__(self) -> int:
        return len(self.order)

    def rank_of(self, tid: str) -> int:
        """Zero-based rank position of tuple ``tid`` (0 = highest)."""
        return self.position[tid]

    def xtuple_index_of(self, xid: str) -> int:
        """Dense index of the x-tuple ``xid`` (O(1))."""
        try:
            return self._xid_to_index[xid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}") from None

    def top(self, count: int) -> Sequence[ProbabilisticTuple]:
        """The ``count`` highest-ranked tuples of the whole database."""
        return self.order[:count]

    def min_real_tuples_probability(self, k: int) -> float:
        """Probability that a possible world holds at least ``k`` real tuples.

        Theorem 1 (the TP algorithm) assumes every possible world yields
        a full-length top-k result.  This check computes
        ``Pr[#real tuples >= k]`` exactly as a Poisson-binomial over the
        x-tuples' completion probabilities, so callers can verify the
        assumption cheaply (``O(m·k)``).
        """
        if k <= 0:
            return 1.0
        m = self.num_xtuples
        if k > m:
            return 0.0
        # dp[j] = Pr[j incomplete entities produce no tuple], capped at
        # the interesting range: we need Pr[#real >= k], i.e. the chance
        # that at most m-k entities are null.
        max_nulls = m - k
        dp = [1.0] + [0.0] * max_nulls
        for s in self.completion:
            q = 1.0 - s
            if q <= 0.0:
                continue
            for j in range(max_nulls, 0, -1):
                dp[j] = dp[j] * (1.0 - q) + dp[j - 1] * q
            dp[0] *= 1.0 - q
        return math.fsum(dp)

    # ------------------------------------------------------------------
    # Incremental derivation (array patching; no re-sort)
    # ------------------------------------------------------------------
    def _member_rows(self, l: int) -> np.ndarray:
        """Ascending rank positions of x-tuple ``l``'s members."""
        return np.nonzero(self.xtuple_indices_array == l)[0]

    def _insert_positions(
        self,
        kept_scores: np.ndarray,
        kept_insertion: np.ndarray,
        scores: np.ndarray,
        insertion: np.ndarray,
    ) -> np.ndarray:
        """Where each new member lands among the surviving rows.

        Survivors are already sorted by the canonical ``(-score,
        insertion)`` key, so a binary search on the negated scores
        narrows each insert to its score-tie block and a second search
        on the insertion indices places it inside the block -- exactly
        where a full ``lexsort`` would put it.
        """
        negated = -kept_scores
        positions = np.empty(len(scores), dtype=np.int64)
        for j, (score, ins) in enumerate(zip(scores, insertion)):
            lo = int(np.searchsorted(negated, -score, side="left"))
            hi = int(np.searchsorted(negated, -score, side="right"))
            positions[j] = lo + int(
                np.searchsorted(kept_insertion[lo:hi], ins)
            )
        return positions

    def _collapse_patch(
        self,
        replacement: XTuple,
        l: int,
        removed: np.ndarray,
        offset_l: int,
        r_rev: int,
    ) -> Tuple["RankedDatabase", "RankDelta"]:
        """Fast path for Definition 5's collapse-to-certain replacement.

        The revealed alternative keeps its tid, value and insertion
        slot, so its rank is its old rank minus the siblings removed
        above it -- no binary search needed, and every column outside
        the member span is a contiguous shifted copy (two ``memcpy``
        slices per column instead of whole-array fancy indexing).  This
        is the per-probe O(n) patch on the cleaning hot path.
        """
        member = replacement.alternatives[0]
        c_old = int(removed.size)
        p = r_rev - int(np.searchsorted(removed, r_rev))
        n_old = len(self.scores_array)
        n_new = n_old - c_old + 1
        w0 = int(removed[0])
        b_old = int(removed[-1]) + 1
        b_new = b_old - c_old + 1
        survivor_mask = np.ones(b_old - w0, dtype=bool)
        survivor_mask[removed - w0] = False

        def splice(arr: np.ndarray, value: Union[int, float]) -> np.ndarray:
            out = np.empty(n_new, dtype=arr.dtype)
            out[:w0] = arr[:w0]
            out[b_new:] = arr[b_old:]
            window = arr[w0:b_old][survivor_mask]
            out[w0:p] = window[: p - w0]
            out[p] = value
            out[p + 1 : b_new] = window[p - w0 :]
            return out

        scores = splice(self.scores_array, self.scores_array[r_rev])
        probabilities = splice(self.probabilities_array, 1.0)
        xtuple_indices = splice(self.xtuple_indices_array, l)
        insertion = splice(self.insertion_array, offset_l)
        if c_old > 1:
            insertion[insertion >= offset_l + c_old] += 1 - c_old
        completion = self.completion_array.copy()
        completion[l] = replacement.completion_probability

        old_xtuples = self.db.xtuples
        new_db = ProbabilisticDatabase._derived(
            old_xtuples[:l] + (replacement,) + old_xtuples[l + 1 :],
            self.db.name,
            self.db.num_tuples - c_old + 1,
        )
        inserted = np.array([p], dtype=np.int64)
        new_ranked = RankedDatabase._patched(
            db=new_db,
            ranking=self.ranking,
            order=_OrderPatch(self._order_state, removed, inserted, [member]),
            scores=scores,
            insertion=insertion,
            xtuple_indices=xtuple_indices,
            probabilities=probabilities,
            completion=completion,
            xtuple_ids=self.xtuple_ids,
            xid_to_index=self._xid_to_index_map,
        )
        tail_old = tail_new = None
        if _scan_saturates(self.probabilities_array[removed]):
            # The certain replacement always saturates; equalization
            # needs the old x-tuple to saturate too.
            tail_old, tail_new = b_old, b_new
        delta = RankDelta(
            old_ranked=self,
            new_ranked=new_ranked,
            xid=replacement.xid,
            old_index=l,
            new_index=l,
            removed_rows=removed,
            inserted_rows=inserted,
            window_start=w0,
            tail_old=tail_old,
            tail_new=tail_new,
        )
        return new_ranked, delta

    def with_xtuple_replaced(
        self, xid: str, replacement: XTuple
    ) -> Tuple["RankedDatabase", "RankDelta"]:
        """Derive the ranked view of ``db.with_xtuple_replaced(...)``.

        Patches the columnar arrays in O(n) -- delete the old members'
        rows, binary-search the replacement's rows in -- instead of
        re-ranking from scratch, and returns the patched view together
        with the :class:`RankDelta` describing which rank window moved.
        The patched view is exactly (bitwise) the view a cold
        ``RankedDatabase`` construction over the new database would
        produce.
        """
        if replacement.xid != xid:
            raise InvalidDatabaseError(
                f"replacement x-tuple has id {replacement.xid!r}, expected {xid!r}"
            )
        l = self.xtuple_index_of(xid)
        removed = self._member_rows(l)
        c_old = int(removed.size)
        offset_l = int(self.insertion_array[removed].min())
        alts = replacement.alternatives
        c_new = len(alts)

        if c_new == 1 and replacement.is_certain:
            old_members = self.db.xtuple(xid).alternatives
            member = alts[0]
            for j, t in enumerate(old_members):
                if t.tid == member.tid and t.value == member.value:
                    rev_rows = removed[
                        self.insertion_array[removed] == offset_l + j
                    ]
                    r_rev = int(rev_rows[0])
                    if self.ranking(member) == self.scores_array[r_rev]:
                        # Probability-blind ranking (the normal case):
                        # the revealed alternative keeps its rank slot.
                        return self._collapse_patch(
                            replacement, l, removed, offset_l, r_rev
                        )
                    break

        # General path: replacement members may carry fresh tids, so
        # mirror ProbabilisticDatabase.__init__'s cross-x-tuple
        # uniqueness check (the collapse fast path above reuses an own
        # tid and needs none).
        for t in alts:
            if t.tid in self.db and self.db.tuple(t.tid).xtuple_id != xid:
                raise InvalidDatabaseError(
                    f"duplicate tuple id {t.tid!r} across x-tuples"
                )

        n_old = len(self.scores_array)
        survivors = np.delete(np.arange(n_old, dtype=np.int64), removed)
        kept_scores = self.scores_array[survivors]
        kept_ins = self.insertion_array[survivors]
        if c_new != c_old:
            kept_ins = np.where(
                kept_ins >= offset_l + c_old, kept_ins + (c_new - c_old), kept_ins
            )

        new_scores = np.array([self.ranking(t) for t in alts], dtype=np.float64)
        new_ins = offset_l + np.arange(c_new, dtype=np.int64)
        member_order = np.lexsort((new_ins, -new_scores))
        new_scores = new_scores[member_order]
        new_ins = new_ins[member_order]
        new_probs = np.array(
            [alts[j].probability for j in member_order], dtype=np.float64
        )
        members = [alts[j] for j in member_order]

        positions = self._insert_positions(
            kept_scores, kept_ins, new_scores, new_ins
        )
        inserted = positions + np.arange(c_new, dtype=np.int64)

        # One source-index gather per float/int column: new row i takes
        # old row source[i], with the inserted rows scattered on top.
        source = np.insert(survivors, positions, 0)
        scores = self.scores_array[source]
        scores[inserted] = new_scores
        insertion = np.insert(kept_ins, positions, new_ins)
        xtuple_indices = self.xtuple_indices_array[source]
        xtuple_indices[inserted] = l
        probabilities = self.probabilities_array[source]
        probabilities[inserted] = new_probs

        completion = self.completion_array.copy()
        completion[l] = replacement.completion_probability

        old_xtuples = self.db.xtuples
        new_db = ProbabilisticDatabase._derived(
            old_xtuples[:l] + (replacement,) + old_xtuples[l + 1 :],
            self.db.name,
            self.db.num_tuples - c_old + c_new,
        )
        new_ranked = RankedDatabase._patched(
            db=new_db,
            ranking=self.ranking,
            order=_OrderPatch(self._order_state, removed, positions, members),
            scores=scores,
            insertion=insertion,
            xtuple_indices=xtuple_indices,
            probabilities=probabilities,
            completion=completion,
            xtuple_ids=self.xtuple_ids,
            xid_to_index=self._xid_to_index,
        )

        window_start = int(min(removed[0], inserted[0]))
        tail_old = tail_new = None
        if _scan_saturates(
            self.probabilities_array[removed]
        ) and _scan_saturates(new_probs):
            # Both the old and the new x-tuple saturate once fully
            # scanned: below the last member of either, each view sees
            # the factor as one guaranteed higher-ranked tuple, so the
            # scans coincide again.
            tail_new = max(int(inserted[-1]) + 1, int(removed[-1]) + 1 - c_old + c_new)
            tail_old = tail_new - c_new + c_old
        delta = RankDelta(
            old_ranked=self,
            new_ranked=new_ranked,
            xid=xid,
            old_index=l,
            new_index=l,
            removed_rows=removed,
            inserted_rows=inserted,
            window_start=window_start,
            tail_old=tail_old,
            tail_new=tail_new,
        )
        return new_ranked, delta

    def with_xtuple_removed(
        self, xid: str
    ) -> Tuple["RankedDatabase", "RankDelta"]:
        """Derive the ranked view with one x-tuple deleted outright.

        The revealed-null outcome of a cleaning probe: the entity is
        now certain to contribute nothing, so its rows are spliced out
        of the arrays and its dense index vacated (indices above it
        shift down by one).  Returns the patched view and the delta.
        """
        l = self.xtuple_index_of(xid)
        removed = self._member_rows(l)
        c_old = int(removed.size)
        offset_l = int(self.insertion_array[removed].min())

        kept_ins = np.delete(self.insertion_array, removed)
        kept_ins[kept_ins >= offset_l + c_old] -= c_old
        kept_xidx = np.delete(self.xtuple_indices_array, removed)
        kept_xidx[kept_xidx > l] -= 1

        old_xtuples = self.db.xtuples
        new_db = ProbabilisticDatabase._derived(
            old_xtuples[:l] + old_xtuples[l + 1 :],
            self.db.name,
            self.db.num_tuples - c_old,
        )
        new_ranked = RankedDatabase._patched(
            db=new_db,
            ranking=self.ranking,
            order=_OrderPatch(
                self._order_state, removed, np.zeros(0, dtype=np.int64), []
            ),
            scores=np.delete(self.scores_array, removed),
            insertion=kept_ins,
            xtuple_indices=kept_xidx,
            probabilities=np.delete(self.probabilities_array, removed),
            completion=np.delete(self.completion_array, l),
            xtuple_ids=self.xtuple_ids[:l] + self.xtuple_ids[l + 1 :],
            xid_to_index=None,
        )
        delta = RankDelta(
            old_ranked=self,
            new_ranked=new_ranked,
            xid=xid,
            old_index=l,
            new_index=None,
            removed_rows=removed,
            inserted_rows=np.zeros(0, dtype=np.int64),
            window_start=int(removed[0]),
            tail_old=None,
            tail_new=None,
        )
        return new_ranked, delta
