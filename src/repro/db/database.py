"""The probabilistic database and its ranked (pre-sorted) view.

:class:`ProbabilisticDatabase` stores x-tuples (Section III-A of the
paper).  The quality and cleaning algorithms never consume the raw
database directly; they consume a :class:`RankedDatabase` -- the
database's tuples pre-sorted in descending rank order under a chosen
ranking function, together with flat arrays (probabilities, x-tuple
indices) that make the dynamic programs cache-friendly.  This mirrors
the paper's standing assumption that "tuples in D are arranged in
descending order of ranks" (Section IV) while paying the sort exactly
once per (database, ranking) pair.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.db.ranking import RankingFunction, by_value
from repro.db.tuples import ProbabilisticTuple, XTuple
from repro.exceptions import InvalidDatabaseError


class ProbabilisticDatabase:
    """An x-tuple probabilistic database.

    The database is immutable by convention: cleaning produces *new*
    databases via :meth:`with_xtuple_replaced` rather than mutating in
    place, so that quality scores computed against one snapshot stay
    meaningful.

    Parameters
    ----------
    xtuples:
        The entities of the database, in insertion order.  Insertion
        order of their member tuples defines the tie-breaking order of
        the ranking (smaller index ranks higher on equal scores).
    name:
        Optional label used in reprs and benchmark output.
    """

    def __init__(self, xtuples: Iterable[XTuple], name: str = "") -> None:
        self._xtuples: Tuple[XTuple, ...] = tuple(xtuples)
        self.name = name
        self._by_xid: Dict[str, XTuple] = {}
        self._by_tid: Dict[str, ProbabilisticTuple] = {}
        self._insertion_index: Dict[str, int] = {}
        index = 0
        for xt in self._xtuples:
            if xt.xid in self._by_xid:
                raise InvalidDatabaseError(f"duplicate x-tuple id {xt.xid!r}")
            self._by_xid[xt.xid] = xt
            for t in xt.alternatives:
                if t.tid in self._by_tid:
                    raise InvalidDatabaseError(
                        f"duplicate tuple id {t.tid!r} across x-tuples"
                    )
                self._by_tid[t.tid] = t
                self._insertion_index[t.tid] = index
                index += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def xtuples(self) -> Tuple[XTuple, ...]:
        """The entities in insertion order."""
        return self._xtuples

    @property
    def num_xtuples(self) -> int:
        """Number of entities ``m``."""
        return len(self._xtuples)

    @property
    def num_tuples(self) -> int:
        """Total number of alternatives ``n`` across all entities."""
        return len(self._by_tid)

    def __len__(self) -> int:
        return self.num_tuples

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        """Iterate over all tuples in insertion order."""
        for xt in self._xtuples:
            yield from xt.alternatives

    def __contains__(self, tid: str) -> bool:
        return tid in self._by_tid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ProbabilisticDatabase{label}: {self.num_xtuples} x-tuples, "
            f"{self.num_tuples} tuples>"
        )

    def xtuple(self, xid: str) -> XTuple:
        """Return the x-tuple with identifier ``xid``."""
        try:
            return self._by_xid[xid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}") from None

    def tuple(self, tid: str) -> ProbabilisticTuple:
        """Return the tuple with identifier ``tid``."""
        try:
            return self._by_tid[tid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown tuple id {tid!r}") from None

    def has_xtuple(self, xid: str) -> bool:
        """Whether an x-tuple with identifier ``xid`` exists."""
        return xid in self._by_xid

    def insertion_index(self, tid: str) -> int:
        """Position of ``tid`` in the database's insertion order.

        Used as the deterministic tie-breaker of the ranking function.
        """
        return self._insertion_index[tid]

    @property
    def is_complete(self) -> bool:
        """``True`` when every x-tuple always produces a real tuple."""
        return all(xt.is_complete for xt in self._xtuples)

    def num_possible_worlds(self) -> int:
        """Exact count of possible worlds (null choices included)."""
        count = 1
        for xt in self._xtuples:
            count *= len(xt.alternatives) + (0 if xt.is_complete else 1)
        return count

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_xtuple_replaced(self, xid: str, replacement: XTuple) -> "ProbabilisticDatabase":
        """Return a copy of the database with one x-tuple swapped out.

        This is the primitive the cleaning executor uses: a successful
        ``pclean(τ_l)`` replaces ``τ_l`` by a certain x-tuple (paper
        Definition 5 -- compare Tables I and II, where cleaning ``S3``
        turns ``udb1`` into ``udb2``).
        """
        if xid not in self._by_xid:
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}")
        if replacement.xid != xid:
            raise InvalidDatabaseError(
                f"replacement x-tuple has id {replacement.xid!r}, expected {xid!r}"
            )
        new_xtuples = tuple(
            replacement if xt.xid == xid else xt for xt in self._xtuples
        )
        return ProbabilisticDatabase(new_xtuples, name=self.name)

    def ranked(self, ranking: Optional[RankingFunction] = None) -> "RankedDatabase":
        """Pre-sort the database under ``ranking`` (default: by value)."""
        return RankedDatabase(self, ranking or by_value())


class RankedDatabase:
    """A database pre-sorted in descending rank order.

    All the paper's algorithms assume this view.  Besides the sorted
    tuple sequence, it exposes flat parallel arrays used by the dynamic
    programs:

    ``probabilities[i]``
        existential probability ``e_i`` of the i-th ranked tuple;
    ``xtuple_indices[i]``
        dense integer index of that tuple's x-tuple (``0 .. m-1``);
    ``completion[l]``
        ``s_l`` -- the probability that x-tuple ``l`` produces a real
        tuple;
    ``scores[i]``
        the ranking score (descending, ties broken by insertion index).
    """

    def __init__(self, db: ProbabilisticDatabase, ranking: RankingFunction) -> None:
        self.db = db
        self.ranking = ranking
        decorated = [
            (-ranking(t), db.insertion_index(t.tid), t) for t in db
        ]
        decorated.sort(key=lambda item: (item[0], item[1]))
        self.order: List[ProbabilisticTuple] = [item[2] for item in decorated]
        self.scores: List[float] = [-item[0] for item in decorated]
        self.position: Dict[str, int] = {
            t.tid: i for i, t in enumerate(self.order)
        }
        xid_to_index: Dict[str, int] = {
            xt.xid: l for l, xt in enumerate(db.xtuples)
        }
        self.xtuple_ids: List[str] = [xt.xid for xt in db.xtuples]
        self.xtuple_indices: List[int] = [
            xid_to_index[t.xtuple_id] for t in self.order
        ]
        self.probabilities: List[float] = [t.probability for t in self.order]
        self.completion: List[float] = [
            xt.completion_probability for xt in db.xtuples
        ]

    @property
    def num_tuples(self) -> int:
        return len(self.order)

    @property
    def num_xtuples(self) -> int:
        return len(self.xtuple_ids)

    def __len__(self) -> int:
        return len(self.order)

    def rank_of(self, tid: str) -> int:
        """Zero-based rank position of tuple ``tid`` (0 = highest)."""
        return self.position[tid]

    def top(self, count: int) -> Sequence[ProbabilisticTuple]:
        """The ``count`` highest-ranked tuples of the whole database."""
        return self.order[:count]

    def min_real_tuples_probability(self, k: int) -> float:
        """Probability that a possible world holds at least ``k`` real tuples.

        Theorem 1 (the TP algorithm) assumes every possible world yields
        a full-length top-k result.  This check computes
        ``Pr[#real tuples >= k]`` exactly as a Poisson-binomial over the
        x-tuples' completion probabilities, so callers can verify the
        assumption cheaply (``O(m·k)``).
        """
        if k <= 0:
            return 1.0
        m = self.num_xtuples
        if k > m:
            return 0.0
        # dp[j] = Pr[j incomplete entities produce no tuple], capped at
        # the interesting range: we need Pr[#real >= k], i.e. the chance
        # that at most m-k entities are null.
        max_nulls = m - k
        dp = [1.0] + [0.0] * max_nulls
        for s in self.completion:
            q = 1.0 - s
            if q <= 0.0:
                continue
            for j in range(max_nulls, 0, -1):
                dp[j] = dp[j] * (1.0 - q) + dp[j - 1] * q
            dp[0] *= 1.0 - q
        return math.fsum(dp)
