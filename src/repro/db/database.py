"""The probabilistic database and its ranked (pre-sorted) view.

:class:`ProbabilisticDatabase` stores x-tuples (Section III-A of the
paper).  The quality and cleaning algorithms never consume the raw
database directly; they consume a :class:`RankedDatabase` -- the
database's tuples pre-sorted in descending rank order under a chosen
ranking function.  This mirrors the paper's standing assumption that
"tuples in D are arranged in descending order of ranks" (Section IV)
while paying the sort exactly once per (database, ranking) pair.

The ranked view's canonical storage is *columnar*: contiguous
``float64`` / ``int64`` NumPy arrays (``probabilities_array``,
``xtuple_indices_array``, ``scores_array``, ``completion_array``) that
the vectorized kernels consume directly.  The historical list
attributes (``probabilities``, ``xtuple_indices``, ``scores``,
``completion``) survive as lazily materialized views of those arrays,
so scalar code -- including the pure-Python reference backend -- keeps
working unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.ranking import RankingFunction, by_value
from repro.db.tuples import ProbabilisticTuple, XTuple
from repro.exceptions import InvalidDatabaseError


class ProbabilisticDatabase:
    """An x-tuple probabilistic database.

    The database is immutable by convention: cleaning produces *new*
    databases via :meth:`with_xtuple_replaced` rather than mutating in
    place, so that quality scores computed against one snapshot stay
    meaningful.

    Parameters
    ----------
    xtuples:
        The entities of the database, in insertion order.  Insertion
        order of their member tuples defines the tie-breaking order of
        the ranking (smaller index ranks higher on equal scores).
    name:
        Optional label used in reprs and benchmark output.
    """

    def __init__(self, xtuples: Iterable[XTuple], name: str = "") -> None:
        self._xtuples: Tuple[XTuple, ...] = tuple(xtuples)
        self.name = name
        self._by_xid: Dict[str, XTuple] = {}
        self._by_tid: Dict[str, ProbabilisticTuple] = {}
        self._insertion_index: Dict[str, int] = {}
        index = 0
        for xt in self._xtuples:
            if xt.xid in self._by_xid:
                raise InvalidDatabaseError(f"duplicate x-tuple id {xt.xid!r}")
            self._by_xid[xt.xid] = xt
            for t in xt.alternatives:
                if t.tid in self._by_tid:
                    raise InvalidDatabaseError(
                        f"duplicate tuple id {t.tid!r} across x-tuples"
                    )
                self._by_tid[t.tid] = t
                self._insertion_index[t.tid] = index
                index += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def xtuples(self) -> Tuple[XTuple, ...]:
        """The entities in insertion order."""
        return self._xtuples

    @property
    def num_xtuples(self) -> int:
        """Number of entities ``m``."""
        return len(self._xtuples)

    @property
    def num_tuples(self) -> int:
        """Total number of alternatives ``n`` across all entities."""
        return len(self._by_tid)

    def __len__(self) -> int:
        return self.num_tuples

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        """Iterate over all tuples in insertion order."""
        for xt in self._xtuples:
            yield from xt.alternatives

    def __contains__(self, tid: str) -> bool:
        return tid in self._by_tid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ProbabilisticDatabase{label}: {self.num_xtuples} x-tuples, "
            f"{self.num_tuples} tuples>"
        )

    def xtuple(self, xid: str) -> XTuple:
        """Return the x-tuple with identifier ``xid``."""
        try:
            return self._by_xid[xid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}") from None

    def tuple(self, tid: str) -> ProbabilisticTuple:
        """Return the tuple with identifier ``tid``."""
        try:
            return self._by_tid[tid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown tuple id {tid!r}") from None

    def has_xtuple(self, xid: str) -> bool:
        """Whether an x-tuple with identifier ``xid`` exists."""
        return xid in self._by_xid

    def insertion_index(self, tid: str) -> int:
        """Position of ``tid`` in the database's insertion order.

        Used as the deterministic tie-breaker of the ranking function.
        """
        return self._insertion_index[tid]

    @property
    def is_complete(self) -> bool:
        """``True`` when every x-tuple always produces a real tuple."""
        return all(xt.is_complete for xt in self._xtuples)

    def num_possible_worlds(self) -> int:
        """Exact count of possible worlds (null choices included)."""
        count = 1
        for xt in self._xtuples:
            count *= len(xt.alternatives) + (0 if xt.is_complete else 1)
        return count

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_xtuple_replaced(self, xid: str, replacement: XTuple) -> "ProbabilisticDatabase":
        """Return a copy of the database with one x-tuple swapped out.

        This is the primitive the cleaning executor uses: a successful
        ``pclean(τ_l)`` replaces ``τ_l`` by a certain x-tuple (paper
        Definition 5 -- compare Tables I and II, where cleaning ``S3``
        turns ``udb1`` into ``udb2``).
        """
        if xid not in self._by_xid:
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}")
        if replacement.xid != xid:
            raise InvalidDatabaseError(
                f"replacement x-tuple has id {replacement.xid!r}, expected {xid!r}"
            )
        new_xtuples = tuple(
            replacement if xt.xid == xid else xt for xt in self._xtuples
        )
        return ProbabilisticDatabase(new_xtuples, name=self.name)

    def ranked(self, ranking: Optional[RankingFunction] = None) -> "RankedDatabase":
        """Pre-sort the database under ``ranking`` (default: by value)."""
        return RankedDatabase(self, ranking or by_value())


class RankedDatabase:
    """A database pre-sorted in descending rank order.

    All the paper's algorithms assume this view.  Canonical storage is
    columnar -- contiguous NumPy arrays consumed by the vectorized
    kernels:

    ``probabilities_array[i]`` (float64)
        existential probability ``e_i`` of the i-th ranked tuple;
    ``xtuple_indices_array[i]`` (int64)
        dense integer index of that tuple's x-tuple (``0 .. m-1``);
    ``scores_array[i]`` (float64)
        the ranking score (descending, ties broken by insertion index);
    ``completion_array[l]`` (float64)
        ``s_l`` -- the probability that x-tuple ``l`` produces a real
        tuple.

    The list attributes ``probabilities`` / ``xtuple_indices`` /
    ``scores`` / ``completion`` are lazily built plain-Python views of
    those arrays, kept for scalar consumers (and the reference
    backend).
    """

    def __init__(self, db: ProbabilisticDatabase, ranking: RankingFunction) -> None:
        self.db = db
        self.ranking = ranking
        tuples = list(db)
        raw_scores = np.array([ranking(t) for t in tuples], dtype=np.float64)
        # Descending score, insertion order as the deterministic
        # tie-break: lexsort's last key dominates.
        insertion = np.arange(len(tuples), dtype=np.int64)
        perm = np.lexsort((insertion, -raw_scores))
        self.order: List[ProbabilisticTuple] = [tuples[i] for i in perm]
        self.scores_array: np.ndarray = np.ascontiguousarray(raw_scores[perm])
        self.position: Dict[str, int] = {
            t.tid: i for i, t in enumerate(self.order)
        }
        self._xid_to_index: Dict[str, int] = {
            xt.xid: l for l, xt in enumerate(db.xtuples)
        }
        self.xtuple_ids: List[str] = [xt.xid for xt in db.xtuples]
        self.xtuple_indices_array: np.ndarray = np.array(
            [self._xid_to_index[t.xtuple_id] for t in self.order],
            dtype=np.int64,
        )
        self.probabilities_array: np.ndarray = np.array(
            [t.probability for t in self.order], dtype=np.float64
        )
        self.completion_array: np.ndarray = np.array(
            [xt.completion_probability for xt in db.xtuples], dtype=np.float64
        )
        # Lazily materialized list views of the canonical arrays.
        self._scores_list: Optional[List[float]] = None
        self._xtuple_indices_list: Optional[List[int]] = None
        self._probabilities_list: Optional[List[float]] = None
        self._completion_list: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # List views (back-compat API over the canonical arrays)
    # ------------------------------------------------------------------
    @property
    def scores(self) -> List[float]:
        """Ranking scores as a plain list (view of ``scores_array``)."""
        if self._scores_list is None:
            self._scores_list = self.scores_array.tolist()
        return self._scores_list

    @property
    def xtuple_indices(self) -> List[int]:
        """Dense x-tuple indices as a plain list."""
        if self._xtuple_indices_list is None:
            self._xtuple_indices_list = self.xtuple_indices_array.tolist()
        return self._xtuple_indices_list

    @property
    def probabilities(self) -> List[float]:
        """Existential probabilities as a plain list."""
        if self._probabilities_list is None:
            self._probabilities_list = self.probabilities_array.tolist()
        return self._probabilities_list

    @property
    def completion(self) -> List[float]:
        """Per-x-tuple completion probabilities as a plain list."""
        if self._completion_list is None:
            self._completion_list = self.completion_array.tolist()
        return self._completion_list

    @property
    def num_tuples(self) -> int:
        return len(self.order)

    @property
    def num_xtuples(self) -> int:
        return len(self.xtuple_ids)

    def __len__(self) -> int:
        return len(self.order)

    def rank_of(self, tid: str) -> int:
        """Zero-based rank position of tuple ``tid`` (0 = highest)."""
        return self.position[tid]

    def xtuple_index_of(self, xid: str) -> int:
        """Dense index of the x-tuple ``xid`` (O(1))."""
        try:
            return self._xid_to_index[xid]
        except KeyError:
            raise InvalidDatabaseError(f"unknown x-tuple id {xid!r}") from None

    def top(self, count: int) -> Sequence[ProbabilisticTuple]:
        """The ``count`` highest-ranked tuples of the whole database."""
        return self.order[:count]

    def min_real_tuples_probability(self, k: int) -> float:
        """Probability that a possible world holds at least ``k`` real tuples.

        Theorem 1 (the TP algorithm) assumes every possible world yields
        a full-length top-k result.  This check computes
        ``Pr[#real tuples >= k]`` exactly as a Poisson-binomial over the
        x-tuples' completion probabilities, so callers can verify the
        assumption cheaply (``O(m·k)``).
        """
        if k <= 0:
            return 1.0
        m = self.num_xtuples
        if k > m:
            return 0.0
        # dp[j] = Pr[j incomplete entities produce no tuple], capped at
        # the interesting range: we need Pr[#real >= k], i.e. the chance
        # that at most m-k entities are null.
        max_nulls = m - k
        dp = [1.0] + [0.0] * max_nulls
        for s in self.completion:
            q = 1.0 - s
            if q <= 0.0:
                continue
            for j in range(max_nulls, 0, -1):
                dp[j] = dp[j] * (1.0 - q) + dp[j - 1] * q
            dp[0] *= 1.0 - q
        return math.fsum(dp)
