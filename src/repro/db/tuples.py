"""Tuple-level building blocks of the x-tuple probabilistic data model.

The paper (Section III-A) models a probabilistic database ``D`` as a set
of *x-tuples*.  Each x-tuple groups mutually exclusive alternatives
(*tuples*); tuples from different x-tuples are independent.  A tuple
``t_i`` is the quadruple ``(ID_i, x_i, v_i, e_i)``: a unique key, the
x-tuple it belongs to, its attribute value(s), and its existential
probability.

This module defines the two value classes used everywhere else:

* :class:`ProbabilisticTuple` -- one alternative reading of an entity.
* :class:`XTuple` -- one entity, i.e. a set of mutually exclusive
  alternatives whose probabilities sum to at most one.  When the sum is
  strictly below one, the remainder is the probability that the entity
  produces *no* tuple at all (the paper's implicit "null" tuple, which
  is ranked below every real tuple and never materialized here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence, Tuple

from repro.exceptions import InvalidDatabaseError

#: Tolerance used when checking that probabilities inside an x-tuple sum
#: to at most one.  Generated data routinely carries float round-off.
PROBABILITY_SUM_TOLERANCE = 1e-9

#: An x-tuple whose alternatives sum to at least this much is treated as
#: *complete*: it always produces a real tuple in every possible world.
COMPLETENESS_TOLERANCE = 1e-12


@dataclass(frozen=True)
class ProbabilisticTuple:
    """One alternative reading of an uncertain entity.

    Attributes
    ----------
    tid:
        The tuple key ``ID_i``.  Must be unique across the database.
    xtuple_id:
        Identifier of the x-tuple (entity) this tuple belongs to.
    value:
        The attribute value(s) ``v_i`` consumed by the ranking function.
        For the paper's sensor example this is a single temperature; for
        the MOV workload it is a ``(date, rating)`` mapping.
    probability:
        The existential probability ``e_i`` -- the chance that this
        alternative is the entity's real value.  Must lie in ``(0, 1]``.
    """

    tid: str
    xtuple_id: str
    value: Any
    probability: float

    def __post_init__(self) -> None:
        if not isinstance(self.tid, str) or not self.tid:
            raise InvalidDatabaseError(
                f"tuple id must be a non-empty string, got {self.tid!r}"
            )
        if not isinstance(self.xtuple_id, str) or not self.xtuple_id:
            raise InvalidDatabaseError(
                f"x-tuple id must be a non-empty string, got {self.xtuple_id!r}"
            )
        p = self.probability
        if not isinstance(p, (int, float)) or isinstance(p, bool):
            raise InvalidDatabaseError(
                f"existential probability must be a number, got {p!r}"
            )
        if math.isnan(p) or p <= 0.0 or p > 1.0:
            raise InvalidDatabaseError(
                f"existential probability of tuple {self.tid!r} must lie in "
                f"(0, 1], got {p!r}"
            )


@dataclass(frozen=True)
class XTuple:
    """An uncertain entity: mutually exclusive alternatives.

    Attributes
    ----------
    xid:
        The x-tuple identifier (e.g. a sensor id such as ``"S1"``).
    alternatives:
        The member tuples, each carrying its existential probability.
        Their probabilities must sum to at most one (within
        :data:`PROBABILITY_SUM_TOLERANCE`).
    """

    xid: str
    alternatives: Tuple[ProbabilisticTuple, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.xid, str) or not self.xid:
            raise InvalidDatabaseError(
                f"x-tuple id must be a non-empty string, got {self.xid!r}"
            )
        alts = tuple(self.alternatives)
        object.__setattr__(self, "alternatives", alts)
        if not alts:
            raise InvalidDatabaseError(
                f"x-tuple {self.xid!r} must contain at least one alternative"
            )
        seen = set()
        total = 0.0
        for t in alts:
            if not isinstance(t, ProbabilisticTuple):
                raise InvalidDatabaseError(
                    f"x-tuple {self.xid!r} contains a non-tuple member: {t!r}"
                )
            if t.xtuple_id != self.xid:
                raise InvalidDatabaseError(
                    f"tuple {t.tid!r} declares x-tuple {t.xtuple_id!r} but was "
                    f"placed in x-tuple {self.xid!r}"
                )
            if t.tid in seen:
                raise InvalidDatabaseError(
                    f"duplicate tuple id {t.tid!r} inside x-tuple {self.xid!r}"
                )
            seen.add(t.tid)
            total += t.probability
        if total > 1.0 + PROBABILITY_SUM_TOLERANCE:
            raise InvalidDatabaseError(
                f"existential probabilities in x-tuple {self.xid!r} sum to "
                f"{total!r} > 1"
            )

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return iter(self.alternatives)

    def __len__(self) -> int:
        return len(self.alternatives)

    @property
    def completion_probability(self) -> float:
        """Probability ``s_l`` that the entity produces a real tuple.

        Equals the sum of the alternatives' existential probabilities,
        clamped to one to absorb float round-off.
        """
        return min(1.0, math.fsum(t.probability for t in self.alternatives))

    @property
    def null_probability(self) -> float:
        """Probability that the entity produces *no* tuple (``1 - s_l``)."""
        return max(0.0, 1.0 - self.completion_probability)

    @property
    def is_complete(self) -> bool:
        """``True`` when the entity always produces a real tuple."""
        return self.null_probability <= COMPLETENESS_TOLERANCE

    @property
    def is_certain(self) -> bool:
        """``True`` when the entity has a single alternative with
        probability one -- i.e. it carries no uncertainty at all.  This
        is the state a successful cleaning operation leaves behind."""
        return len(self.alternatives) == 1 and self.is_complete

    def collapsed_to(self, tid: str) -> "XTuple":
        """Return the x-tuple a *successful* cleaning produces.

        Per Definition 5, a successful ``pclean`` replaces the x-tuple by
        a single certain tuple ``{ID_i, l, v_i, 1}`` keeping the chosen
        alternative's identifier and value.

        Parameters
        ----------
        tid:
            Identifier of the alternative revealed as the real value.
        """
        for t in self.alternatives:
            if t.tid == tid:
                certain = ProbabilisticTuple(
                    tid=t.tid,
                    xtuple_id=self.xid,
                    value=t.value,
                    probability=1.0,
                )
                return XTuple(xid=self.xid, alternatives=(certain,))
        raise InvalidDatabaseError(
            f"x-tuple {self.xid!r} has no alternative with id {tid!r}"
        )


def make_xtuple(
    xid: str,
    alternatives: Sequence[Tuple[str, Any, float]],
) -> XTuple:
    """Convenience constructor from ``(tid, value, probability)`` triples.

    Example
    -------
    >>> s1 = make_xtuple("S1", [("t0", 21.0, 0.6), ("t1", 32.0, 0.4)])
    >>> s1.completion_probability
    1.0
    """
    members = tuple(
        ProbabilisticTuple(tid=tid, xtuple_id=xid, value=value, probability=prob)
        for tid, value, prob in alternatives
    )
    return XTuple(xid=xid, alternatives=members)
