"""Probabilistic database substrate: the x-tuple model (paper Sec. III-A).

Public surface:

* :class:`~repro.db.tuples.ProbabilisticTuple`, :class:`~repro.db.tuples.XTuple`,
  :func:`~repro.db.tuples.make_xtuple` -- the data model;
* :class:`~repro.db.database.ProbabilisticDatabase` and its pre-sorted
  view :class:`~repro.db.database.RankedDatabase`;
* ranking functions (:mod:`repro.db.ranking`);
* possible-world enumeration and sampling (:mod:`repro.db.possible_worlds`);
* JSON/CSV serialization (:mod:`repro.db.io`).
"""

from repro.db.database import ProbabilisticDatabase, RankDelta, RankedDatabase
from repro.db.possible_worlds import (
    PossibleWorld,
    iter_worlds,
    sample_world,
    world_probability,
)
from repro.db.ranking import (
    RankingFunction,
    by_key,
    by_sum_of_keys,
    by_value,
    custom,
)
from repro.db.tuples import ProbabilisticTuple, XTuple, make_xtuple

__all__ = [
    "ProbabilisticDatabase",
    "RankDelta",
    "RankedDatabase",
    "ProbabilisticTuple",
    "XTuple",
    "make_xtuple",
    "RankingFunction",
    "by_value",
    "by_key",
    "by_sum_of_keys",
    "custom",
    "PossibleWorld",
    "iter_worlds",
    "sample_world",
    "world_probability",
]
