"""Ranking functions and tie-breaking for deterministic top-k.

The paper assumes a ranking function ``f`` that assigns a *unique* rank
to every tuple (Section III-B): ties are broken deterministically so
that ``t1 =f t2`` iff the tuples are identical.  The paper's synthetic
workload ranks a tuple higher when its value is larger, breaking ties in
favour of the tuple with the smaller index (Section VI); the MOV
workload ranks by ``normalized(date) + normalized(rating)``.

A :class:`RankingFunction` wraps a score callable; tuples are ranked in
*descending* score order, and equal scores are broken by the order the
tuples were inserted into the database (smaller insertion index ranks
higher), matching the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.db.tuples import ProbabilisticTuple

ScoreFunction = Callable[[ProbabilisticTuple], float]


def score_column(
    ranking: "RankingFunction", tuples: Sequence[ProbabilisticTuple]
) -> np.ndarray:
    """Evaluate a ranking over many tuples into one float64 column.

    This is the canonical-array entry point the columnar
    :class:`repro.db.database.RankedDatabase` sorts on (and the shape
    the shared-memory export of :mod:`repro.core.parallel` ultimately
    mirrors): scores land directly in a contiguous array instead of an
    intermediate Python list.
    """
    return np.fromiter(
        (ranking(t) for t in tuples), dtype=np.float64, count=len(tuples)
    )


class RankingFunction:
    """Assigns every tuple a score; higher scores rank higher.

    Parameters
    ----------
    score:
        Callable mapping a :class:`ProbabilisticTuple` to a float score.
        Defaults to the tuple's ``value`` attribute (which therefore must
        be numeric).
    name:
        Human-readable name used in reprs and benchmark tables.
    """

    def __init__(self, score: Optional[ScoreFunction] = None, name: str = "") -> None:
        self._score = score if score is not None else _value_score
        self.name = name or getattr(self._score, "__name__", "score")

    def __call__(self, t: ProbabilisticTuple) -> float:
        return self._score(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankingFunction({self.name})"


def _value_score(t: ProbabilisticTuple) -> float:
    """Default score: the tuple's (numeric) value itself."""
    return float(t.value)


def by_value() -> RankingFunction:
    """Rank tuples by their numeric ``value``, larger is higher.

    This is the ranking the paper uses on the sensor example (Table I)
    and on the synthetic workload.
    """
    return RankingFunction(_value_score, name="by_value")


def by_key(key: str) -> RankingFunction:
    """Rank tuples by one entry of a mapping-valued ``value``."""

    def score(t: ProbabilisticTuple) -> float:
        return float(t.value[key])

    return RankingFunction(score, name=f"by_key({key})")


def by_sum_of_keys(*keys: str) -> RankingFunction:
    """Rank tuples by the sum of several entries of a mapping value.

    The MOV workload uses ``by_sum_of_keys("date", "rating")`` on
    normalized attributes (Section VI).
    """

    def score(t: ProbabilisticTuple) -> float:
        return float(sum(t.value[k] for k in keys))

    return RankingFunction(score, name=f"by_sum_of_keys({','.join(keys)})")


def custom(score: ScoreFunction, name: str = "custom") -> RankingFunction:
    """Wrap an arbitrary score callable into a :class:`RankingFunction`."""
    return RankingFunction(score, name=name)


def ranking_descriptor(
    ranking: Optional[RankingFunction],
) -> Optional[Dict[str, Any]]:
    """A JSON-serializable description of a factory-built ranking.

    The durable snapshot store persists rankings *by rule*, not by
    code object: the factory rankings (:func:`by_value`,
    :func:`by_key`, :func:`by_sum_of_keys`) encode their scoring rule
    in their name, so the rule round-trips through a plain dict and
    :func:`ranking_from_descriptor` rebuilds an equivalent function in
    a fresh process.  ``None`` (the by-value default) descriptors as
    by-value.  Returns ``None`` for rankings whose rule is *not*
    recoverable from their name (``custom`` / lambdas) -- such
    snapshots cannot be persisted, and the store refuses them with a
    typed error instead of silently re-ranking under the wrong order.
    """
    ranking = ranking if ranking is not None else by_value()
    name = ranking.name
    if name == "by_value":
        return {"kind": "value"}
    if name.startswith("by_key(") and name.endswith(")"):
        return {"kind": "key", "key": name[len("by_key(") : -1]}
    if name.startswith("by_sum_of_keys(") and name.endswith(")"):
        keys = name[len("by_sum_of_keys(") : -1]
        return {"kind": "sum_of_keys", "keys": keys.split(",")}
    return None


def ranking_from_descriptor(payload: Mapping[str, Any]) -> RankingFunction:
    """Rebuild a factory ranking from :func:`ranking_descriptor` output.

    Raises ``ValueError`` on an unknown or malformed descriptor -- the
    store treats that as segment corruption, never as a reason to fall
    back to a default ordering.
    """
    kind = payload.get("kind") if isinstance(payload, Mapping) else None
    if kind == "value":
        return by_value()
    if kind == "key":
        key = payload.get("key")
        if not isinstance(key, str) or not key:
            raise ValueError(f"malformed key ranking descriptor: {payload!r}")
        return by_key(key)
    if kind == "sum_of_keys":
        keys = payload.get("keys")
        if (
            not isinstance(keys, (list, tuple))
            or not keys
            or not all(isinstance(k, str) and k for k in keys)
        ):
            raise ValueError(
                f"malformed sum_of_keys ranking descriptor: {payload!r}"
            )
        return by_sum_of_keys(*keys)
    raise ValueError(f"unknown ranking descriptor {payload!r}")


#: Names that carry no identity (the constructor defaults) -- two
#: rankings sharing one of these must not be treated as equivalent.
_ANONYMOUS_NAMES = frozenset({"", "score", "custom", "<lambda>"})


def rankings_equivalent(a: Optional[RankingFunction], b: Optional[RankingFunction]) -> bool:
    """Whether two ranking functions demonstrably order tuples the same.

    ``None`` stands for the by-value default.  Equivalence is
    establishable two ways: the rankings share the same underlying
    score callable, or they carry the same *descriptive* name (the
    factory-assigned ones -- ``by_value``, ``by_key(date)``, ... --
    which encode the scoring rule; anonymous defaults like
    ``"custom"`` or ``"<lambda>"`` never match).  Used by the snapshot
    registry to reject re-registration of one database under a
    conflicting ranking, so the check errs toward *false*: two
    semantically equal but unrelated callables are reported as
    different.
    """
    a = a if a is not None else by_value()
    b = b if b is not None else by_value()
    if a is b or a._score is b._score:
        return True
    return a.name == b.name and a.name not in _ANONYMOUS_NAMES
