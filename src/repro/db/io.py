"""Serialization of probabilistic databases (JSON and CSV).

The JSON format keeps the x-tuple grouping explicit; the CSV format is
one row per tuple with the x-tuple id as a column, which matches how
Table I of the paper is laid out (sensor id, tuple id, value,
probability).  Both formats round-trip exactly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import ProbabilisticTuple, XTuple

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def database_to_dict(db: ProbabilisticDatabase) -> Dict[str, Any]:
    """Encode a database as a plain JSON-serializable dictionary."""
    return {
        "format": "repro.probabilistic_database",
        "version": _FORMAT_VERSION,
        "name": db.name,
        "xtuples": [
            {
                "xid": xt.xid,
                "alternatives": [
                    {
                        "tid": t.tid,
                        "value": t.value,
                        "probability": t.probability,
                    }
                    for t in xt.alternatives
                ],
            }
            for xt in db.xtuples
        ],
    }


def database_from_dict(payload: Dict[str, Any]) -> ProbabilisticDatabase:
    """Decode a database from :func:`database_to_dict` output."""
    if payload.get("format") != "repro.probabilistic_database":
        raise ValueError("payload is not a repro probabilistic database")
    xtuples: List[XTuple] = []
    for xt in payload["xtuples"]:
        xid = xt["xid"]
        members = tuple(
            ProbabilisticTuple(
                tid=alt["tid"],
                xtuple_id=xid,
                value=alt["value"],
                probability=alt["probability"],
            )
            for alt in xt["alternatives"]
        )
        xtuples.append(XTuple(xid=xid, alternatives=members))
    return ProbabilisticDatabase(xtuples, name=payload.get("name", ""))


def save_json(db: ProbabilisticDatabase, path: PathLike) -> None:
    """Write ``db`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(database_to_dict(db), f, indent=2, sort_keys=False)


def load_json(path: PathLike) -> ProbabilisticDatabase:
    """Read a database previously written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as f:
        return database_from_dict(json.load(f))


def save_csv(db: ProbabilisticDatabase, path: PathLike) -> None:
    """Write ``db`` to ``path`` as CSV (one row per tuple).

    Non-scalar values (e.g. the MOV ``{date, rating}`` mappings) are
    JSON-encoded inside the ``value`` column.
    """
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["xtuple_id", "tid", "value", "probability"])
        for xt in db.xtuples:
            for t in xt.alternatives:
                writer.writerow(
                    [xt.xid, t.tid, json.dumps(t.value), repr(t.probability)]
                )


def load_csv(path: PathLike, name: str = "") -> ProbabilisticDatabase:
    """Read a database previously written by :func:`save_csv`.

    Rows sharing an ``xtuple_id`` are grouped into one x-tuple in file
    order; x-tuples appear in order of their first row.
    """
    grouped: Dict[str, List[ProbabilisticTuple]] = {}
    order: List[str] = []
    with open(path, "r", encoding="utf-8", newline="") as f:
        reader = csv.DictReader(f)
        for row in reader:
            xid = row["xtuple_id"]
            if xid not in grouped:
                grouped[xid] = []
                order.append(xid)
            grouped[xid].append(
                ProbabilisticTuple(
                    tid=row["tid"],
                    xtuple_id=xid,
                    value=json.loads(row["value"]),
                    probability=float(row["probability"]),
                )
            )
    xtuples = [XTuple(xid=xid, alternatives=tuple(grouped[xid])) for xid in order]
    return ProbabilisticDatabase(xtuples, name=name)
