"""Serialization of probabilistic databases (JSON and CSV).

The JSON format keeps the x-tuple grouping explicit; the CSV format is
one row per tuple with the x-tuple id as a column, which matches how
Table I of the paper is laid out (sensor id, tuple id, value,
probability).  Both formats round-trip exactly.

Ingest is the trust boundary: external payloads are validated *before*
any tuple object is constructed, and violations raise
:class:`~repro.exceptions.InvalidDataError` naming the offending row
or x-tuple -- a NaN probability in row 1234 of a CSV reports row 1234,
not a bare ``InvalidDatabaseError`` three layers later.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any, Dict, List, Set, Union

from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import ProbabilisticTuple, XTuple
from repro.exceptions import InvalidDataError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _check_probability(value: Any, where: str) -> float:
    """Validate one ingested existential probability.

    Rejects non-numbers, booleans, NaN, infinities, non-positive
    values and values above one -- each with the ingest location in
    the message, so malformed input is attributable to its source row.
    """
    if (
        not isinstance(value, (int, float))
        or isinstance(value, bool)
        or math.isnan(value)
        or math.isinf(value)
    ):
        raise InvalidDataError(
            f"{where}: probability must be a finite number, got {value!r}"
        )
    if not 0.0 < value <= 1.0:
        raise InvalidDataError(
            f"{where}: probability must lie in (0, 1], got {value!r}"
        )
    return float(value)


def _check_new_id(value: Any, seen: Set[str], label: str, where: str) -> str:
    """Validate one ingested identifier and record it as seen."""
    if not isinstance(value, str) or not value:
        raise InvalidDataError(
            f"{where}: {label} must be a non-empty string, got {value!r}"
        )
    if value in seen:
        raise InvalidDataError(f"{where}: duplicate {label} {value!r}")
    seen.add(value)
    return value


def database_to_dict(db: ProbabilisticDatabase) -> Dict[str, Any]:
    """Encode a database as a plain JSON-serializable dictionary."""
    return {
        "format": "repro.probabilistic_database",
        "version": _FORMAT_VERSION,
        "name": db.name,
        "xtuples": [
            {
                "xid": xt.xid,
                "alternatives": [
                    {
                        "tid": t.tid,
                        "value": t.value,
                        "probability": t.probability,
                    }
                    for t in xt.alternatives
                ],
            }
            for xt in db.xtuples
        ],
    }


def database_from_dict(payload: Dict[str, Any]) -> ProbabilisticDatabase:
    """Decode a database from :func:`database_to_dict` output.

    Malformed input -- invalid or duplicate identifiers, empty
    x-tuples, probabilities that are NaN, infinite, non-positive or
    above one -- raises :class:`~repro.exceptions.InvalidDataError`
    naming the offending x-tuple / tuple, before any database object
    is built.
    """
    if payload.get("format") != "repro.probabilistic_database":
        raise ValueError("payload is not a repro probabilistic database")
    seen_xids: Set[str] = set()
    seen_tids: Set[str] = set()
    xtuples: List[XTuple] = []
    for position, xt in enumerate(payload["xtuples"]):
        xid = _check_new_id(
            xt.get("xid"), seen_xids, "x-tuple id", f"x-tuple #{position}"
        )
        alternatives = xt.get("alternatives")
        if not alternatives:
            raise InvalidDataError(
                f"x-tuple {xid!r}: has no alternatives; every x-tuple "
                f"must hold at least one tuple"
            )
        members = tuple(
            ProbabilisticTuple(
                tid=_check_new_id(
                    alt.get("tid"),
                    seen_tids,
                    "tuple id",
                    f"x-tuple {xid!r}, alternative #{index}",
                ),
                xtuple_id=xid,
                value=alt["value"],
                probability=_check_probability(
                    alt.get("probability"),
                    f"tuple {alt.get('tid')!r} of x-tuple {xid!r}",
                ),
            )
            for index, alt in enumerate(alternatives)
        )
        xtuples.append(XTuple(xid=xid, alternatives=members))
    return ProbabilisticDatabase(xtuples, name=payload.get("name", ""))


def save_json(db: ProbabilisticDatabase, path: PathLike) -> None:
    """Write ``db`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(database_to_dict(db), f, indent=2, sort_keys=False)


def load_json(path: PathLike) -> ProbabilisticDatabase:
    """Read a database previously written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as f:
        return database_from_dict(json.load(f))


def save_csv(db: ProbabilisticDatabase, path: PathLike) -> None:
    """Write ``db`` to ``path`` as CSV (one row per tuple).

    Non-scalar values (e.g. the MOV ``{date, rating}`` mappings) are
    JSON-encoded inside the ``value`` column.
    """
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["xtuple_id", "tid", "value", "probability"])
        for xt in db.xtuples:
            for t in xt.alternatives:
                writer.writerow(
                    [xt.xid, t.tid, json.dumps(t.value), repr(t.probability)]
                )


def load_csv(path: PathLike, name: str = "") -> ProbabilisticDatabase:
    """Read a database previously written by :func:`save_csv`.

    Rows sharing an ``xtuple_id`` are grouped into one x-tuple in file
    order; x-tuples appear in order of their first row.  Malformed
    rows -- missing / duplicate identifiers, probabilities that do not
    parse or that are NaN, infinite, non-positive or above one --
    raise :class:`~repro.exceptions.InvalidDataError` naming the
    offending row number (header = row 1).
    """
    grouped: Dict[str, List[ProbabilisticTuple]] = {}
    order: List[str] = []
    seen_tids: Set[str] = set()
    with open(path, "r", encoding="utf-8", newline="") as f:
        reader = csv.DictReader(f)
        for number, row in enumerate(reader, start=2):
            where = f"row {number}"
            xid = row.get("xtuple_id")
            if not xid:
                raise InvalidDataError(
                    f"{where}: xtuple_id must be a non-empty string, "
                    f"got {xid!r}"
                )
            tid = _check_new_id(row.get("tid"), seen_tids, "tuple id", where)
            raw = row.get("probability")
            try:
                probability = float(raw) if raw is not None else None
            except ValueError:
                probability = None
            if probability is None:
                raise InvalidDataError(
                    f"{where}: probability must be a finite number, "
                    f"got {raw!r}"
                )
            if xid not in grouped:
                grouped[xid] = []
                order.append(xid)
            grouped[xid].append(
                ProbabilisticTuple(
                    tid=tid,
                    xtuple_id=xid,
                    value=json.loads(row["value"]),
                    probability=_check_probability(probability, where),
                )
            )
    xtuples = [XTuple(xid=xid, alternatives=tuple(grouped[xid])) for xid in order]
    return ProbabilisticDatabase(xtuples, name=name)
