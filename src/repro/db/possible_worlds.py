"""Possible-world semantics: enumeration, probabilities, sampling.

A possible world picks exactly one outcome per x-tuple: one of its real
alternatives, or -- when the alternatives' probabilities sum to less
than one -- the implicit null outcome.  The probability of a world is
the product of its choices' probabilities; worlds partition the
probability space (they sum to one).

Enumeration is exponential in the number of x-tuples and is meant for
small databases only: it is the ground truth the efficient algorithms
(PWR, TP, PSR) are validated against, and the engine behind the naive
``PW`` quality algorithm of Section IV.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import ProbabilisticTuple, XTuple

#: Null outcomes below this probability are treated as impossible, which
#: keeps float round-off from spawning spurious near-zero worlds.
NULL_EPSILON = 1e-12


@dataclass(frozen=True)
class PossibleWorld:
    """One fully determined state of the database.

    Attributes
    ----------
    choices:
        One entry per x-tuple, in database order: the chosen
        :class:`ProbabilisticTuple`, or ``None`` for the null outcome.
    probability:
        The world's probability (product of the choices' probabilities).
    """

    choices: Tuple[Optional[ProbabilisticTuple], ...]
    probability: float

    @property
    def real_tuples(self) -> Tuple[ProbabilisticTuple, ...]:
        """The non-null tuples present in this world."""
        return tuple(t for t in self.choices if t is not None)

    def __contains__(self, tid: str) -> bool:
        return any(t is not None and t.tid == tid for t in self.choices)


def _outcomes(xt: XTuple) -> List[Tuple[Optional[ProbabilisticTuple], float]]:
    """All outcomes of one x-tuple: its alternatives plus maybe null."""
    outcomes: List[Tuple[Optional[ProbabilisticTuple], float]] = [
        (t, t.probability) for t in xt.alternatives
    ]
    null_p = xt.null_probability
    if null_p > NULL_EPSILON:
        outcomes.append((None, null_p))
    return outcomes


def iter_worlds(db: ProbabilisticDatabase) -> Iterator[PossibleWorld]:
    """Yield every possible world of ``db`` with its probability.

    The worlds' probabilities sum to one.  Exponential in the number of
    x-tuples; intended for test oracles and the PW algorithm on small
    inputs.
    """
    per_xtuple = [_outcomes(xt) for xt in db.xtuples]
    for combo in itertools.product(*per_xtuple):
        probability = 1.0
        for _, p in combo:
            probability *= p
        yield PossibleWorld(
            choices=tuple(choice for choice, _ in combo),
            probability=probability,
        )


def world_probability(
    db: ProbabilisticDatabase, selection: Sequence[Optional[str]]
) -> float:
    """Probability of the world selecting the given tuple ids.

    Parameters
    ----------
    selection:
        One entry per x-tuple in database order: a tuple id, or ``None``
        for the null outcome.
    """
    if len(selection) != db.num_xtuples:
        raise ValueError(
            f"selection has {len(selection)} entries for {db.num_xtuples} x-tuples"
        )
    probability = 1.0
    for xt, chosen in zip(db.xtuples, selection):
        if chosen is None:
            probability *= xt.null_probability
        else:
            member = next((t for t in xt.alternatives if t.tid == chosen), None)
            if member is None:
                raise ValueError(
                    f"x-tuple {xt.xid!r} has no alternative {chosen!r}"
                )
            probability *= member.probability
    return probability


def sample_world(
    db: ProbabilisticDatabase, rng: random.Random
) -> PossibleWorld:
    """Draw one possible world at random (used by Monte-Carlo quality)."""
    choices: List[Optional[ProbabilisticTuple]] = []
    probability = 1.0
    for xt in db.xtuples:
        u = rng.random()
        acc = 0.0
        chosen: Optional[ProbabilisticTuple] = None
        for t in xt.alternatives:
            acc += t.probability
            if u < acc:
                chosen = t
                break
        choices.append(chosen)
        probability *= chosen.probability if chosen is not None else xt.null_probability
    return PossibleWorld(choices=tuple(choices), probability=probability)
