"""Deterministic fault injection for the parallel backend.

The resilience guarantees of :mod:`repro.core.parallel` -- crashed
workers are retried, hung workers are timed out and their pool rebuilt,
shm-attach failures are retried, exhausted retries degrade to the
in-process shards and then the NumPy kernel -- are only worth anything
if CI can exercise each path on demand.  Real crashes are not
schedulable, so this module fakes them *deterministically*:

* A :class:`FaultPlan` is a list of :class:`FaultEvent` triggers, each
  naming a fault ``kind``, the shard (block submission index) it fires
  on, and how many ``times`` it fires before disarming.
* The **coordinator** consumes the plan: before submitting block ``b``
  it calls :meth:`FaultPlan.draw`, and the directive (a plain dict)
  rides inside the task payload.  The injection *decision* therefore
  never depends on worker scheduling -- the same plan against the same
  input replays the same faults, attempt by attempt.
* The **worker** merely executes the directive it was handed
  (:func:`execute_worker_fault`): die by SIGKILL, sleep past the
  supervisor's progress timeout, run slow, or raise
  :class:`~repro.exceptions.FaultInjectedError` in place of the shm
  attach.

Fault kinds (and the recovery path each exercises):

``kill``
    The worker SIGKILLs itself -- ``BrokenProcessPool``; supervisor
    rebuilds the pool and retries the batch.
``hang``
    The worker sleeps past the progress timeout -- supervisor declares
    a hang, kills and rebuilds the pool, retries.
``slow``
    The worker sleeps ``delay_ms`` then completes normally -- exercises
    timeout headroom without failing anything.
``attach``
    The worker raises in place of mapping the shared-memory columns --
    a retryable task error with the pool still healthy.
``serial``
    The **in-process** sharded scan raises -- forces the final
    degradation tier (NumPy kernel).

Activation: programmatically via :func:`install_faults` /
:func:`use_faults`, or from the environment via ``REPRO_FAULTS`` (a
JSON :meth:`FaultPlan.to_dict` encoding), which is how CI smoke jobs
switch plans on without touching test code.
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import FaultInjectedError, InvalidSpecError

#: Recognized fault kinds (see the module docstring for semantics).
FAULT_KINDS = ("kill", "hang", "slow", "attach", "serial")

#: Kinds that fire at the pooled-task injection point.
TASK_KINDS = ("kill", "hang", "slow", "attach")

#: Default sleep of a ``hang`` directive.  Bounded (not infinite) so a
#: supervision bug leaves a worker that eventually exits instead of a
#: process wedged until the host reaps it; far above any sane progress
#: timeout, so the supervisor always fires first.
HANG_SLEEP_MS = 60_000.0

#: Default sleep of a ``slow`` directive.
SLOW_SLEEP_MS = 25.0


@dataclass
class FaultEvent:
    """One armed fault: ``kind`` at ``block``, up to ``times`` firings.

    ``block`` is the shard's submission index (``None`` matches any
    shard -- the first draw wins).  ``times`` is the remaining-firing
    budget; each :meth:`FaultPlan.draw` match decrements it, so a
    ``times=1`` kill fails the first attempt and lets the retry
    succeed.  ``delay_ms`` parameterizes ``hang`` / ``slow``.
    """

    kind: str
    block: Optional[int] = None
    times: int = 1
    delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidSpecError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.block is not None and (
            not isinstance(self.block, int)
            or isinstance(self.block, bool)
            or self.block < 0
        ):
            raise InvalidSpecError(
                f"fault block must be a non-negative integer or None, "
                f"got {self.block!r}"
            )
        if not isinstance(self.times, int) or isinstance(self.times, bool) \
                or self.times < 1:
            raise InvalidSpecError(
                f"fault times must be a positive integer, got {self.times!r}"
            )
        if self.delay_ms is not None and (
            not isinstance(self.delay_ms, (int, float))
            or isinstance(self.delay_ms, bool)
            or not self.delay_ms > 0
        ):
            raise InvalidSpecError(
                f"fault delay_ms must be a positive number or None, "
                f"got {self.delay_ms!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding."""
        return {
            "kind": self.kind,
            "block": self.block,
            "times": self.times,
            "delay_ms": self.delay_ms,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        if not isinstance(payload, Mapping):
            raise InvalidSpecError(
                f"fault event must be a mapping, got {payload!r}"
            )
        unknown = sorted(set(payload) - {"kind", "block", "times", "delay_ms"})
        if unknown:
            raise InvalidSpecError(f"unknown fault-event fields {unknown!r}")
        try:
            kind = payload["kind"]
        except KeyError:
            raise InvalidSpecError(
                f"fault event lacks a 'kind': {dict(payload)!r}"
            ) from None
        return cls(
            kind=kind,
            block=payload.get("block"),
            times=payload.get("times", 1),
            delay_ms=payload.get("delay_ms"),
        )


class FaultPlan:
    """A seeded, consumable schedule of faults for one (or more) runs.

    The plan is mutable on purpose -- each :meth:`draw` burns budget --
    so a fresh plan per test gives a fresh schedule.  ``drawn`` records
    every directive issued (``(point, block, directive)``), letting
    tests assert the fault actually fired rather than silently testing
    the happy path.
    """

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events: List[FaultEvent] = [
            FaultEvent(
                kind=e.kind, block=e.block, times=e.times, delay_ms=e.delay_ms
            )
            for e in events
        ]
        self.drawn: List[Tuple[str, int, Dict[str, Any]]] = []

    # -- wire form -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding (``REPRO_FAULTS`` format)."""
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise InvalidSpecError(
                f"fault plan must be a mapping, got {payload!r}"
            )
        events = payload.get("events")
        if not isinstance(events, (list, tuple)):
            raise InvalidSpecError(
                f"fault plan needs an 'events' list, got {events!r}"
            )
        return cls([FaultEvent.from_dict(e) for e in events])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidSpecError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    # -- consumption ---------------------------------------------------
    def draw(self, point: str, block: int) -> Optional[Dict[str, Any]]:
        """The directive (if any) armed for this injection point.

        ``point`` is ``"task"`` (a pooled shard submission) or
        ``"serial"`` (an in-process shard scan); ``block`` the shard's
        submission index.  The first matching event with budget left
        fires and is decremented.  Returns a picklable directive dict
        for the worker, or ``None``.
        """
        for event in self.events:
            if event.times < 1:
                continue
            if point == "serial" and event.kind != "serial":
                continue
            if point == "task" and event.kind not in TASK_KINDS:
                continue
            if event.block is not None and event.block != block:
                continue
            event.times -= 1
            directive: Dict[str, Any] = {"kind": event.kind}
            if event.delay_ms is not None:
                directive["delay_ms"] = event.delay_ms
            self.drawn.append((point, block, directive))
            return directive
        return None

    def fired(self, kind: Optional[str] = None) -> int:
        """How many directives were issued (optionally of one kind)."""
        if kind is None:
            return len(self.drawn)
        return sum(1 for _, _, d in self.drawn if d["kind"] == kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan: {self.events!r}, {len(self.drawn)} drawn>"


# ---------------------------------------------------------------------------
# Activation (coordinator side)
# ---------------------------------------------------------------------------

_installed: Optional[FaultPlan] = None


def install_faults(plan: Optional[FaultPlan]) -> None:
    """Install (or with ``None`` clear) the process-wide fault plan."""
    global _installed
    _installed = plan


def clear_faults() -> None:
    """Disarm fault injection."""
    install_faults(None)


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped fault plan: armed inside the ``with``, restored after."""
    global _installed
    previous = _installed
    _installed = plan
    try:
        yield plan
    finally:
        _installed = previous


def active_faults() -> Optional[FaultPlan]:
    """The armed fault plan: the installed one, else ``REPRO_FAULTS``.

    The environment plan is parsed **once** and installed, so its
    ``times`` budgets persist across runs within the process -- an env
    plan with ``times=1`` faults exactly one run, the same contract as
    a programmatic plan.
    """
    global _installed
    if _installed is not None:
        return _installed
    raw = os.environ.get("REPRO_FAULTS")
    if raw:
        _installed = FaultPlan.from_json(raw)
        return _installed
    return None


# ---------------------------------------------------------------------------
# Execution (worker side)
# ---------------------------------------------------------------------------


def execute_worker_fault(directive: Mapping[str, Any]) -> None:
    """Carry out a directive inside a worker process.

    Runs before the worker touches shared memory, so a killed or
    hung worker never holds a segment mapping.  ``slow`` returns and
    lets the task proceed; the others never complete the task.
    """
    kind = directive.get("kind")
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(directive.get("delay_ms", HANG_SLEEP_MS)) / 1000.0)
        raise FaultInjectedError(
            "injected hang outlived its sleep without being reaped"
        )
    elif kind == "slow":
        time.sleep(float(directive.get("delay_ms", SLOW_SLEEP_MS)) / 1000.0)
    elif kind == "attach":
        raise FaultInjectedError(
            "injected shared-memory attach failure"
        )
    else:  # pragma: no cover - draw() only emits known kinds
        raise FaultInjectedError(f"unknown fault directive {directive!r}")
