"""Deterministic fault injection for the parallel backend.

The resilience guarantees of :mod:`repro.core.parallel` -- crashed
workers are retried, hung workers are timed out and their pool rebuilt,
shm-attach failures are retried, exhausted retries degrade to the
in-process shards and then the NumPy kernel -- are only worth anything
if CI can exercise each path on demand.  Real crashes are not
schedulable, so this module fakes them *deterministically*:

* A :class:`FaultPlan` is a list of :class:`FaultEvent` triggers, each
  naming a fault ``kind``, the shard (block submission index) it fires
  on, and how many ``times`` it fires before disarming.
* The **coordinator** consumes the plan: before submitting block ``b``
  it calls :meth:`FaultPlan.draw`, and the directive (a plain dict)
  rides inside the task payload.  The injection *decision* therefore
  never depends on worker scheduling -- the same plan against the same
  input replays the same faults, attempt by attempt.
* The **worker** merely executes the directive it was handed
  (:func:`execute_worker_fault`): die by SIGKILL, sleep past the
  supervisor's progress timeout, run slow, or raise
  :class:`~repro.exceptions.FaultInjectedError` in place of the shm
  attach.

Fault kinds (and the recovery path each exercises):

``kill``
    The worker SIGKILLs itself -- ``BrokenProcessPool``; supervisor
    rebuilds the pool and retries the batch.  With a ``step`` set the
    kill instead fires at that *disk* step of the snapshot store
    (:mod:`repro.store`): the whole process SIGKILLs mid-write, which
    is how the end-to-end kill-and-restart test crashes a real child
    process at a deterministic point.
``hang``
    The worker sleeps past the progress timeout -- supervisor declares
    a hang, kills and rebuilds the pool, retries.
``slow``
    The worker sleeps ``delay_ms`` then completes normally -- exercises
    timeout headroom without failing anything.
``attach``
    The worker raises in place of mapping the shared-memory columns --
    a retryable task error with the pool still healthy.
``serial``
    The **in-process** sharded scan raises -- forces the final
    degradation tier (NumPy kernel).

Disk fault kinds (consumed by :mod:`repro.store` at its named write /
read steps; ``step`` is an ``fnmatch`` pattern against step names like
``"segment:payload"`` or ``"journal:*"``, ``None`` matches any step):

``crash``
    Raise :class:`~repro.exceptions.SimulatedCrashError` at the step:
    the in-process stand-in for a power cut.  The store runs *no*
    cleanup on this path, so reopen recovers exactly the state a real
    crash would leave.
``torn``
    Write only a prefix of the payload, fsync it, then crash -- the
    classic torn write.  Recovery must detect the truncated frame and
    roll back to the pre-write state.
``bitflip``
    Flip one bit of the payload and complete the write *successfully*
    -- silent media corruption.  The reader's checksums must catch it
    and quarantine the file instead of serving it.
``shortread``
    The reader sees only a prefix of the file -- a truncation that
    happened after the write.  Must surface as
    :class:`~repro.exceptions.CorruptSnapshotError`, never as garbage
    data.
``enospc``
    Raise ``OSError(ENOSPC)`` at the step -- disk full.  The store
    must fail the write with a typed error and leave no partial state
    (and the pool must roll back / never publish the in-memory entry).
``contend``
    Run the event's ``command`` (a Python script) in a **second real
    process** at the step, waiting for it to exit, then continue.
    This is how the contention tests interleave two genuine processes
    at a deterministic point of the store's protocols: the script
    typically opens the same store root and persists / cleans /
    checkpoints against it, so cross-process locking is exercised
    exactly where the plan says -- inside a writer's critical section
    (the child must wait or shed typed) or just before one (the child
    wins the lock and the parent waits).  The child inherits the
    environment minus ``REPRO_FAULTS`` (the plan must not recursively
    re-arm itself in the child).

The store's step vocabulary covers the whole write/read/maintenance
surface: ``segment:*`` and ``journal:*`` (PR 9), plus
``lock:acquire`` (before every cross-process lock acquisition),
``checkpoint:begin`` / ``checkpoint:payload`` / ``checkpoint:written``
/ ``checkpoint:synced`` / ``checkpoint:renamed`` /
``checkpoint:committed`` (journal compaction), and ``gc:tombstone`` /
``gc:unlink`` (the two phases of segment deletion).

Activation: programmatically via :func:`install_faults` /
:func:`use_faults`, or from the environment via ``REPRO_FAULTS`` (a
JSON :meth:`FaultPlan.to_dict` encoding), which is how CI smoke jobs
switch plans on without touching test code.
"""

from __future__ import annotations

import errno
import fnmatch
import json
import os
import signal
import subprocess
import sys
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import (
    FaultInjectedError,
    InvalidSpecError,
    SimulatedCrashError,
)

#: Recognized fault kinds (see the module docstring for semantics).
FAULT_KINDS = (
    "kill",
    "hang",
    "slow",
    "attach",
    "serial",
    "crash",
    "torn",
    "bitflip",
    "shortread",
    "enospc",
    "contend",
)

#: Kinds that fire at the pooled-task injection point.
TASK_KINDS = ("kill", "hang", "slow", "attach")

#: Kinds that fire at the snapshot store's disk steps.  ``kill`` is in
#: both sets: without a ``step`` it kills a pool worker, with one it
#: SIGKILLs the whole process at that disk step.
DISK_KINDS = (
    "crash",
    "torn",
    "bitflip",
    "shortread",
    "enospc",
    "kill",
    "contend",
)

#: Upper bound on a ``contend`` child's runtime, in seconds: a wedged
#: child must fail the test loudly, not hang the parent forever.
CONTEND_TIMEOUT_S = 120.0

#: Default sleep of a ``hang`` directive.  Bounded (not infinite) so a
#: supervision bug leaves a worker that eventually exits instead of a
#: process wedged until the host reaps it; far above any sane progress
#: timeout, so the supervisor always fires first.
HANG_SLEEP_MS = 60_000.0

#: Default sleep of a ``slow`` directive.
SLOW_SLEEP_MS = 25.0


@dataclass
class FaultEvent:
    """One armed fault: ``kind`` at ``block``, up to ``times`` firings.

    ``block`` is the shard's submission index (``None`` matches any
    shard -- the first draw wins).  ``times`` is the remaining-firing
    budget; each :meth:`FaultPlan.draw` match decrements it, so a
    ``times=1`` kill fails the first attempt and lets the retry
    succeed.  ``delay_ms`` parameterizes ``hang`` / ``slow``.

    ``step`` arms a *disk* fault instead: an ``fnmatch`` pattern
    against the snapshot store's step names (``"segment:payload"``,
    ``"journal:*"``, ...).  An event with a step set fires only at
    :meth:`FaultPlan.draw_disk`, never at the task/serial points --
    and the pure disk kinds require one.  ``skip`` ignores that many
    matching disk draws before firing, so a test can let a base
    snapshot persist cleanly and crash the *second* write at the same
    step.

    ``command`` is the Python script a ``contend`` event runs in a
    second real process at its step (required for ``contend``, invalid
    for every other kind).
    """

    kind: str
    block: Optional[int] = None
    times: int = 1
    delay_ms: Optional[float] = None
    step: Optional[str] = None
    skip: int = 0
    command: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidSpecError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.step is not None and not (
            isinstance(self.step, str) and self.step
        ):
            raise InvalidSpecError(
                f"fault step must be a non-empty string or None, "
                f"got {self.step!r}"
            )
        if self.kind in DISK_KINDS and self.kind not in TASK_KINDS \
                and self.step is None:
            raise InvalidSpecError(
                f"disk fault kind {self.kind!r} requires a step pattern"
            )
        if self.step is not None and self.kind not in DISK_KINDS:
            raise InvalidSpecError(
                f"fault kind {self.kind!r} cannot target a disk step"
            )
        if self.kind == "contend" and not (
            isinstance(self.command, str) and self.command
        ):
            raise InvalidSpecError(
                "contend faults need a 'command' script to run in the "
                "second process"
            )
        if self.command is not None and self.kind != "contend":
            raise InvalidSpecError(
                f"fault kind {self.kind!r} cannot carry a command"
            )
        if not isinstance(self.skip, int) or isinstance(self.skip, bool) \
                or self.skip < 0:
            raise InvalidSpecError(
                f"fault skip must be a non-negative integer, got {self.skip!r}"
            )
        if self.block is not None and (
            not isinstance(self.block, int)
            or isinstance(self.block, bool)
            or self.block < 0
        ):
            raise InvalidSpecError(
                f"fault block must be a non-negative integer or None, "
                f"got {self.block!r}"
            )
        if not isinstance(self.times, int) or isinstance(self.times, bool) \
                or self.times < 1:
            raise InvalidSpecError(
                f"fault times must be a positive integer, got {self.times!r}"
            )
        if self.delay_ms is not None and (
            not isinstance(self.delay_ms, (int, float))
            or isinstance(self.delay_ms, bool)
            or not self.delay_ms > 0
        ):
            raise InvalidSpecError(
                f"fault delay_ms must be a positive number or None, "
                f"got {self.delay_ms!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "block": self.block,
            "times": self.times,
            "delay_ms": self.delay_ms,
        }
        if self.step is not None:
            payload["step"] = self.step
        if self.skip:
            payload["skip"] = self.skip
        if self.command is not None:
            payload["command"] = self.command
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        if not isinstance(payload, Mapping):
            raise InvalidSpecError(
                f"fault event must be a mapping, got {payload!r}"
            )
        unknown = sorted(
            set(payload)
            - {"kind", "block", "times", "delay_ms", "step", "skip", "command"}
        )
        if unknown:
            raise InvalidSpecError(f"unknown fault-event fields {unknown!r}")
        try:
            kind = payload["kind"]
        except KeyError:
            raise InvalidSpecError(
                f"fault event lacks a 'kind': {dict(payload)!r}"
            ) from None
        return cls(
            kind=kind,
            block=payload.get("block"),
            times=payload.get("times", 1),
            delay_ms=payload.get("delay_ms"),
            step=payload.get("step"),
            skip=payload.get("skip", 0),
            command=payload.get("command"),
        )


class FaultPlan:
    """A seeded, consumable schedule of faults for one (or more) runs.

    The plan is mutable on purpose -- each :meth:`draw` burns budget --
    so a fresh plan per test gives a fresh schedule.  ``drawn`` records
    every directive issued (``(point, block, directive)``), letting
    tests assert the fault actually fired rather than silently testing
    the happy path.
    """

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events: List[FaultEvent] = [
            FaultEvent(
                kind=e.kind,
                block=e.block,
                times=e.times,
                delay_ms=e.delay_ms,
                step=e.step,
                skip=e.skip,
                command=e.command,
            )
            for e in events
        ]
        #: Every directive issued: ``(point, block_or_step, directive)``.
        self.drawn: List[Tuple[str, Any, Dict[str, Any]]] = []

    # -- wire form -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding (``REPRO_FAULTS`` format)."""
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise InvalidSpecError(
                f"fault plan must be a mapping, got {payload!r}"
            )
        events = payload.get("events")
        if not isinstance(events, (list, tuple)):
            raise InvalidSpecError(
                f"fault plan needs an 'events' list, got {events!r}"
            )
        return cls([FaultEvent.from_dict(e) for e in events])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidSpecError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    # -- consumption ---------------------------------------------------
    def draw(self, point: str, block: int) -> Optional[Dict[str, Any]]:
        """The directive (if any) armed for this injection point.

        ``point`` is ``"task"`` (a pooled shard submission) or
        ``"serial"`` (an in-process shard scan); ``block`` the shard's
        submission index.  The first matching event with budget left
        fires and is decremented.  Returns a picklable directive dict
        for the worker, or ``None``.
        """
        for event in self.events:
            if event.times < 1:
                continue
            if event.step is not None:  # disk-armed; never fires here
                continue
            if point == "serial" and event.kind != "serial":
                continue
            if point == "task" and event.kind not in TASK_KINDS:
                continue
            if event.block is not None and event.block != block:
                continue
            event.times -= 1
            directive: Dict[str, Any] = {"kind": event.kind}
            if event.delay_ms is not None:
                directive["delay_ms"] = event.delay_ms
            self.drawn.append((point, block, directive))
            return directive
        return None

    def draw_disk(self, step: str) -> Optional[Dict[str, Any]]:
        """The directive (if any) armed for this disk step.

        ``step`` is the store's step name (``"segment:payload"``,
        ``"journal:synced"``, ``"segment:read"``, ...); an event fires
        when its ``step`` pattern ``fnmatch``-es it, its ``skip``
        budget is exhausted (matching draws decrement it first), and
        ``times`` budget remains.  The directive carries the event's
        ``kind`` plus the concrete step it fired at.
        """
        for event in self.events:
            if event.step is None or event.times < 1:
                continue
            if not fnmatch.fnmatchcase(step, event.step):
                continue
            if event.skip > 0:
                event.skip -= 1
                continue
            event.times -= 1
            directive: Dict[str, Any] = {"kind": event.kind, "step": step}
            if event.command is not None:
                directive["command"] = event.command
            self.drawn.append(("disk", step, directive))
            return directive
        return None

    def fired(self, kind: Optional[str] = None) -> int:
        """How many directives were issued (optionally of one kind)."""
        if kind is None:
            return len(self.drawn)
        return sum(1 for _, _, d in self.drawn if d["kind"] == kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan: {self.events!r}, {len(self.drawn)} drawn>"


# ---------------------------------------------------------------------------
# Activation (coordinator side)
# ---------------------------------------------------------------------------

_installed: Optional[FaultPlan] = None


def install_faults(plan: Optional[FaultPlan]) -> None:
    """Install (or with ``None`` clear) the process-wide fault plan."""
    global _installed
    _installed = plan


def clear_faults() -> None:
    """Disarm fault injection."""
    install_faults(None)


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped fault plan: armed inside the ``with``, restored after."""
    global _installed
    previous = _installed
    _installed = plan
    try:
        yield plan
    finally:
        _installed = previous


def active_faults() -> Optional[FaultPlan]:
    """The armed fault plan: the installed one, else ``REPRO_FAULTS``.

    The environment plan is parsed **once** and installed, so its
    ``times`` budgets persist across runs within the process -- an env
    plan with ``times=1`` faults exactly one run, the same contract as
    a programmatic plan.
    """
    global _installed
    if _installed is not None:
        return _installed
    raw = os.environ.get("REPRO_FAULTS")
    if raw:
        _installed = FaultPlan.from_json(raw)
        return _installed
    return None


# ---------------------------------------------------------------------------
# Execution (worker side)
# ---------------------------------------------------------------------------


def execute_worker_fault(directive: Mapping[str, Any]) -> None:
    """Carry out a directive inside a worker process.

    Runs before the worker touches shared memory, so a killed or
    hung worker never holds a segment mapping.  ``slow`` returns and
    lets the task proceed; the others never complete the task.
    """
    kind = directive.get("kind")
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(directive.get("delay_ms", HANG_SLEEP_MS)) / 1000.0)
        raise FaultInjectedError(
            "injected hang outlived its sleep without being reaped"
        )
    elif kind == "slow":
        time.sleep(float(directive.get("delay_ms", SLOW_SLEEP_MS)) / 1000.0)
    elif kind == "attach":
        raise FaultInjectedError(
            "injected shared-memory attach failure"
        )
    else:  # pragma: no cover - draw() only emits known kinds
        raise FaultInjectedError(f"unknown fault directive {directive!r}")


# ---------------------------------------------------------------------------
# Disk faults (snapshot-store side)
# ---------------------------------------------------------------------------


def draw_disk_fault(step: str) -> Optional[Dict[str, Any]]:
    """The active plan's directive for this disk step, or ``None``.

    The store calls this at every named step of its write and read
    protocols; with no plan armed the call is a cheap ``None`` and the
    production path pays nothing else.
    """
    plan = active_faults()
    if plan is None:
        return None
    return plan.draw_disk(step)


def execute_disk_fault(directive: Mapping[str, Any]) -> None:
    """Carry out the raising / killing disk directives.

    ``crash`` raises :class:`~repro.exceptions.SimulatedCrashError`
    (the store lets it propagate with no cleanup); ``kill`` SIGKILLs
    the whole process -- for subprocess tests that reopen the store in
    a fresh interpreter; ``enospc`` raises a genuine
    ``OSError(ENOSPC)`` so the store's error handling is exercised by
    the same exception a full disk produces.  The data-transforming
    kinds (``torn`` / ``bitflip`` / ``shortread``) return without
    raising: the store applies them to the bytes in flight via
    :func:`torn_payload` / :func:`flip_one_bit` / read truncation.
    ``contend`` runs the directive's ``command`` script in a *second
    real interpreter* at this step -- while the faulted process is
    frozen mid-protocol, typically holding the store's cross-process
    lock -- waits for it, then returns so the step continues; the
    child inherits the environment minus ``REPRO_FAULTS`` (it must not
    re-arm the plan recursively).
    """
    kind = directive.get("kind")
    step = directive.get("step", "?")
    if kind == "crash":
        raise SimulatedCrashError(f"injected crash at disk step {step!r}")
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "enospc":
        raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(step))
    if kind == "contend":
        env = {k: v for k, v in os.environ.items() if k != "REPRO_FAULTS"}
        subprocess.run(
            [sys.executable, "-c", str(directive.get("command", ""))],
            env=env,
            timeout=CONTEND_TIMEOUT_S,
            check=False,
        )


def torn_payload(data: bytes) -> bytes:
    """The prefix a torn write leaves behind: half the bytes.

    Deterministic in the payload alone; always a *strict* prefix (at
    least one byte short) so the tear is guaranteed detectable.
    """
    return bytes(data[: len(data) // 2])


def flip_one_bit(data: bytes) -> bytes:
    """``data`` with exactly one bit flipped, chosen deterministically.

    The bit index is derived from the payload's own CRC, so the same
    payload always corrupts the same way (replayable) while different
    payloads exercise different offsets.  Empty payloads return empty.
    """
    if not data:
        return b""
    bit = zlib.crc32(data) % (8 * len(data))
    corrupted = bytearray(data)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    return bytes(corrupted)
