"""Deterministic test harnesses for the ``repro`` library.

Currently one module: :mod:`repro.testing.faults`, the seeded
fault-injection harness the resilience suite (and the ``fault-smoke``
CI job) uses to exercise every recovery path of the parallel backend
reproducibly.
"""

from repro.testing.faults import (
    FaultEvent,
    FaultPlan,
    active_faults,
    clear_faults,
    install_faults,
    use_faults,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "active_faults",
    "clear_faults",
    "install_faults",
    "use_faults",
]
