"""Deterministic test harnesses for the ``repro`` library.

Currently one module: :mod:`repro.testing.faults`, the seeded
fault-injection harness the resilience suite (and the ``fault-smoke``
CI job) uses to exercise every recovery path of the parallel backend
and the disk steps of the durable snapshot store reproducibly.
"""

from repro.testing.faults import (
    FaultEvent,
    FaultPlan,
    active_faults,
    clear_faults,
    draw_disk_fault,
    execute_disk_fault,
    flip_one_bit,
    install_faults,
    torn_payload,
    use_faults,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "active_faults",
    "clear_faults",
    "draw_disk_fault",
    "execute_disk_fault",
    "flip_one_bit",
    "install_faults",
    "torn_payload",
    "use_faults",
]
