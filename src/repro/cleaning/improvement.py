"""Expected quality improvement: Theorem 2 and its building blocks.

Theorem 2 is the paper's key cleaning result: the expected improvement
of probing x-tuple ``τ_l`` ``M_l`` times, over the joint distribution
of all probe outcomes, collapses to the closed form

    I(X, M, D, Q) = -Σ_l (1 - (1 - P_l)^{M_l}) · g(l, D),

where ``g(l, D) = Σ_{t_i∈τ_l} ω_i·p_i <= 0`` is the x-tuple's
contribution to the quality score.  No cleaned database ever needs to
be materialized.

The *marginal* gain of the j-th probe of one x-tuple,

    b(l, D, j) = -(1 - P_l)^{j-1} · P_l · g(l, D),

decreases monotonically in ``j`` (Lemma 4), which is what lets the
knapsack formulation (Theorem 3) and the greedy heuristic work.

:func:`expected_improvement_bruteforce` evaluates Definition 6 /
Eq. 17 literally -- enumerating every joint probe outcome and scoring
every resulting database -- and exists to validate Theorem 2 in tests.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

import numpy as np

from repro.cleaning.model import CleaningPlan, CleaningProblem
from repro.core.tp import compute_quality_tp
from repro.db.database import ProbabilisticDatabase

#: Success probabilities this close to 1 make (1-P)^j underflow cleanly;
#: no special handling needed, listed for documentation.


def success_probability(sc_probability: float, operations: int) -> float:
    """``1 - (1 - P_l)^{M_l}``: chance at least one of ``M_l`` probes works."""
    if operations < 0:
        raise ValueError("operation count must be non-negative")
    return 1.0 - (1.0 - sc_probability) ** operations


def cumulative_gain(sc_probability: float, g: float, operations: int) -> float:
    """``G(l, D, j)``: expected improvement of ``j`` probes of one x-tuple."""
    return -success_probability(sc_probability, operations) * g


def marginal_gain(sc_probability: float, g: float, j: int) -> float:
    """``b(l, D, j)``: extra improvement of raising the probe count to ``j``.

    ``b(l, D, 0) = 0`` by convention; decreasing in ``j`` (Lemma 4).
    """
    if j < 0:
        raise ValueError("probe index must be non-negative")
    if j == 0:
        return 0.0
    return -((1.0 - sc_probability) ** (j - 1)) * sc_probability * g


def expected_improvement(problem: CleaningProblem, plan: CleaningPlan) -> float:
    """``I(X, M, D, Q)`` for a plan, via Theorem 2 (exact, O(|X|)).

    Evaluated as one array expression over the problem's dense columns
    (``(1-(1-P)^M)·g`` summed over the selected x-tuples); only the
    id-to-index resolution stays scalar.
    """
    if not plan.operations:
        return 0.0
    indices = np.fromiter(
        (problem.xtuple_index(xid) for xid in plan.operations),
        dtype=np.int64,
        count=len(plan.operations),
    )
    counts = np.fromiter(
        plan.operations.values(), dtype=np.float64, count=len(plan.operations)
    )
    survive = (1.0 - problem.sc_array[indices]) ** counts
    return float(-np.sum((1.0 - survive) * problem.g_array[indices]))


def expected_quality_after(problem: CleaningProblem, plan: CleaningPlan) -> float:
    """``E[S(D', Q)] = S(D, Q) + I(X, M, D, Q)``."""
    return problem.quality + expected_improvement(problem, plan)


def improvement_upper_bound(problem: CleaningProblem) -> float:
    """The supremum of achievable expected improvement.

    Probing every candidate x-tuple infinitely often drives each
    success probability to one, so the bound is ``Σ_{l: P_l>0} -g(l,D)``
    -- at most ``|S(D, Q)|`` (quality can never exceed zero).  One
    masked reduction over the dense columns.
    """
    return float(-np.sum(problem.g_array[problem.sc_array > 0.0]))


def expected_improvement_bruteforce(
    db: ProbabilisticDatabase,
    problem: CleaningProblem,
    plan: CleaningPlan,
) -> float:
    """Definition 6 evaluated literally (Eq. 14-18). Test oracle only.

    Enumerates the cross product of per-x-tuple outcomes: each probed
    ``τ_l`` either stays uncertain (probability ``(1-P_l)^{M_l}``) or
    collapses to one of its alternatives ``t_i`` (probability
    ``e_i·(1-(1-P_l)^{M_l})``) -- or, for incomplete x-tuples, reveals
    "no reading" (the null mass share).  Every outcome database is
    scored with TP and the improvements are averaged.

    Exponential in ``|X|`` and per-x-tuple fan-out; keep inputs tiny.
    """
    before = problem.quality
    xids = sorted(plan.operations)

    # Per-selected-x-tuple outcome lists: (replacement-or-None, probability).
    # `None` replacement means the x-tuple stays as is; the sentinel
    # "DROP" means a successful probe revealed the null outcome.
    outcome_lists: List[List[Tuple[object, float]]] = []
    for xid in xids:
        l = problem.xtuple_index(xid)
        xt = db.xtuple(xid)
        p_success = success_probability(
            problem.sc_probabilities[l], plan.operations[xid]
        )
        outcomes: List[Tuple[object, float]] = [(None, 1.0 - p_success)]
        for t in xt.alternatives:
            outcomes.append((xt.collapsed_to(t.tid), p_success * t.probability))
        null_mass = xt.null_probability
        if null_mass > 0.0:
            outcomes.append(("DROP", p_success * null_mass))
        outcome_lists.append(outcomes)

    expected_after = 0.0
    for combo in itertools.product(*outcome_lists):
        probability = 1.0
        cleaned = db
        dropped: List[str] = []
        for xid, (replacement, p) in zip(xids, combo):
            probability *= p
            if replacement is None:
                continue
            if replacement == "DROP":
                dropped.append(xid)
            else:
                cleaned = cleaned.with_xtuple_replaced(xid, replacement)
        if probability == 0.0:
            continue
        if dropped:
            remaining = [xt for xt in cleaned.xtuples if xt.xid not in set(dropped)]
            cleaned = ProbabilisticDatabase(remaining, name=cleaned.name)
        ranked = cleaned.ranked(problem.ranked.ranking)
        expected_after += probability * compute_quality_tp(ranked, problem.k).quality
    return expected_after - before
