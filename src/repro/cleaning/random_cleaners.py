"""RandU and RandP: the randomized baselines (Sections V-D.2, V-D.3).

Both draw x-tuples with replacement until no candidate fits the
remaining budget; they differ only in the draw distribution:

* **RandU** -- uniform over the candidates ("fairness principle");
* **RandP** -- proportional to the x-tuple's top-k probability mass
  ``Σ_{t_i∈τ_l} p_i / k``: entities more likely to appear in the
  answer are probed more often.

The paper leaves two details open, which we resolve explicitly:

* *candidate pool*: by default both draw from the useful set ``Z``
  (x-tuples that can actually change the quality); pass
  ``candidates="all"`` to draw from every x-tuple, which makes RandU
  dramatically weaker on large sparse workloads.
* *unaffordable draws*: rather than stopping at the first draw that
  does not fit, the pool is filtered to affordable x-tuples each round,
  so the budget is genuinely exhausted.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.cleaning.model import CleaningPlan, CleaningProblem

_POOLS = ("nonzero", "all")


def _initial_pool(problem: CleaningProblem, candidates: str) -> List[int]:
    if candidates == "nonzero":
        return problem.candidate_indices()
    if candidates == "all":
        return [
            l
            for l in range(problem.num_xtuples)
            if problem.costs[l] <= problem.budget
        ]
    raise ValueError(f"candidates must be one of {_POOLS}, got {candidates!r}")


def _run_random_selection(
    problem: CleaningProblem,
    pool: List[int],
    weights: Optional[Sequence[float]],
    rng: random.Random,
) -> CleaningPlan:
    """Draw with replacement until nothing affordable remains."""
    remaining = problem.budget
    counts: Dict[int, int] = {}
    pool = list(pool)
    pool_weights = list(weights) if weights is not None else None
    while pool:
        # Keep only x-tuples the remaining budget can still pay for.
        keep = [i for i, l in enumerate(pool) if problem.costs[l] <= remaining]
        if len(keep) != len(pool):
            pool = [pool[i] for i in keep]
            if pool_weights is not None:
                pool_weights = [pool_weights[i] for i in keep]
            if not pool:
                break
        if pool_weights is not None:
            chosen = rng.choices(pool, weights=pool_weights, k=1)[0]
        else:
            chosen = pool[rng.randrange(len(pool))]
        counts[chosen] = counts.get(chosen, 0) + 1
        remaining -= problem.costs[chosen]
    return CleaningPlan(
        operations={problem.xtuple_id(l): c for l, c in counts.items()}
    )


class RandUCleaner:
    """Uniform random probing (Section V-D.2)."""

    name = "RandU"

    def __init__(
        self, seed: Optional[int] = 0, candidates: str = "nonzero"
    ) -> None:
        if candidates not in _POOLS:
            raise ValueError(f"candidates must be one of {_POOLS}")
        self.seed = seed
        self.candidates = candidates

    def plan(self, problem: CleaningProblem) -> CleaningPlan:
        """Draw x-tuples uniformly until the budget is exhausted."""
        rng = random.Random(self.seed)
        pool = _initial_pool(problem, self.candidates)
        return _run_random_selection(problem, pool, None, rng)


class RandPCleaner:
    """Top-k-probability-weighted random probing (Section V-D.3)."""

    name = "RandP"

    def __init__(
        self, seed: Optional[int] = 0, candidates: str = "nonzero"
    ) -> None:
        if candidates not in _POOLS:
            raise ValueError(f"candidates must be one of {_POOLS}")
        self.seed = seed
        self.candidates = candidates

    def plan(self, problem: CleaningProblem) -> CleaningPlan:
        """Draw x-tuples weighted by top-k probability mass."""
        rng = random.Random(self.seed)
        pool = _initial_pool(problem, self.candidates)
        weights = [problem.topk_mass_by_xtuple[l] for l in pool]
        # Weight-zero x-tuples can never be drawn by rng.choices with
        # all-zero totals; drop them up front (and fall back to uniform
        # if the whole pool carries no top-k mass).
        keep = [i for i, w in enumerate(weights) if w > 0.0]
        if keep:
            pool = [pool[i] for i in keep]
            weights = [weights[i] for i in keep]
            return _run_random_selection(problem, pool, weights, rng)
        return _run_random_selection(problem, pool, None, rng)
