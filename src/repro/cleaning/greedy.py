"""Greedy: near-optimal cleaning by value-per-cost (Section V-D.4).

Items ``(l, j)`` are scored ``γ_{l,j} = b(l, D, j) / c_l`` -- expected
improvement per budget unit -- and taken highest score first.  Because
``γ_{l,j+1} <= γ_{l,j}`` (Lemma 4), a heap holding *one* pending item
per x-tuple (the next probe of its ladder) suffices: popping ``(l, j)``
pushes ``(l, j+1)``.  When an x-tuple's cost no longer fits the
remaining budget it is dropped outright -- all its later items share
the same cost.  Runtime ``O((C/ c̄ + |Z|)·log|Z|)``, the paper's
``O(C|Z|log|Z|)`` bound.

The knapsack analogy explains the paper's observation that Greedy is
"close to optimal": greedy on a knapsack is optimal up to one boundary
item, and here item values decay geometrically, so the boundary error
is tiny.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from repro.cleaning.improvement import marginal_gain
from repro.cleaning.model import CleaningPlan, CleaningProblem

#: Marginal gains at or below this are never worth a heap push; they
#: cannot change the plan's value at double precision.
GAIN_FLOOR = 0.0


class GreedyCleaner:
    """The greedy planner of Section V-D.4."""

    name = "Greedy"

    def plan(self, problem: CleaningProblem) -> CleaningPlan:
        """Take probe items by expected improvement per budget unit."""
        remaining = problem.budget
        counts: Dict[int, int] = {}
        # Seed scores vectorized over the candidate set: the first
        # probe of x-tuple l has gain b(l, D, 1) = -P_l·g(l, D).
        candidates = np.array(problem.candidate_indices(), dtype=np.int64)
        # Heap of (-γ, l, j): the pending j-th probe of x-tuple l.
        heap: List[Tuple[float, int, int]] = []
        if candidates.size:
            gains = -(
                problem.sc_array[candidates] * problem.g_array[candidates]
            )
            scores = gains / problem.costs_array[candidates]
            keep = gains > GAIN_FLOOR
            heap = [
                (-score, int(l), 1)
                for score, l in zip(
                    scores[keep].tolist(), candidates[keep].tolist()
                )
            ]
            heapq.heapify(heap)

        while heap and remaining > 0:
            neg_score, l, j = heapq.heappop(heap)
            cost = problem.costs[l]
            if cost > remaining:
                # Later items of τ_l cost the same; drop the ladder.
                continue
            remaining -= cost
            counts[l] = j
            if j < problem.max_operations(l):
                gain = marginal_gain(
                    problem.sc_probabilities[l], problem.g_by_xtuple[l], j + 1
                )
                if gain > GAIN_FLOOR:
                    heapq.heappush(heap, (-gain / cost, l, j + 1))

        return CleaningPlan(
            operations={problem.xtuple_id(l): j for l, j in counts.items()}
        )
