"""DP: the optimal cleaning planner (Section V-D.1).

Builds the knapsack instance of Theorem 3 -- one group per candidate
x-tuple, item ``j`` worth ``b(l, D, j)`` at cost ``c_l`` -- and solves
it exactly with the grouped dynamic program.  Runtime is the paper's
``O(C²|Z|)`` (with ``J_l = C/c_l`` items per group), which dominates
every heuristic but yields the provably maximal expected improvement.

For very large budgets the geometric decay of ``b(l, D, j)`` makes deep
items worthless; ``prune_tolerance`` optionally drops items whose value
falls below a fraction of the instance's largest item, trading a
bounded additive error (``<= N_dropped · tolerance · max_b``, in
practice far below float noise) for tractability.  Pruning is *off* by
default, so the planner is exact unless explicitly relaxed.
"""

from __future__ import annotations

from typing import List

from repro.cleaning.improvement import marginal_gain
from repro.cleaning.knapsack import KnapsackGroup, solve_grouped_knapsack
from repro.cleaning.model import CleaningPlan, CleaningProblem


def build_groups(
    problem: CleaningProblem,
    prune_tolerance: float = 0.0,
) -> List[tuple]:
    """The knapsack groups of ``P(C, Z)``: ``(x-tuple index, group)``.

    Groups follow the candidate set ``Z`` (Lemma 5 exclusions applied).
    With a positive ``prune_tolerance``, each group's ladder is cut off
    once its marginal value drops below ``tolerance · max_first_item``.
    """
    candidates = problem.candidate_indices()
    max_first = 0.0
    for l in candidates:
        b1 = marginal_gain(
            problem.sc_probabilities[l], problem.g_by_xtuple[l], 1
        )
        if b1 > max_first:
            max_first = b1
    floor = prune_tolerance * max_first
    groups = []
    for l in candidates:
        sc = problem.sc_probabilities[l]
        g = problem.g_by_xtuple[l]
        max_ops = problem.max_operations(l)
        values = []
        for j in range(1, max_ops + 1):
            b = marginal_gain(sc, g, j)
            if b <= floor and j > 1:
                break
            if b <= 0.0:
                break
            values.append(b)
        if values:
            groups.append((l, KnapsackGroup(cost=problem.costs[l], values=tuple(values))))
    return groups


class DPCleaner:
    """The optimal planner (exact knapsack DP).

    Parameters
    ----------
    prune_tolerance:
        Relative value floor for probe-ladder items (see module doc).
        ``0.0`` (default) keeps the planner exact.
    use_numpy:
        Select the vectorized DP (default) or the pure-Python reference.
    """

    name = "DP"

    def __init__(
        self, prune_tolerance: float = 0.0, use_numpy: bool = True
    ) -> None:
        if prune_tolerance < 0.0:
            raise ValueError("prune_tolerance must be non-negative")
        self.prune_tolerance = prune_tolerance
        self.use_numpy = use_numpy

    def plan(self, problem: CleaningProblem) -> CleaningPlan:
        """Solve P(C, Z) exactly and translate counts into a plan."""
        groups = build_groups(problem, self.prune_tolerance)
        if not groups:
            return CleaningPlan(operations={})
        solution = solve_grouped_knapsack(
            [g for _, g in groups], problem.budget, use_numpy=self.use_numpy
        )
        operations = {
            problem.xtuple_id(l): count
            for (l, _), count in zip(groups, solution.counts)
            if count > 0
        }
        return CleaningPlan(operations=operations)
