"""Cleaning model: probing operations, budgets, plans (Section V-A).

A *cleaning operation* ``pclean(τ_l)`` probes entity ``τ_l`` (calls the
movie viewer, polls the sensor).  It costs ``c_l`` budget units and
succeeds with the entity's *sc-probability* ``P_l``; on success the
x-tuple collapses to one certain tuple (Definition 5), on failure
nothing changes.  Given a total budget ``C``, the *cleaning problem*
(Definition 7) picks a set of x-tuples ``X`` and per-x-tuple operation
counts ``M`` maximizing the expected quality improvement.

:class:`CleaningProblem` freezes everything the planners need -- the
per-x-tuple quality contributions ``g(l, D)`` from a TP run, costs,
sc-probabilities and the budget -- as dense arrays indexed by x-tuple
position.  :class:`CleaningPlan` is the planners' common output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, List, Mapping, Tuple, Union

import numpy as np

from repro.core.tp import TPQualityResult
from repro.db.database import RankedDatabase
from repro.exceptions import InvalidCleaningProblemError, UnknownXTupleError

#: |g(l, D)| below this is treated as zero: cleaning the x-tuple cannot
#: improve the quality (Lemma 5) and it is excluded from the candidate
#: set Z.
G_TOLERANCE = 1e-15

#: sc-probabilities below this are treated as zero (probing can never
#: succeed, so the x-tuple is excluded from Z).
SC_TOLERANCE = 1e-15


@dataclass(frozen=True)
class CleaningProblem:
    """A fully specified instance of the paper's cleaning problem.

    All per-x-tuple arrays are indexed by the x-tuple's position in the
    database (the same indexing :class:`RankedDatabase` uses).

    Attributes
    ----------
    ranked:
        The ranked database the quality was computed on.
    k:
        The top-k parameter of the query being protected.
    g_by_xtuple:
        ``g(l, D) = Σ_{t_i∈τ_l} ω_i·p_i``; always <= 0; sums to the
        current quality score.
    topk_mass_by_xtuple:
        ``Σ_{t_i∈τ_l} p_i`` (drives the RandP heuristic; sums to ``k``
        on complete databases).
    costs:
        Integer probing costs ``c_l >= 1``.
    sc_probabilities:
        Success probabilities ``P_l`` in ``[0, 1]``.
    budget:
        Total budget ``C`` (a non-negative integer).
    """

    ranked: RankedDatabase
    k: int
    g_by_xtuple: Tuple[float, ...]
    topk_mass_by_xtuple: Tuple[float, ...]
    costs: Tuple[int, ...]
    sc_probabilities: Tuple[float, ...]
    budget: int

    def __post_init__(self) -> None:
        m = self.ranked.num_xtuples
        for label, arr in (
            ("g_by_xtuple", self.g_by_xtuple),
            ("topk_mass_by_xtuple", self.topk_mass_by_xtuple),
            ("costs", self.costs),
            ("sc_probabilities", self.sc_probabilities),
        ):
            if len(arr) != m:
                raise InvalidCleaningProblemError(
                    f"{label} has {len(arr)} entries for {m} x-tuples"
                )
        if not isinstance(self.budget, int) or isinstance(self.budget, bool):
            raise InvalidCleaningProblemError(
                f"budget must be an integer, got {self.budget!r}"
            )
        if self.budget < 0:
            raise InvalidCleaningProblemError(
                f"budget must be non-negative, got {self.budget}"
            )
        # Range/type checks run as single array expressions (the
        # problem is rebuilt once per adaptive round, so O(m)
        # Python-level loops here used to show up on profiles); the
        # offending entry is only hunted down scalar-style on failure.
        costs = np.asarray(self.costs, dtype=np.int64 if not self.costs else None)
        if self.costs and (
            costs.dtype.kind != "i"
            or any(type(c) is bool for c in self.costs)
        ):
            # Pin down a scalar offender for the message; an oversized
            # int (object dtype, every element a true int) has none.
            bad = next(
                (
                    c
                    for c in self.costs
                    if not isinstance(c, int) or isinstance(c, bool)
                ),
                max(self.costs),
            )
            raise InvalidCleaningProblemError(
                f"costs must be positive integers, got {bad!r}"
            )
        if costs.size and int(costs.min()) < 1:
            raise InvalidCleaningProblemError(
                f"costs must be positive integers, got {int(costs.min())!r}"
            )
        try:
            sc = np.asarray(self.sc_probabilities, dtype=np.float64)
        except (TypeError, ValueError):
            raise InvalidCleaningProblemError(
                f"sc-probabilities must lie in [0, 1], got "
                f"{self.sc_probabilities!r}"
            ) from None
        if sc.size and not bool(
            ((sc >= 0.0) & (sc <= 1.0)).all()
        ):  # NaN fails both comparisons
            bad_sc = next(
                p
                for p in self.sc_probabilities
                if math.isnan(p) or not 0.0 <= p <= 1.0
            )
            raise InvalidCleaningProblemError(
                f"sc-probabilities must lie in [0, 1], got {bad_sc!r}"
            )
        g = np.asarray(self.g_by_xtuple, dtype=np.float64)
        if g.size and float(g.max()) > G_TOLERANCE:
            raise InvalidCleaningProblemError(
                f"g(l, D) values are weighted quality contributions and "
                f"must be <= 0, got {float(g.max())!r}"
            )
        # The validation arrays double as the columnar caches below.
        self.__dict__["costs_array"] = costs.astype(np.int64, copy=False)
        self.__dict__["sc_array"] = sc
        self.__dict__["g_array"] = g

    # ------------------------------------------------------------------
    @property
    def num_xtuples(self) -> int:
        return self.ranked.num_xtuples

    @property
    def quality(self) -> float:
        """The current quality score ``S(D, Q) = Σ_l g(l, D)``."""
        return math.fsum(self.g_by_xtuple)

    def xtuple_id(self, l: int) -> str:
        """Identifier of the x-tuple at index ``l``."""
        return self.ranked.xtuple_ids[l]

    def xtuple_index(self, xid: str) -> int:
        """Dense index of the x-tuple with identifier ``xid`` (O(1))."""
        from repro.exceptions import InvalidDatabaseError

        try:
            return self.ranked.xtuple_index_of(xid)
        except InvalidDatabaseError:
            raise InvalidCleaningProblemError(f"unknown x-tuple id {xid!r}") from None

    # ------------------------------------------------------------------
    # Columnar views (cached; frozen dataclasses still allow
    # cached_property because it writes to __dict__ directly)
    # ------------------------------------------------------------------
    @cached_property
    def g_array(self) -> np.ndarray:
        """``g(l, D)`` as a float64 array."""
        return np.array(self.g_by_xtuple, dtype=np.float64)

    @cached_property
    def topk_mass_array(self) -> np.ndarray:
        """Per-x-tuple top-k probability mass as a float64 array."""
        return np.array(self.topk_mass_by_xtuple, dtype=np.float64)

    @cached_property
    def costs_array(self) -> np.ndarray:
        """Probing costs as an int64 array."""
        return np.array(self.costs, dtype=np.int64)

    @cached_property
    def sc_array(self) -> np.ndarray:
        """sc-probabilities as a float64 array."""
        return np.array(self.sc_probabilities, dtype=np.float64)

    @cached_property
    def _candidate_mask(self) -> np.ndarray:
        return (
            (self.g_array < -G_TOLERANCE)
            & (self.sc_array > SC_TOLERANCE)
            & (self.costs_array <= self.budget)
        )

    def candidate_indices(self) -> List[int]:
        """The candidate set ``Z``: x-tuples worth probing at all.

        Excludes x-tuples whose cleaning provably cannot improve the
        expected quality: ``g(l, D) = 0`` (Lemma 5), zero
        sc-probability, or cost exceeding the whole budget.
        """
        return np.nonzero(self._candidate_mask)[0].tolist()

    def max_operations(self, l: int) -> int:
        """``J_l = floor(C / c_l)``: most probes of ``τ_l`` the budget allows."""
        return self.budget // self.costs[l]

    def with_budget(self, budget: int) -> "CleaningProblem":
        """The same instance under a different budget (used by sweeps)."""
        return CleaningProblem(
            ranked=self.ranked,
            k=self.k,
            g_by_xtuple=self.g_by_xtuple,
            topk_mass_by_xtuple=self.topk_mass_by_xtuple,
            costs=self.costs,
            sc_probabilities=self.sc_probabilities,
            budget=budget,
        )


def build_cleaning_problem(
    quality: TPQualityResult,
    costs: Union[Mapping[str, int], Iterable[int]],
    sc_probabilities: Union[Mapping[str, float], Iterable[float]],
    budget: int,
) -> CleaningProblem:
    """Assemble a :class:`CleaningProblem` from a TP quality result.

    ``costs`` and ``sc_probabilities`` may be mappings keyed by x-tuple
    id, or sequences in database x-tuple order.
    """
    ranked = quality.ranked
    m = ranked.num_xtuples

    def as_array(
        source: Union[Mapping[str, float], Iterable[float]], label: str
    ) -> Tuple[float, ...]:
        if isinstance(source, Mapping):
            missing = [xid for xid in ranked.xtuple_ids if xid not in source]
            if missing:
                raise UnknownXTupleError(label, missing[0])
            if len(source) != m:
                known = set(ranked.xtuple_ids)
                unknown = [xid for xid in source if xid not in known]
                raise UnknownXTupleError(
                    label, unknown[0], reason="names unknown"
                )
            return tuple(source[xid] for xid in ranked.xtuple_ids)
        values = tuple(source)
        if len(values) != m:
            raise InvalidCleaningProblemError(
                f"{label} sequence has {len(values)} entries for {m} x-tuples"
            )
        return values

    return CleaningProblem(
        ranked=ranked,
        k=quality.k,
        g_by_xtuple=tuple(quality.g_by_xtuple()),
        topk_mass_by_xtuple=tuple(
            quality.rank_probabilities.topk_probability_by_xtuple()
        ),
        costs=as_array(costs, "costs"),
        sc_probabilities=as_array(sc_probabilities, "sc_probabilities"),
        budget=budget,
    )


@dataclass(frozen=True)
class CleaningPlan:
    """A cleaning decision: how many times to probe each chosen x-tuple.

    ``operations`` maps x-tuple ids to probe counts ``M_l >= 1``;
    x-tuples outside the mapping are not probed.  Plans are value
    objects -- planners return them, the executor consumes them.
    """

    operations: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen = dict(self.operations)
        for xid, count in frozen.items():
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                raise InvalidCleaningProblemError(
                    f"operation count for {xid!r} must be a positive integer, "
                    f"got {count!r}"
                )
        object.__setattr__(self, "operations", frozen)

    def __len__(self) -> int:
        return len(self.operations)

    def __contains__(self, xid: str) -> bool:
        return xid in self.operations

    def count(self, xid: str) -> int:
        """Probe count for one x-tuple (0 when not in the plan)."""
        return self.operations.get(xid, 0)

    @property
    def total_operations(self) -> int:
        return sum(self.operations.values())

    def total_cost(self, problem: CleaningProblem) -> int:
        """``Σ_l c_l·M_l`` under the problem's cost vector."""
        return sum(
            problem.costs[problem.xtuple_index(xid)] * count
            for xid, count in self.operations.items()
        )

    def is_feasible(self, problem: CleaningProblem) -> bool:
        """Whether the plan fits the problem's budget."""
        return self.total_cost(problem) <= problem.budget


#: The empty plan (probe nothing) -- improvement zero, cost zero.
EMPTY_PLAN = CleaningPlan(operations={})
