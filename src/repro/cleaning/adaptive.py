"""Adaptive cleaning: re-plan with the budget early successes free up.

The paper plans once, before any probe runs, and explicitly defers "how
to update the list so that the rest of the resources can be used to
further improve the quality" to future work (Section V-A).  This module
implements that loop as an extension:

    round:  evaluate quality -> plan under remaining budget ->
            execute -> subtract *actual* spend -> repeat

Two effects make the adaptive loop outperform one-shot planning in
realized (not expected) improvement: probes saved by early successes
are re-invested, and later rounds see the *actual* outcome databases --
an x-tuple that got cleaned no longer attracts budget, a probe that
kept failing can be retried.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cleaning.base import Cleaner
from repro.cleaning.executor import CleaningOutcome, execute_plan
from repro.cleaning.model import CleaningProblem, build_cleaning_problem
from repro.db.database import ProbabilisticDatabase
from repro.queries.engine import QuerySession


@dataclass(frozen=True)
class AdaptiveRound:
    """One plan/execute cycle of the adaptive loop."""

    round_index: int
    budget_before: int
    quality_before: float
    outcome: CleaningOutcome

    @property
    def cost_spent(self) -> int:
        return self.outcome.cost_spent


@dataclass(frozen=True)
class AdaptiveCleaningResult:
    """Full trace of an adaptive cleaning session."""

    final_db: ProbabilisticDatabase
    rounds: Tuple[AdaptiveRound, ...]
    initial_quality: float
    final_quality: float
    budget: int
    budget_spent: int
    #: The session over ``final_db`` the loop ended on.  Its cumulative
    #: counters tell the run's whole evaluation cost -- with the delta
    #: path on, ``psr_misses`` stays at the single initial full pass
    #: while every probe shows up in ``psr_patches``.
    session: Optional[QuerySession] = None

    @property
    def realized_improvement(self) -> float:
        return self.final_quality - self.initial_quality


def clean_adaptively(
    db: ProbabilisticDatabase,
    problem: CleaningProblem,
    planner: Cleaner,
    rng: Optional[random.Random] = None,
    max_rounds: int = 100,
    session: Optional[QuerySession] = None,
    use_deltas: bool = True,
) -> AdaptiveCleaningResult:
    """Run the plan/execute/re-plan loop until the budget is spent.

    Each round works through a :class:`QuerySession` derived from the
    previous round's outcome.  With ``use_deltas`` on (the default) the
    executor threads a :class:`~repro.db.database.RankDelta` per
    successful probe, so the whole run performs **one** full PSR pass
    (the initial evaluation) and every later round only patches the
    rank window its probes moved; an all-failures round (or a
    caller-provided warm session over ``db``) is served entirely from
    cache either way.  ``use_deltas=False`` keeps the probes identical
    but re-derives every round's session cold -- the baseline the
    benchmarks measure the delta engine against.

    Parameters
    ----------
    db:
        The database to clean (must be the one ``problem`` was built on).
    problem:
        The initial cleaning instance; supplies budget, costs and
        sc-probabilities.  Costs/sc-probabilities of an x-tuple are
        looked up by id, so they survive across rounds.
    planner:
        Any :class:`~repro.cleaning.base.Cleaner` (DP, Greedy, ...).
    rng:
        Randomness for probe outcomes (fixed seed by default).
    max_rounds:
        Hard stop against pathological zero-spend cycles.
    session:
        Optional warm query session over ``db`` (same ranking as the
        problem's view); reused for the initial quality evaluation.
    """
    rng = rng or random.Random(0)
    ranking = problem.ranked.ranking
    k = problem.k

    cost_by_xid = {
        problem.xtuple_id(l): problem.costs[l]
        for l in range(problem.num_xtuples)
    }
    sc_by_xid = {
        problem.xtuple_id(l): problem.sc_probabilities[l]
        for l in range(problem.num_xtuples)
    }

    if session is None:
        session = QuerySession(db, ranking=ranking)
    elif session.ranked.db is not db or session.ranked.ranking is not ranking:
        raise ValueError(
            "the provided session must be over the database being cleaned, "
            "under the problem's ranking"
        )
    current_db = db
    remaining = problem.budget
    rounds: List[AdaptiveRound] = []
    initial_quality = session.quality(k).quality
    current_quality = initial_quality

    for round_index in range(max_rounds):
        if remaining <= 0:
            break
        quality = session.quality(k)
        current_quality = quality.quality
        round_problem = build_cleaning_problem(
            quality,
            costs={xt.xid: cost_by_xid[xt.xid] for xt in current_db.xtuples},
            sc_probabilities={
                xt.xid: sc_by_xid[xt.xid] for xt in current_db.xtuples
            },
            budget=remaining,
        )
        plan = planner.plan(round_problem)
        if not plan.operations:
            break
        outcome = execute_plan(
            current_db,
            round_problem,
            plan,
            rng=rng,
            session=session,
            use_deltas=use_deltas,
        )
        rounds.append(
            AdaptiveRound(
                round_index=round_index,
                budget_before=remaining,
                quality_before=current_quality,
                outcome=outcome,
            )
        )
        if outcome.cost_spent == 0:  # pragma: no cover - defensive
            break
        remaining -= outcome.cost_spent
        current_db = outcome.cleaned_db
        session = outcome.session

    session = session.derive(current_db)
    final_quality = session.quality(k).quality
    return AdaptiveCleaningResult(
        final_db=current_db,
        rounds=tuple(rounds),
        initial_quality=initial_quality,
        final_quality=final_quality,
        budget=problem.budget,
        budget_spent=problem.budget - remaining,
        session=session,
    )
