"""0/1 knapsack with item groups -- the optimization core of Theorem 3.

The cleaning problem reduces to a knapsack ``P(C, Z)`` whose items are
probe operations ``(l, j)`` with value ``b(l, D, j)`` and cost ``c_l``
(Section V-C).  All items of one x-tuple share a cost and their values
decrease in ``j`` (Lemma 4), so an optimal solution always takes a
*prefix* of each x-tuple's items; we therefore solve a *grouped*
knapsack -- for each group choose how many of its first items to take --
which is equivalent and reconstructs in ``O(|Z|)`` memory per capacity.

Two implementations are provided: a numpy-vectorized DP (default; the
inner maximization over capacities is one array op per ``(group, j)``)
and a pure-Python reference used for tiny inputs and as a cross-check.
A brute-force enumerator backs both in the test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class KnapsackGroup:
    """One x-tuple's probe ladder: equal-cost items, decreasing values.

    ``values[j-1]`` is the marginal value of taking the j-th item given
    the first ``j-1`` were taken.
    """

    cost: int
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.cost < 1:
            raise ValueError(f"group cost must be >= 1, got {self.cost}")
        for v in self.values:
            if v < 0.0:
                raise ValueError(f"group values must be non-negative, got {v}")

    def prefix_value(self, count: int) -> float:
        """Total value of taking the first ``count`` items."""
        return float(sum(self.values[:count]))


@dataclass
class GroupedKnapsackSolution:
    """Optimal counts per group plus the full value-vs-capacity curve.

    ``best_value_by_capacity[c]`` is the optimum under budget ``c``
    (non-decreasing); the inverse-cleaning solver reads minimum costs
    straight off this curve.
    """

    value: float
    cost: int
    counts: List[int]
    best_value_by_capacity: np.ndarray


def solve_grouped_knapsack(
    groups: Sequence[KnapsackGroup],
    capacity: int,
    use_numpy: bool = True,
) -> GroupedKnapsackSolution:
    """Exact DP for the grouped knapsack.

    Time ``O(Σ_l J_l · C)`` (the paper's ``O(C²|Z|)`` with
    ``J_l = C/c_l``), memory ``O(|Z|·C)`` for reconstruction.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    if use_numpy:
        return _solve_numpy(groups, capacity)
    return _solve_python(groups, capacity)


def _solve_numpy(
    groups: Sequence[KnapsackGroup], capacity: int
) -> GroupedKnapsackSolution:
    dp = np.zeros(capacity + 1, dtype=np.float64)
    choices = np.zeros((len(groups), capacity + 1), dtype=np.int32)
    for gi, group in enumerate(groups):
        cost = group.cost
        new_dp = dp.copy()
        choice = choices[gi]
        cumulative = 0.0
        for j, value in enumerate(group.values, start=1):
            total_cost = j * cost
            if total_cost > capacity:
                break
            cumulative += value
            candidate = dp[: capacity + 1 - total_cost] + cumulative
            target = new_dp[total_cost:]
            better = candidate > target
            target[better] = candidate[better]
            choice[total_cost:][better] = j
        dp = new_dp
    counts = _reconstruct(groups, choices, capacity)
    cost_used = sum(g.cost * c for g, c in zip(groups, counts))
    return GroupedKnapsackSolution(
        value=float(dp[capacity]),
        cost=cost_used,
        counts=counts,
        best_value_by_capacity=dp,
    )


def _solve_python(
    groups: Sequence[KnapsackGroup], capacity: int
) -> GroupedKnapsackSolution:
    dp = [0.0] * (capacity + 1)
    choices: List[List[int]] = []
    for group in groups:
        cost = group.cost
        new_dp = list(dp)
        choice = [0] * (capacity + 1)
        cumulative = 0.0
        for j, value in enumerate(group.values, start=1):
            total_cost = j * cost
            if total_cost > capacity:
                break
            cumulative += value
            for c in range(capacity, total_cost - 1, -1):
                candidate = dp[c - total_cost] + cumulative
                if candidate > new_dp[c]:
                    new_dp[c] = candidate
                    choice[c] = j
        dp = new_dp
        choices.append(choice)
    counts = _reconstruct(groups, choices, capacity)
    cost_used = sum(g.cost * c for g, c in zip(groups, counts))
    return GroupedKnapsackSolution(
        value=dp[capacity],
        cost=cost_used,
        counts=counts,
        best_value_by_capacity=np.asarray(dp),
    )


def _reconstruct(
    groups: Sequence[KnapsackGroup],
    choices: Sequence[np.ndarray],
    capacity: int,
) -> List[int]:
    counts = [0] * len(groups)
    remaining = capacity
    for gi in range(len(groups) - 1, -1, -1):
        j = int(choices[gi][remaining])
        counts[gi] = j
        remaining -= j * groups[gi].cost
    assert remaining >= 0, "knapsack reconstruction exceeded capacity"
    return counts


def solve_grouped_knapsack_bruteforce(
    groups: Sequence[KnapsackGroup], capacity: int
) -> Tuple[float, List[int]]:
    """Exhaustive optimum over all count combinations. Test oracle only."""
    ranges = [
        range(min(len(g.values), capacity // g.cost) + 1) for g in groups
    ]
    best_value = 0.0
    best_counts = [0] * len(groups)
    for combo in itertools.product(*ranges):
        cost = sum(g.cost * c for g, c in zip(groups, combo))
        if cost > capacity:
            continue
        value = sum(g.prefix_value(c) for g, c in zip(groups, combo))
        if value > best_value:
            best_value = value
            best_counts = list(combo)
    return best_value, best_counts


def solve_01_knapsack_bruteforce(
    values: Sequence[float], costs: Sequence[int], capacity: int
) -> Tuple[float, List[int]]:
    """Plain 0/1 knapsack by subset enumeration. Test oracle only."""
    n = len(values)
    if n != len(costs):
        raise ValueError("values and costs must have equal length")
    best_value = 0.0
    best_subset: List[int] = []
    for mask in range(1 << n):
        cost = 0
        value = 0.0
        subset = []
        for i in range(n):
            if mask >> i & 1:
                cost += costs[i]
                value += values[i]
                subset.append(i)
        if cost <= capacity and value > best_value:
            best_value = value
            best_subset = subset
    return best_value, best_subset
