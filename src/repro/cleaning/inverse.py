"""Inverse cleaning: minimum cost to reach a target quality.

The paper's conclusion names this the natural follow-up problem ("how
to use minimal cost to attain a given quality score", Section VII); we
implement it as an extension.  Given a target *expected* quality (or,
equivalently, a target expected improvement), find the cheapest plan
achieving it.

Because the knapsack DP already produces the whole optimal
value-vs-capacity curve, the exact answer is a lookup: grow the
capacity geometrically until the curve crosses the target, then return
the first crossing.  A greedy variant accumulates probe ladders in
value-per-cost order and is near-optimal at a fraction of the cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict

from repro.cleaning.dp import build_groups
from repro.cleaning.improvement import (
    improvement_upper_bound,
    marginal_gain,
)
from repro.cleaning.knapsack import solve_grouped_knapsack
from repro.cleaning.model import CleaningPlan, CleaningProblem
from repro.exceptions import InfeasibleTargetError

#: Slack applied to feasibility checks against the theoretical supremum.
FEASIBILITY_MARGIN = 1e-12


@dataclass(frozen=True)
class InverseCleaningSolution:
    """A plan reaching the target, and what it costs/achieves."""

    plan: CleaningPlan
    cost: int
    expected_improvement: float


def _require_feasible(problem: CleaningProblem, target_improvement: float) -> None:
    bound = improvement_upper_bound(problem)
    if target_improvement > bound + FEASIBILITY_MARGIN:
        raise InfeasibleTargetError(
            f"target improvement {target_improvement:.6g} exceeds the "
            f"supremum {bound:.6g} achievable by cleaning every x-tuple"
        )


def min_cost_plan_greedy(
    problem: CleaningProblem, target_improvement: float
) -> InverseCleaningSolution:
    """Greedy inverse cleaning: take items by ``γ`` until the target holds.

    Near-optimal for the same reason the budgeted greedy is: marginal
    values decay geometrically, so the final (overshooting) item is
    cheap.  Raises :class:`InfeasibleTargetError` when no finite plan
    can reach the target.
    """
    if target_improvement <= 0.0:
        return InverseCleaningSolution(
            plan=CleaningPlan(operations={}), cost=0, expected_improvement=0.0
        )
    _require_feasible(problem, target_improvement)

    achieved = 0.0
    cost = 0
    counts: Dict[int, int] = {}
    heap = []
    for l in range(problem.num_xtuples):
        gain = marginal_gain(
            problem.sc_probabilities[l], problem.g_by_xtuple[l], 1
        )
        if gain > 0.0:
            heapq.heappush(heap, (-gain / problem.costs[l], l, 1))
    while heap and achieved < target_improvement:
        _, l, j = heapq.heappop(heap)
        gain = marginal_gain(problem.sc_probabilities[l], problem.g_by_xtuple[l], j)
        if gain <= 0.0:
            continue
        achieved += gain
        cost += problem.costs[l]
        counts[l] = j
        heapq.heappush(
            heap,
            (
                -marginal_gain(
                    problem.sc_probabilities[l], problem.g_by_xtuple[l], j + 1
                )
                / problem.costs[l],
                l,
                j + 1,
            ),
        )
    if achieved < target_improvement:
        raise InfeasibleTargetError(
            f"target improvement {target_improvement:.6g} is unreachable: "
            f"marginal gains vanished at {achieved:.6g}"
        )
    plan = CleaningPlan(
        operations={problem.xtuple_id(l): j for l, j in counts.items()}
    )
    return InverseCleaningSolution(
        plan=plan, cost=cost, expected_improvement=achieved
    )


def min_cost_plan(
    problem: CleaningProblem,
    target_improvement: float,
    method: str = "dp",
    initial_capacity: int = 16,
    max_capacity: int = 1 << 24,
) -> InverseCleaningSolution:
    """Cheapest plan whose *expected* improvement reaches the target.

    Parameters
    ----------
    problem:
        The cleaning instance; its ``budget`` field is ignored (this is
        the inverse problem).
    target_improvement:
        Required expected quality improvement (>= 0).  Use
        ``target_quality - problem.quality`` to phrase a quality target.
    method:
        ``"dp"`` for the exact optimum, ``"greedy"`` for the fast
        near-optimal variant.
    initial_capacity / max_capacity:
        Capacity search window for the DP curve (grown geometrically).
    """
    if method == "greedy":
        return min_cost_plan_greedy(problem, target_improvement)
    if method != "dp":
        raise ValueError(f"method must be 'dp' or 'greedy', got {method!r}")

    if target_improvement <= 0.0:
        return InverseCleaningSolution(
            plan=CleaningPlan(operations={}), cost=0, expected_improvement=0.0
        )
    _require_feasible(problem, target_improvement)

    capacity = max(1, initial_capacity)
    while capacity <= max_capacity:
        candidate = problem.with_budget(capacity)
        groups = build_groups(candidate)
        solution = solve_grouped_knapsack(
            [g for _, g in groups], capacity
        )
        curve = solution.best_value_by_capacity
        if curve[-1] >= target_improvement:
            # First capacity where the optimal curve crosses the target.
            crossing = int((curve >= target_improvement).argmax())
            exact = problem.with_budget(crossing)
            exact_groups = build_groups(exact)
            exact_solution = solve_grouped_knapsack(
                [g for _, g in exact_groups], crossing
            )
            plan = CleaningPlan(
                operations={
                    problem.xtuple_id(l): count
                    for (l, _), count in zip(exact_groups, exact_solution.counts)
                    if count > 0
                }
            )
            return InverseCleaningSolution(
                plan=plan,
                cost=plan.total_cost(exact),
                expected_improvement=float(exact_solution.value),
            )
        capacity *= 2
    raise InfeasibleTargetError(
        f"no plan within capacity {max_capacity} reaches improvement "
        f"{target_improvement:.6g} (achievable in the limit: "
        f"{improvement_upper_bound(problem):.6g}; raise max_capacity)"
    )
