"""Planner interface shared by all cleaning algorithms.

A *planner* maps a :class:`~repro.cleaning.model.CleaningProblem` to a
:class:`~repro.cleaning.model.CleaningPlan` that fits the budget.  The
four planners of Section V-D (DP, Greedy, RandP, RandU) and the
extensions all implement this protocol, so benchmark sweeps and the
adaptive loop can treat them interchangeably.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.cleaning.model import CleaningPlan, CleaningProblem


@runtime_checkable
class Cleaner(Protocol):
    """Anything that can plan cleaning under a budget."""

    #: Short name used in benchmark tables ("DP", "Greedy", ...).
    name: str

    def plan(self, problem: CleaningProblem) -> CleaningPlan:
        """Return a budget-feasible plan for ``problem``."""
        ...
