"""Plan execution: simulate the cleaning agent (Section V-A).

A planner only *decides* ``(X, M)``; someone still has to make the
phone calls.  :func:`execute_plan` simulates the cleaning agent of the
paper: it probes each selected x-tuple up to its assigned count,
stopping early on success (the paper: "the cleaning agent will not
perform more cleaning operations on this x-tuple"), and returns the
resulting database together with the budget actually spent -- the
leftover feeds the adaptive re-cleaning extension.

A successful probe reveals the entity's real value: alternative ``t_i``
with probability ``e_i``, or -- for incomplete x-tuples -- "no reading"
with the null mass ``1 - s_l``, in which case the entity is removed
from the cleaned database (it is now certain to contribute nothing).

When a :class:`~repro.queries.engine.QuerySession` is threaded through
(and ``use_deltas`` is left on), each successful probe derives the next
database through the session's *ranked view* --
``RankedDatabase.with_xtuple_replaced`` / ``with_xtuple_removed`` --
and hands the resulting :class:`~repro.db.database.RankDelta` to
``session.derive``, so the session's cached rank probabilities are
patched incrementally instead of recomputed from scratch.  The probe
outcomes themselves (and the rng stream) are identical either way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cleaning.model import CleaningPlan, CleaningProblem
from repro.db.database import ProbabilisticDatabase
from repro.queries.engine import QuerySession


@dataclass(frozen=True)
class ProbeRecord:
    """What happened to one x-tuple during plan execution.

    ``revealed_tid`` is the alternative confirmed as real (``None`` both
    on failure and on a revealed-null outcome; distinguish the latter by
    ``revealed_null``).
    """

    xid: str
    assigned: int
    performed: int
    succeeded: bool
    revealed_tid: Optional[str]
    revealed_null: bool


@dataclass(frozen=True)
class CleaningOutcome:
    """Result of executing a plan against a database.

    When the caller passed a :class:`~repro.queries.engine.QuerySession`
    to :func:`execute_plan`, ``session`` is a session over
    ``cleaned_db`` derived from it -- the *same* session object (cache
    intact) when no probe changed the database, so re-evaluating the
    quality after an all-failure round costs no new PSR pass.
    """

    cleaned_db: ProbabilisticDatabase
    records: Tuple[ProbeRecord, ...]
    cost_assigned: int
    cost_spent: int
    session: Optional[QuerySession] = field(default=None, compare=False)

    @property
    def cost_saved(self) -> int:
        """Budget freed by early successes (reusable by adaptive loops)."""
        return self.cost_assigned - self.cost_spent

    @property
    def num_succeeded(self) -> int:
        return sum(1 for r in self.records if r.succeeded)


def execute_plan(
    db: ProbabilisticDatabase,
    problem: CleaningProblem,
    plan: CleaningPlan,
    rng: Optional[random.Random] = None,
    session: Optional[QuerySession] = None,
    use_deltas: bool = True,
) -> CleaningOutcome:
    """Simulate the cleaning agent executing ``plan`` on ``db``.

    Parameters
    ----------
    db:
        The database the plan was computed for (the problem's ranked
        view must stem from this database).
    problem:
        Supplies per-x-tuple costs and sc-probabilities.
    plan:
        The probe assignment to carry out.
    rng:
        Randomness source; defaults to a fixed-seed generator so
        simulations are reproducible by default.  Pass your own
        ``random.Random`` to control the probe outcomes end-to-end.
    session:
        Optional query session over ``db``; when given, the outcome
        carries a session over the cleaned database derived from it so
        downstream re-evaluation reuses cached rank-probability state
        whenever possible.
    use_deltas:
        With a session, derive each successful probe's database through
        the incremental rank-delta path (default).  ``False`` keeps the
        probes identical but falls back to one cold
        ``session.derive(cleaned_db)`` at the end -- the baseline the
        benchmarks compare against.
    """
    rng = rng or random.Random(0)
    records: List[ProbeRecord] = []
    cost_assigned = 0
    cost_spent = 0
    cleaned = db
    # The delta path derives snapshots through the session's ranked
    # view, so it only applies when the session actually covers ``db``;
    # a foreign session falls back to the historical cold behaviour
    # (probes applied to ``db``, one cold derive at the end).
    current_session = (
        session
        if use_deltas and session is not None and session.ranked.db is db
        else None
    )
    dropped: List[str] = []

    for xid in sorted(plan.operations):
        assigned = plan.operations[xid]
        l = problem.xtuple_index(xid)
        cost = problem.costs[l]
        sc = problem.sc_probabilities[l]
        cost_assigned += cost * assigned

        performed = 0
        succeeded = False
        for _ in range(assigned):
            performed += 1
            cost_spent += cost
            if rng.random() < sc:
                succeeded = True
                break

        revealed_tid: Optional[str] = None
        revealed_null = False
        if succeeded:
            xt = db.xtuple(xid)
            u = rng.random()
            acc = 0.0
            for t in xt.alternatives:
                acc += t.probability
                if u < acc:
                    revealed_tid = t.tid
                    break
            if revealed_tid is None:
                revealed_null = True
                if current_session is not None:
                    new_ranked, delta = (
                        current_session.ranked.with_xtuple_removed(xid)
                    )
                    cleaned = new_ranked.db
                    current_session = current_session.derive(
                        new_ranked, delta=delta
                    )
                else:
                    dropped.append(xid)
            elif current_session is not None:
                new_ranked, delta = (
                    current_session.ranked.with_xtuple_replaced(
                        xid, xt.collapsed_to(revealed_tid)
                    )
                )
                cleaned = new_ranked.db
                current_session = current_session.derive(
                    new_ranked, delta=delta
                )
            else:
                cleaned = cleaned.with_xtuple_replaced(
                    xid, xt.collapsed_to(revealed_tid)
                )
        records.append(
            ProbeRecord(
                xid=xid,
                assigned=assigned,
                performed=performed,
                succeeded=succeeded,
                revealed_tid=revealed_tid,
                revealed_null=revealed_null,
            )
        )

    if dropped:
        remaining = [xt for xt in cleaned.xtuples if xt.xid not in set(dropped)]
        cleaned = ProbabilisticDatabase(remaining, name=cleaned.name)

    if session is None:
        outcome_session = None
    elif current_session is not None:
        outcome_session = current_session
    else:
        outcome_session = session.derive(cleaned)
    return CleaningOutcome(
        cleaned_db=cleaned,
        records=tuple(records),
        cost_assigned=cost_assigned,
        cost_spent=cost_spent,
        session=outcome_session,
    )
