"""Budgeted cleaning of uncertain data -- the paper's second
contribution (Section V).

Workflow:

1. Evaluate the quality with TP (:mod:`repro.core.tp`) or the shared
   engine (:mod:`repro.queries.engine`).
2. Build a :class:`~repro.cleaning.model.CleaningProblem` from the
   quality result plus per-x-tuple costs, sc-probabilities and the
   budget (:func:`~repro.cleaning.model.build_cleaning_problem`).
3. Plan with one of the planners: :class:`~repro.cleaning.dp.DPCleaner`
   (optimal), :class:`~repro.cleaning.greedy.GreedyCleaner`
   (near-optimal), :class:`~repro.cleaning.random_cleaners.RandPCleaner`
   or :class:`~repro.cleaning.random_cleaners.RandUCleaner` (baselines).
4. Score the plan with
   :func:`~repro.cleaning.improvement.expected_improvement` (Theorem 2)
   and/or execute it with
   :func:`~repro.cleaning.executor.execute_plan`.

Extensions beyond the paper: inverse cleaning
(:mod:`repro.cleaning.inverse`) and adaptive re-planning
(:mod:`repro.cleaning.adaptive`).
"""

from repro.cleaning.adaptive import AdaptiveCleaningResult, clean_adaptively
from repro.cleaning.base import Cleaner
from repro.cleaning.dp import DPCleaner
from repro.cleaning.executor import CleaningOutcome, ProbeRecord, execute_plan
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.improvement import (
    cumulative_gain,
    expected_improvement,
    expected_improvement_bruteforce,
    expected_quality_after,
    improvement_upper_bound,
    marginal_gain,
)
from repro.cleaning.inverse import (
    InverseCleaningSolution,
    min_cost_plan,
    min_cost_plan_greedy,
)
from repro.cleaning.model import (
    CleaningPlan,
    CleaningProblem,
    EMPTY_PLAN,
    build_cleaning_problem,
)
from repro.cleaning.random_cleaners import RandPCleaner, RandUCleaner

__all__ = [
    "CleaningProblem",
    "CleaningPlan",
    "EMPTY_PLAN",
    "build_cleaning_problem",
    "Cleaner",
    "DPCleaner",
    "GreedyCleaner",
    "RandPCleaner",
    "RandUCleaner",
    "expected_improvement",
    "expected_improvement_bruteforce",
    "expected_quality_after",
    "improvement_upper_bound",
    "marginal_gain",
    "cumulative_gain",
    "execute_plan",
    "CleaningOutcome",
    "ProbeRecord",
    "min_cost_plan",
    "min_cost_plan_greedy",
    "InverseCleaningSolution",
    "clean_adaptively",
    "AdaptiveCleaningResult",
]
