"""Declarative request specs for the service façade (:mod:`repro.api`).

Every request to :class:`~repro.api.service.TopKService` is a frozen
dataclass built here.  Specs are *values*: immutable, validated eagerly
at construction (a spec that constructs cleanly is guaranteed to be
servable up to snapshot-dependent checks), equality-comparable, and
wire-ready -- ``to_dict`` emits a plain JSON-serializable dictionary
and ``from_dict`` reconstructs an equal spec, so a future HTTP layer
can move them verbatim.

The four request shapes:

* :class:`QuerySpec` -- answer the probabilistic top-k semantics
  (U-kRanks / PT-k / Global-topk, or all three) at one ``k``;
* :class:`QualitySpec` -- score the query's ambiguity (PWS-quality)
  with any of the four algorithms;
* :class:`CleaningSpec` -- plan budgeted cleaning (and optionally
  simulate execution, which yields a *new* snapshot);
* :class:`BatchSpec` -- fan a list of query/quality specs over one
  snapshot, sharing a single PSR pass at the maximum requested ``k``.

Malformed field values raise
:class:`~repro.exceptions.InvalidSpecError`; cleaning cost /
sc-probability mappings that disagree with a concrete snapshot raise
:class:`~repro.exceptions.UnknownXTupleError` at service time (the
spec alone cannot know the snapshot's x-tuples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.resilience import RetryPolicy
from repro.exceptions import InvalidSpecError

#: Query semantics a :class:`QuerySpec` may request.
SEMANTICS = ("ukranks", "ptk", "global-topk", "all")

#: Quality algorithms a :class:`QualitySpec` may request.
QUALITY_METHODS = ("tp", "pwr", "pw", "montecarlo")

#: Planner names a :class:`CleaningSpec` may request.
PLANNERS = ("dp", "greedy", "randp", "randu")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidSpecError(message)


def _check_k(k: Any) -> None:
    _require(
        isinstance(k, int) and not isinstance(k, bool) and k >= 1,
        f"k must be a positive integer, got {k!r}",
    )


def _check_workers(workers: Any) -> None:
    _require(
        workers is None
        or (
            isinstance(workers, int)
            and not isinstance(workers, bool)
            and workers >= 1
        ),
        f"workers must be a positive integer or None, got {workers!r}",
    )


def _check_resilience(spec: Any) -> None:
    """Validate / coerce the shared ``deadline_ms`` + ``retry_policy``.

    ``deadline_ms`` is a relative budget (positive, finite); the service
    converts it to an absolute :class:`~repro.core.resilience.Deadline`
    at admission.  ``retry_policy`` accepts a
    :class:`~repro.core.resilience.RetryPolicy` or its ``to_dict`` form
    (so specs deserialize from plain JSON).
    """
    deadline_ms = spec.deadline_ms
    _require(
        deadline_ms is None
        or (
            isinstance(deadline_ms, (int, float))
            and not isinstance(deadline_ms, bool)
            and math.isfinite(deadline_ms)
            and deadline_ms > 0
        ),
        f"deadline_ms must be a positive number or None, got {deadline_ms!r}",
    )
    if deadline_ms is not None:
        object.__setattr__(spec, "deadline_ms", float(deadline_ms))
    policy = spec.retry_policy
    if policy is None or isinstance(policy, RetryPolicy):
        return
    if isinstance(policy, Mapping):
        object.__setattr__(spec, "retry_policy", RetryPolicy.from_dict(policy))
        return
    raise InvalidSpecError(
        f"retry_policy must be a RetryPolicy, its to_dict form, or None, "
        f"got {policy!r}"
    )


def _spec_to_dict(spec: Any) -> Dict[str, Any]:
    """Encode a spec dataclass as ``{"type": ..., **fields}``."""
    payload: Dict[str, Any] = {"type": type(spec).TYPE}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if isinstance(value, tuple):
            value = [
                item.to_dict() if hasattr(item, "to_dict") else item
                for item in value
            ]
        elif isinstance(value, Mapping):
            value = dict(value)
        elif hasattr(value, "to_dict"):
            value = value.to_dict()
        payload[f.name] = value
    return payload


@dataclass(frozen=True)
class QuerySpec:
    """Request: answer probabilistic top-k semantics at one ``k``.

    Attributes
    ----------
    k:
        Top-k parameter (positive integer).
    semantics:
        ``"ukranks"``, ``"ptk"``, ``"global-topk"`` or ``"all"``.
    threshold:
        PT-k threshold ``T`` in ``[0, 1]`` (the paper's default 0.1);
        ignored by the other semantics.
    workers:
        Process-pool size for the parallel backend's PSR pass;
        ``None`` (default) defers to the service's environment
        (``REPRO_WORKERS`` / CPU count).  Serial backends ignore it.
    deadline_ms:
        Relative completion budget.  An expired deadline sheds the
        request with :class:`~repro.exceptions.DeadlineExceededError`
        before any PSR work; ``None`` (default) means no deadline.
    retry_policy:
        Worker-supervision :class:`~repro.core.resilience.RetryPolicy`
        for this request (accepts its ``to_dict`` form); ``None``
        defers to the environment defaults.
    """

    TYPE = "query"

    k: int
    semantics: str = "all"
    threshold: float = 0.1
    workers: Optional[int] = None
    deadline_ms: Optional[float] = None
    retry_policy: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        _check_k(self.k)
        _check_workers(self.workers)
        _check_resilience(self)
        _require(
            self.semantics in SEMANTICS,
            f"semantics must be one of {SEMANTICS}, got {self.semantics!r}",
        )
        _require(
            isinstance(self.threshold, (int, float))
            and not isinstance(self.threshold, bool)
            and not math.isnan(self.threshold)
            and 0.0 <= self.threshold <= 1.0,
            f"threshold must lie in [0, 1], got {self.threshold!r}",
        )
        object.__setattr__(self, "threshold", float(self.threshold))

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding (see :func:`spec_from_dict`)."""
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuerySpec":
        """Reconstruct a spec equal to the one ``to_dict`` encoded."""
        return cls(**_fields_from(payload, cls))


@dataclass(frozen=True)
class QualitySpec:
    """Request: compute the PWS-quality of the top-k query at ``k``.

    Attributes
    ----------
    k:
        Top-k parameter.
    method:
        ``"tp"`` (default, the O(kn) sharing algorithm), ``"pwr"``,
        ``"pw"`` or ``"montecarlo"``.  Only ``"tp"`` participates in
        batch PSR sharing; the enumeration/sampling methods run
        standalone.
    samples:
        Sample count for ``"montecarlo"`` (ignored otherwise).
    workers:
        Process-pool size for the parallel backend's PSR pass (only
        meaningful for ``"tp"``); ``None`` defers to the service's
        environment.
    deadline_ms / retry_policy:
        Request-level resilience settings (see :class:`QuerySpec`).
    """

    TYPE = "quality"

    k: int
    method: str = "tp"
    samples: int = 10_000
    workers: Optional[int] = None
    deadline_ms: Optional[float] = None
    retry_policy: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        _check_k(self.k)
        _check_workers(self.workers)
        _check_resilience(self)
        _require(
            self.method in QUALITY_METHODS,
            f"method must be one of {QUALITY_METHODS}, got {self.method!r}",
        )
        _require(
            isinstance(self.samples, int)
            and not isinstance(self.samples, bool)
            and self.samples >= 1,
            f"samples must be a positive integer, got {self.samples!r}",
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding (see :func:`spec_from_dict`)."""
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QualitySpec":
        """Reconstruct a spec equal to the one ``to_dict`` encoded."""
        return cls(**_fields_from(payload, cls))


@dataclass(frozen=True)
class CleaningSpec:
    """Request: plan (and optionally simulate) budgeted cleaning.

    Attributes
    ----------
    k:
        Top-k parameter of the query whose quality is protected.
    budget:
        Total probing budget ``C`` (non-negative integer).
    planner:
        ``"dp"`` (optimal), ``"greedy"``, ``"randp"`` or ``"randu"``.
    costs:
        Per-x-tuple probing costs keyed by x-tuple id, or ``None`` to
        generate them from ``cost_seed`` (paper setup: uniform
        ``[1, 10]``).  Must cover exactly the snapshot's x-tuples;
        mismatches raise
        :class:`~repro.exceptions.UnknownXTupleError` at service time.
    sc_probabilities:
        Per-x-tuple success probabilities keyed by x-tuple id, or
        ``None`` to generate from ``sc_seed`` (uniform ``[0, 1]``).
    cost_seed / sc_seed:
        Seeds for the generated defaults.
    execute:
        Simulate the probes after planning.  The service then registers
        the cleaned database as a **new** snapshot (derived through the
        incremental delta path) and reports its id; with ``False`` the
        response is plan-only and the snapshot is untouched.
    adaptive:
        With ``execute``, re-plan each round with the budget freed by
        early successes (the adaptive extension) instead of executing
        the one-shot plan; ignored without ``execute``.  The response's
        ``"plan"`` then reports the first executed round's probe
        assignment and ``"expected_improvement"`` is omitted (every
        round re-plans, so no single upfront plan describes the run).
    seed:
        Probe-outcome randomness seed (simulations are reproducible).
    durable:
        Durability of the executed outcome when the service is backed
        by a :class:`~repro.store.SnapshotStore`.  ``None``/``True``
        (the default): the cleaning is write-ahead journaled and the
        outcome snapshot's segment is persisted before the response is
        produced, so a crash at any point recovers either the
        pre-clean or the post-clean state.  ``False`` opts this
        request out -- the outcome stays memory-only (gone on
        restart).  Ignored (and harmless) without a store or without
        ``execute``.
    deadline_ms / retry_policy:
        Request-level resilience settings (see :class:`QuerySpec`).  A
        deadline covers the whole cleaning run, re-planning rounds
        included.
    """

    TYPE = "cleaning"

    k: int
    budget: int
    planner: str = "greedy"
    costs: Optional[Mapping[str, int]] = None
    sc_probabilities: Optional[Mapping[str, float]] = None
    cost_seed: int = 0
    sc_seed: int = 0
    execute: bool = True
    adaptive: bool = False
    seed: int = 0
    durable: Optional[bool] = None
    deadline_ms: Optional[float] = None
    retry_policy: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        _check_k(self.k)
        _check_resilience(self)
        _require(
            isinstance(self.budget, int)
            and not isinstance(self.budget, bool)
            and self.budget >= 0,
            f"budget must be a non-negative integer, got {self.budget!r}",
        )
        _require(
            self.planner in PLANNERS,
            f"planner must be one of {PLANNERS}, got {self.planner!r}",
        )
        for label, mapping in (
            ("costs", self.costs),
            ("sc_probabilities", self.sc_probabilities),
        ):
            if mapping is None:
                continue
            _require(
                isinstance(mapping, Mapping)
                and all(isinstance(xid, str) for xid in mapping),
                f"{label} must map x-tuple ids to values, got {mapping!r}",
            )
            object.__setattr__(self, label, dict(mapping))
        if self.costs is not None:
            for xid, cost in self.costs.items():
                _require(
                    isinstance(cost, int)
                    and not isinstance(cost, bool)
                    and cost >= 1,
                    f"cost for {xid!r} must be a positive integer, got {cost!r}",
                )
        if self.sc_probabilities is not None:
            for xid, sc in self.sc_probabilities.items():
                _require(
                    isinstance(sc, (int, float))
                    and not isinstance(sc, bool)
                    and not math.isnan(sc)
                    and 0.0 <= sc <= 1.0,
                    f"sc-probability for {xid!r} must lie in [0, 1], "
                    f"got {sc!r}",
                )
        for label in ("cost_seed", "sc_seed", "seed"):
            value = getattr(self, label)
            _require(
                isinstance(value, int) and not isinstance(value, bool),
                f"{label} must be an integer, got {value!r}",
            )
        _require(
            self.durable is None or isinstance(self.durable, bool),
            f"durable must be a boolean or None, got {self.durable!r}",
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding (see :func:`spec_from_dict`)."""
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CleaningSpec":
        """Reconstruct a spec equal to the one ``to_dict`` encoded."""
        return cls(**_fields_from(payload, cls))


#: Spec shapes a :class:`BatchSpec` may fan out (cleaning mutates the
#: snapshot chain and therefore cannot ride in a shared-pass batch).
BatchItem = Union[QuerySpec, QualitySpec]


@dataclass(frozen=True)
class BatchSpec:
    """Request: evaluate many query/quality specs on **one** snapshot.

    All items are answered from a single
    :class:`~repro.queries.engine.QuerySession` whose PSR cache is
    prefilled at the maximum ``k`` across the batch
    (:meth:`~repro.queries.engine.QuerySession.prefill`), so the whole
    batch costs one O(k_max·n) pass plus answer extraction -- the
    serving analogue of the paper's Section IV-C computation sharing.

    ``workers`` sizes the parallel backend's pool for the whole batch
    (the shared pass and any item that misses the cache); per-item
    ``workers`` values are rejected inside a batch so the shared pass
    has one unambiguous setting.  ``deadline_ms`` and ``retry_policy``
    follow the same rule: the shared PSR pass serves every item, so a
    per-item deadline or policy would be unenforceable -- set them on
    the batch, where they cover the whole fan-out.
    """

    TYPE = "batch"

    items: Tuple[BatchItem, ...] = field(default_factory=tuple)
    workers: Optional[int] = None
    deadline_ms: Optional[float] = None
    retry_policy: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        items = tuple(self.items)
        _require(len(items) >= 1, "a batch needs at least one item")
        _check_workers(self.workers)
        _check_resilience(self)
        for item in items:
            _require(
                isinstance(item, (QuerySpec, QualitySpec)),
                f"batch items must be QuerySpec or QualitySpec, "
                f"got {type(item).__name__}",
            )
            for label in ("workers", "deadline_ms", "retry_policy"):
                _require(
                    getattr(item, label) is None,
                    f"batch items must not set {label} individually; "
                    f"set it on the BatchSpec",
                )
        object.__setattr__(self, "items", items)

    @property
    def max_k(self) -> Optional[int]:
        """The ``k`` the shared PSR pass runs at, or ``None``.

        The pass is sized by the largest *cache-riding* ``k`` -- query
        items and ``"tp"`` quality items; an enumeration or sampling
        quality item never reads the PSR cache, so its ``k`` does not
        size the pass.  ``None`` when no item rides the cache (the
        batch then performs no shared pass at all).
        """
        ks = [
            item.k
            for item in self.items
            if isinstance(item, QuerySpec) or item.method == "tp"
        ]
        return max(ks) if ks else None

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding (see :func:`spec_from_dict`)."""
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchSpec":
        """Reconstruct a spec equal to the one ``to_dict`` encoded."""
        data = _fields_from(payload, cls)
        raw_items = data.get("items")
        _require(
            isinstance(raw_items, (list, tuple)),
            f"batch payload needs an 'items' list, got {raw_items!r}",
        )
        items = tuple(spec_from_dict(item) for item in raw_items)
        return cls(  # type: ignore[arg-type]
            items=items,
            workers=data.get("workers"),
            deadline_ms=data.get("deadline_ms"),
            retry_policy=data.get("retry_policy"),
        )


_SPEC_TYPES: Dict[str, type] = {
    QuerySpec.TYPE: QuerySpec,
    QualitySpec.TYPE: QualitySpec,
    CleaningSpec.TYPE: CleaningSpec,
    BatchSpec.TYPE: BatchSpec,
}

AnySpec = Union[QuerySpec, QualitySpec, CleaningSpec, BatchSpec]


def _fields_from(payload: Mapping[str, Any], cls: type) -> Dict[str, Any]:
    """Extract ``cls``'s fields from a ``to_dict`` payload, strictly."""
    if not isinstance(payload, Mapping):
        raise InvalidSpecError(f"spec payload must be a mapping, got {payload!r}")
    declared = payload.get("type")
    if declared is not None and declared != cls.TYPE:  # type: ignore[attr-defined]
        raise InvalidSpecError(
            f"payload declares type {declared!r}, expected {cls.TYPE!r}"  # type: ignore[attr-defined]
        )
    names = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - names - {"type"})
    if unknown:
        raise InvalidSpecError(f"unknown spec fields {unknown!r} for {cls.TYPE!r}")  # type: ignore[attr-defined]
    return {name: payload[name] for name in names if name in payload}


def spec_from_dict(payload: Mapping[str, Any]) -> AnySpec:
    """Decode any spec from its ``to_dict`` form via the ``type`` tag."""
    if not isinstance(payload, Mapping):
        raise InvalidSpecError(f"spec payload must be a mapping, got {payload!r}")
    try:
        tag = payload["type"]
    except KeyError:
        raise InvalidSpecError(
            f"spec payload lacks a 'type' tag: {dict(payload)!r}"
        ) from None
    cls = _SPEC_TYPES.get(tag)
    if cls is None:
        raise InvalidSpecError(
            f"unknown spec type {tag!r}; expected one of {sorted(_SPEC_TYPES)}"
        )
    return cls.from_dict(payload)  # type: ignore[attr-defined, no-any-return]
