""":class:`TopKService`: the declarative request/response façade.

One object owns the whole paper workflow behind four verbs::

    service = TopKService()
    sid = service.register(db).snapshot_id
    service.query(sid, QuerySpec(k=15))              # answer semantics
    service.quality(sid, QualitySpec(k=15))          # score ambiguity
    out = service.clean(sid, CleaningSpec(k=15, budget=20))
    new_sid = out.payload["new_snapshot_id"]         # cleaned snapshot
    service.batch(sid, BatchSpec(items=(...)))       # shared-pass fan-out

Requests are frozen specs (:mod:`repro.api.specs`), responses uniform
:class:`~repro.api.results.ServiceResult` envelopes, and state lives in
a :class:`~repro.api.pool.SessionPool` -- immutable snapshots under
content-hash ids with per-snapshot session leases, so the service is
safe to call from many threads.  Cleaning never mutates a snapshot:
executed outcomes are derived through the PR 2 incremental delta path
and registered as *new* snapshots whose warm (PSR-patched) session is
seeded into the pool.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from pathlib import Path

from repro.api.pool import SessionPool, snapshot_id_of
from repro.api.results import ServiceResult
from repro.api.specs import (
    BatchSpec,
    CleaningSpec,
    QualitySpec,
    QuerySpec,
)
from repro.cleaning.adaptive import clean_adaptively
from repro.cleaning.base import Cleaner
from repro.cleaning.dp import DPCleaner
from repro.cleaning.executor import execute_plan
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.improvement import expected_improvement
from repro.cleaning.model import (
    CleaningPlan,
    CleaningProblem,
    build_cleaning_problem,
)
from repro.cleaning.random_cleaners import RandPCleaner, RandUCleaner
from repro.core.counters import SESSION_COUNTERS, STORE_COUNTERS
from repro.core.parallel import use_workers
from repro.core.quality import compute_quality_detailed
from repro.core.resilience import Deadline, check_deadline, scoped
from repro.datasets.synthetic import generate_costs, generate_sc_probabilities
from repro.db.database import ProbabilisticDatabase, RankedDatabase
from repro.db.ranking import RankingFunction
from repro.exceptions import InvalidSpecError, JournalReplayError
from repro.queries.engine import QuerySession
from repro.store import RetentionPolicy, SnapshotStore

_PLANNERS: Dict[str, type] = {
    "dp": DPCleaner,
    "greedy": GreedyCleaner,
    "randp": RandPCleaner,
    "randu": RandUCleaner,
}

#: Session counters surfaced (as per-request deltas) in result
#: envelopes -- the one registry in :mod:`repro.core.counters`.
_SESSION_COUNTERS = SESSION_COUNTERS


def _counters_of(session: QuerySession) -> Dict[str, int]:
    return {name: getattr(session, name) for name in _SESSION_COUNTERS}


def _counter_delta(
    before: Mapping[str, int], session: QuerySession
) -> Dict[str, int]:
    return {
        name: getattr(session, name) - before[name]
        for name in _SESSION_COUNTERS
    }


class TopKService:
    """Thread-safe façade over snapshots, queries, quality and cleaning.

    Parameters
    ----------
    pool:
        The :class:`~repro.api.pool.SessionPool` to serve from; a
        private one is created when omitted.
    ranking:
        Ranking function for raw registered databases (by-value when
        omitted); forwarded to the private pool only.
    backend:
        Kernel selection forwarded to the private pool only.
    max_sessions:
        LRU bound of the private pool only.
    workers:
        Parallel-backend pool size forwarded to the private pool only;
        a per-request ``spec.workers`` overrides it for that request.
    max_in_flight / admission_timeout_ms:
        Admission-gate settings forwarded to the private pool only
        (see :class:`~repro.api.pool.SessionPool`).
    store / store_dir / durability:
        Durable persistence.  ``store`` attaches an existing
        :class:`~repro.store.SnapshotStore`; ``store_dir`` opens (or
        creates) one at that directory with the given ``durability``
        (``"strict"``/``"fsync"`` default, ``"batch"`` for
        group-committed journal fsyncs, ``"none"`` for tests).  Either
        way the
        store's recovered snapshots seed the pool, every registration
        persists before publishing, executed cleanings are
        write-ahead journaled, and pending journal records are
        **replayed** here in the constructor -- re-executed
        deterministically and verified against the journaled content
        hash (divergence raises
        :class:`~repro.exceptions.JournalReplayError`).  Forwarded to
        the private pool only; a caller-supplied ``pool`` brings its
        own store (or none).
    keep_last_n / pinned:
        Durable retention knobs (require a store): together they form
        the :class:`~repro.store.RetentionPolicy` the private pool
        sweeps with after each durable registration -- segments beyond
        the newest ``keep_last_n`` are reclaimed through the store's
        two-phase GC, except ``pinned`` ids and anything leased or
        warm.  Omitted, every segment is kept forever.
    """

    def __init__(
        self,
        pool: Optional[SessionPool] = None,
        ranking: Optional[RankingFunction] = None,
        backend: Optional[str] = None,
        max_sessions: Optional[int] = None,
        workers: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        admission_timeout_ms: Optional[float] = None,
        store: Optional[SnapshotStore] = None,
        store_dir: Optional[Union[str, Path]] = None,
        durability: Optional[str] = None,
        keep_last_n: Optional[int] = None,
        pinned: Sequence[str] = (),
    ) -> None:
        if pool is not None and (
            ranking is not None
            or backend is not None
            or max_sessions is not None
            or workers is not None
            or max_in_flight is not None
            or admission_timeout_ms is not None
            or store is not None
            or store_dir is not None
            or durability is not None
            or keep_last_n is not None
            or tuple(pinned)
        ):
            raise ValueError(
                "pass ranking/backend/max_sessions/workers/max_in_flight/"
                "admission_timeout_ms/store/store_dir/durability/"
                "keep_last_n/pinned only when the service creates its "
                "own pool"
            )
        if store is not None and store_dir is not None:
            raise ValueError("pass either store or store_dir, not both")
        if durability is not None and store_dir is None:
            raise ValueError("durability only applies with store_dir")
        if (keep_last_n is not None or tuple(pinned)) and (
            store is None and store_dir is None
        ):
            raise ValueError(
                "keep_last_n / pinned require a store or store_dir"
            )
        if pool is None:
            if store_dir is not None:
                store = SnapshotStore(
                    store_dir, durability=durability or "fsync"
                )
            retention = (
                RetentionPolicy(
                    keep_last_n=keep_last_n, pinned=tuple(pinned)
                )
                if keep_last_n is not None or tuple(pinned)
                else None
            )
            kwargs: Dict[str, Any] = {}
            if max_sessions is not None:
                kwargs["max_sessions"] = max_sessions
            if max_in_flight is not None:
                kwargs["max_in_flight"] = max_in_flight
            if admission_timeout_ms is not None:
                kwargs["admission_timeout_ms"] = admission_timeout_ms
            pool = SessionPool(
                ranking=ranking,
                backend=backend,
                workers=workers,
                store=store,
                retention=retention,
                **kwargs,
            )
        self.pool = pool
        self.store = pool.store
        self._replaying = False
        if self.store is not None:
            self._replay_journal()

    @contextmanager
    def _admitted(self, spec: Any) -> Iterator[None]:
        """Scope a request's deadline / retry policy around its work.

        An already-expired ``deadline_ms`` sheds the request here --
        with :class:`~repro.exceptions.DeadlineExceededError`, before
        the session lease, the admission gate, or any PSR work is
        touched.  The scope is thread-local, so concurrently served
        requests never see each other's deadlines.
        """
        deadline = (
            Deadline.after_ms(spec.deadline_ms)
            if spec.deadline_ms is not None
            else None
        )
        with scoped(deadline, spec.retry_policy):
            check_deadline("at request admission")
            yield

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _store_counters(self) -> Optional[Dict[str, int]]:
        """Absolute store counters, or ``None`` without a store."""
        if self.store is None:
            return None
        return self.store.counters()

    def _with_store_delta(
        self,
        counters: Optional[Dict[str, int]],
        before: Optional[Dict[str, int]],
    ) -> Optional[Dict[str, int]]:
        """Merge per-request store counter deltas into an envelope.

        With a store attached, every envelope's ``counters`` carries
        the :data:`~repro.core.counters.STORE_COUNTERS` deltas next to
        the session counters -- segment writes and quarantines are
        visible per request, not just in aggregate.
        """
        if before is None:
            return counters
        after = self.store.counters()
        merged = dict(counters or {})
        for name in STORE_COUNTERS:
            merged[name] = after[name] - before[name]
        return merged

    def _replay_journal(self) -> None:
        """Re-execute journaled cleanings whose segments are missing.

        Runs once, at construction.  A pending record means a crash
        struck after the journal append but before the outcome
        segment's commit; cleaning is deterministic given the spec's
        seed, so re-executing it against the (durable) base snapshot
        regenerates bit-identical content.  The regenerated snapshot
        id *and* content hash must match the journaled ones --
        anything else means the durable history is inconsistent, and
        opening fails with
        :class:`~repro.exceptions.JournalReplayError` rather than
        serving state that contradicts the journal.  The original
        request's deadline / retry settings are stripped: replay must
        complete, not re-honor a long-gone latency budget.
        """
        assert self.store is not None
        for record in self.store.pending_cleanings():
            base = record.get("base")
            outcome_id = record.get("outcome")
            if base not in self.pool:
                raise JournalReplayError(
                    f"journaled cleaning of base snapshot {base!r} cannot "
                    f"be replayed: its segment is missing or quarantined"
                )
            spec_payload = dict(record.get("spec") or {})
            spec_payload.pop("deadline_ms", None)
            spec_payload.pop("retry_policy", None)
            try:
                spec = CleaningSpec.from_dict(spec_payload)
            except InvalidSpecError as exc:
                raise JournalReplayError(
                    f"journaled cleaning spec of base {base!r} does not "
                    f"decode: {exc}"
                ) from exc
            self._replaying = True
            try:
                result = self.clean(base, spec)
            finally:
                self._replaying = False
            regenerated = result.payload.get("new_snapshot_id")
            if regenerated != outcome_id or self.pool.database(
                outcome_id
            ).content_hash() != record.get("outcome_hash"):
                raise JournalReplayError(
                    f"replaying the journaled cleaning of {base!r} "
                    f"produced snapshot {regenerated!r}, but the journal "
                    f"recorded {outcome_id!r} (hash "
                    f"{record.get('outcome_hash')!r}); the durable history "
                    f"is inconsistent"
                )
            self.store.note_replayed()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def register(
        self, db: Union[ProbabilisticDatabase, RankedDatabase]
    ) -> ServiceResult:
        """Register a database snapshot; idempotent by content hash.

        With a store attached the snapshot is durably persisted before
        it is published (see :meth:`repro.api.pool.SessionPool.\
register`), and the envelope's ``counters`` reports the store's
        per-request deltas.
        """
        start = time.perf_counter()
        store_before = self._store_counters()
        snapshot_id = self.pool.register(db)
        ranked = self.pool.ranked(snapshot_id)
        return ServiceResult(
            kind="register",
            snapshot_id=snapshot_id,
            payload={
                "num_xtuples": ranked.num_xtuples,
                "num_tuples": ranked.num_tuples,
                "name": ranked.db.name,
            },
            timing_ms=(time.perf_counter() - start) * 1000.0,
            counters=self._with_store_delta(None, store_before),
        )

    def database(self, snapshot_id: str) -> ProbabilisticDatabase:
        """The immutable database registered under ``snapshot_id``."""
        return self.pool.database(snapshot_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, snapshot_id: str, spec: QuerySpec) -> ServiceResult:
        """Answer the requested top-k semantics on one snapshot."""
        start = time.perf_counter()
        store_before = self._store_counters()
        with self._admitted(spec), self.pool.lease(snapshot_id) as session:
            check_deadline("after queueing for a session lease")
            before = _counters_of(session)
            with use_workers(spec.workers):
                payload = self._query_payload(session, spec)
            counters = self._with_store_delta(
                _counter_delta(before, session), store_before
            )
        return ServiceResult(
            kind="query",
            snapshot_id=snapshot_id,
            payload=payload,
            spec=spec.to_dict(),
            timing_ms=(time.perf_counter() - start) * 1000.0,
            counters=counters,
        )

    def quality(self, snapshot_id: str, spec: QualitySpec) -> ServiceResult:
        """Score the top-k query's PWS-quality on one snapshot."""
        start = time.perf_counter()
        store_before = self._store_counters()
        with self._admitted(spec), self.pool.lease(snapshot_id) as session:
            check_deadline("after queueing for a session lease")
            before = _counters_of(session)
            with use_workers(spec.workers):
                payload = self._quality_payload(session, spec)
            counters = self._with_store_delta(
                _counter_delta(before, session), store_before
            )
        return ServiceResult(
            kind="quality",
            snapshot_id=snapshot_id,
            payload=payload,
            spec=spec.to_dict(),
            timing_ms=(time.perf_counter() - start) * 1000.0,
            counters=counters,
        )

    def batch(self, snapshot_id: str, spec: BatchSpec) -> ServiceResult:
        """Evaluate many query/quality specs sharing one max-k PSR pass.

        The snapshot's session is prefilled at ``spec.max_k``
        (:meth:`~repro.queries.engine.QuerySession.prefill`), after
        which every item -- whatever its ``k`` -- is served from cache:
        the whole batch costs at most **one** full PSR pass.  The
        result payload carries one envelope dict per item, in order.
        """
        start = time.perf_counter()
        store_before = self._store_counters()
        with self._admitted(spec), self.pool.lease(snapshot_id) as session:
            check_deadline("after queueing for a session lease")
            before = _counters_of(session)
            # Only items that ride the PSR cache size the shared pass:
            # an enumeration/sampling QualitySpec never reads it, so its
            # (possibly huge) k must not inflate the O(k_max·n) scan.
            # The batch-level workers knob covers the prefill (where the
            # shared PSR pass actually runs) and every item.
            with use_workers(spec.workers):
                session.prefill(
                    item.k
                    for item in spec.items
                    if isinstance(item, QuerySpec) or item.method == "tp"
                )
                items = []
                for item in spec.items:
                    item_start = time.perf_counter()
                    item_before = _counters_of(session)
                    if isinstance(item, QuerySpec):
                        kind = "query"
                        payload = self._query_payload(session, item)
                    else:
                        kind = "quality"
                        payload = self._quality_payload(session, item)
                    items.append(
                        ServiceResult(
                            kind=kind,
                            snapshot_id=snapshot_id,
                            payload=payload,
                            spec=item.to_dict(),
                            timing_ms=(time.perf_counter() - item_start)
                            * 1000.0,
                            counters=_counter_delta(item_before, session),
                        ).to_dict()
                    )
            counters = self._with_store_delta(
                _counter_delta(before, session), store_before
            )
        return ServiceResult(
            kind="batch",
            snapshot_id=snapshot_id,
            payload={"max_k": spec.max_k, "items": items},
            spec=spec.to_dict(),
            timing_ms=(time.perf_counter() - start) * 1000.0,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------
    def clean(self, snapshot_id: str, spec: CleaningSpec) -> ServiceResult:
        """Plan -- and with ``spec.execute``, simulate -- cleaning.

        Never mutates the input snapshot.  Executed outcomes are
        derived probe-by-probe through the incremental delta path and
        registered as a **new** snapshot (its warm, PSR-patched session
        seeded into the pool); the payload names it under
        ``"new_snapshot_id"``.  Plan-only requests leave the registry
        untouched and report the plan and its expected improvement.

        With a store attached (and ``spec.durable`` not ``False``),
        the outcome is **write-ahead journaled** before it is
        registered: the journal records the base snapshot, the full
        spec and the outcome's content hash, and only then is the
        outcome segment persisted and published.  A crash anywhere in
        between is recovered at the next open by re-executing the
        journaled spec -- the execution is deterministic given
        ``spec.seed`` -- so callers observe either the pre-clean or
        the post-clean state, never a half-applied one.
        """
        start = time.perf_counter()
        store_before = self._store_counters()
        with self._admitted(spec), self.pool.lease(snapshot_id) as session:
            check_deadline("after queueing for a session lease")
            before = _counters_of(session)
            db = session.db
            costs, sc = self._cleaning_inputs(session.ranked, spec)
            quality = session.quality(spec.k)
            problem = build_cleaning_problem(quality, costs, sc, spec.budget)
            planner: Cleaner = _PLANNERS[spec.planner]()
            payload: Dict[str, Any] = {
                "k": spec.k,
                "budget": spec.budget,
                "planner": planner.name,
                "quality_before": quality.quality,
            }
            final_session = session
            if spec.execute and spec.adaptive:
                # The adaptive loop re-plans every round itself; a
                # separate upfront plan would double the (possibly
                # pseudo-polynomial DP) planning cost and describe a
                # plan the run never executes.  The payload's "plan" is
                # the first executed round's probe assignment;
                # "expected_improvement" is omitted.
                extra, final_session = self._execute_payload(
                    db, problem, planner, None, session, spec
                )
                payload.update(extra)
            else:
                plan = planner.plan(problem)
                payload["plan"] = {
                    "operations": dict(sorted(plan.operations.items())),
                    "total_operations": plan.total_operations,
                    "total_cost": plan.total_cost(problem),
                }
                payload["expected_improvement"] = expected_improvement(
                    problem, plan
                )
                if spec.execute:
                    extra, final_session = self._execute_payload(
                        db, problem, planner, plan, session, spec
                    )
                    payload.update(extra)
            # Derive chains carry counters cumulatively, so the chain's
            # last session reports the whole request's evaluation cost.
            counters = _counter_delta(before, final_session)
            if spec.execute and final_session is not session:
                outcome_ranked = final_session.ranked
                if (
                    self.store is not None
                    and spec.durable is not False
                    and not self._replaying
                ):
                    # WAL ordering: the journal record must be durable
                    # before the outcome segment (or the in-memory
                    # entry) exists, so a crash after this line is
                    # recoverable by deterministic re-execution.
                    self.store.journal_clean(
                        snapshot_id,
                        spec.to_dict(),
                        snapshot_id_of(outcome_ranked.db),
                        outcome_ranked.db.content_hash(),
                    )
                # Publish the outcome snapshot (and its warm patched
                # session) only after the counters were read: once the
                # session is in the pool another thread may lease it
                # and advance those counters concurrently.
                payload["new_snapshot_id"] = self.pool.register(
                    outcome_ranked,
                    session=final_session,
                    durable=spec.durable,
                )
            elif spec.execute:
                # All probes failed: the outcome is content-equal to
                # the input snapshot, so it registers to the same id.
                payload["new_snapshot_id"] = snapshot_id
            counters = self._with_store_delta(counters, store_before)
        return ServiceResult(
            kind="clean",
            snapshot_id=snapshot_id,
            payload=payload,
            spec=spec.to_dict(),
            timing_ms=(time.perf_counter() - start) * 1000.0,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _query_payload(
        self, session: QuerySession, spec: QuerySpec
    ) -> Dict[str, Any]:
        """Answer payload for one query spec (session already leased)."""
        payload: Dict[str, Any] = {"k": spec.k}
        if spec.semantics in ("ukranks", "all"):
            ukranks = session.ukranks(spec.k)
            payload["ukranks"] = {
                "winners": [
                    {"rank": w.rank, "tid": w.tid, "probability": w.probability}
                    for w in ukranks.winners
                ]
            }
        if spec.semantics in ("ptk", "all"):
            ptk = session.ptk(spec.k, spec.threshold)
            payload["ptk"] = {
                "threshold": spec.threshold,
                "members": [[tid, p] for tid, p in ptk.members],
            }
        if spec.semantics in ("global-topk", "all"):
            global_topk = session.global_topk(spec.k)
            payload["global_topk"] = {
                "members": [[tid, p] for tid, p in global_topk.members]
            }
        if spec.semantics == "all":
            payload["quality"] = session.quality(spec.k).quality
        return payload

    def _quality_payload(
        self, session: QuerySession, spec: QualitySpec
    ) -> Dict[str, Any]:
        """Quality payload; only ``"tp"`` rides the shared session."""
        payload: Dict[str, Any] = {"k": spec.k, "method": spec.method}
        if spec.method == "tp":
            payload["quality"] = session.quality(spec.k).quality
            return payload
        kwargs: Dict[str, Any] = {}
        if spec.method == "montecarlo":
            kwargs["num_samples"] = spec.samples
        result = compute_quality_detailed(
            session.ranked, spec.k, method=spec.method, **kwargs
        )
        payload["quality"] = result.quality
        num_results = getattr(result, "num_results", None)
        if num_results is not None:
            payload["num_results"] = num_results
        return payload

    def _cleaning_inputs(
        self, ranked: RankedDatabase, spec: CleaningSpec
    ) -> Tuple[Dict[str, int], Dict[str, float]]:
        """Resolve the spec's costs / sc-probabilities against a snapshot.

        Explicit mappings pass through unchanged -- coverage against
        the snapshot's x-tuples is validated by
        :func:`~repro.cleaning.model.build_cleaning_problem`, which
        raises :class:`~repro.exceptions.UnknownXTupleError` naming the
        offending identifier.  Omitted mappings are generated from the
        spec's seeds (the paper's experimental setup).
        """
        db = ranked.db
        costs = (
            dict(spec.costs)
            if spec.costs is not None
            else generate_costs(db, seed=spec.cost_seed)
        )
        sc = (
            dict(spec.sc_probabilities)
            if spec.sc_probabilities is not None
            else generate_sc_probabilities(db, seed=spec.sc_seed)
        )
        return costs, sc

    def _execute_payload(
        self,
        db: ProbabilisticDatabase,
        problem: CleaningProblem,
        planner: Cleaner,
        plan: Optional[CleaningPlan],
        session: QuerySession,
        spec: CleaningSpec,
    ) -> Tuple[Dict[str, Any], QuerySession]:
        """Simulate execution; the caller registers the outcome.

        ``plan`` is ``None`` for adaptive requests (the loop plans each
        round itself; the payload then reports the first round's probe
        assignment as the plan).  Returns the execution payload fields
        and the end-of-chain session (whose cumulative counters cover
        the whole request).  Registration of the outcome snapshot is
        deliberately left to :meth:`clean`, which must read the
        session's counters *before* publishing it to the pool.
        """
        rng = random.Random(spec.seed)
        if spec.adaptive:
            result = clean_adaptively(
                db, problem, planner, rng=rng, session=session
            )
            out_session = result.session
            assert out_session is not None
            records = [
                r for round_ in result.rounds for r in round_.outcome.records
            ]
            cost_assigned = sum(
                round_.outcome.cost_assigned for round_ in result.rounds
            )
            first = result.rounds[0].outcome if result.rounds else None
            extra: Dict[str, Any] = {
                "rounds": len(result.rounds),
                "cost_spent": result.budget_spent,
                "quality_after": result.final_quality,
                "plan": {
                    "operations": (
                        {r.xid: r.assigned for r in sorted(first.records, key=lambda r: r.xid)}
                        if first is not None
                        else {}
                    ),
                    "total_operations": (
                        sum(r.assigned for r in first.records) if first else 0
                    ),
                    "total_cost": first.cost_assigned if first else 0,
                },
            }
        else:
            assert plan is not None
            outcome = execute_plan(db, problem, plan, rng=rng, session=session)
            out_session = outcome.session
            assert out_session is not None
            records = list(outcome.records)
            cost_assigned = outcome.cost_assigned
            extra = {
                "rounds": 1,
                "cost_spent": outcome.cost_spent,
                "quality_after": out_session.quality(spec.k).quality,
            }
        extra.update(
            {
                "cost_assigned": cost_assigned,
                "probes": [
                    {
                        "xid": r.xid,
                        "assigned": r.assigned,
                        "performed": r.performed,
                        "succeeded": r.succeeded,
                        "revealed_tid": r.revealed_tid,
                        "revealed_null": r.revealed_null,
                    }
                    for r in records
                ],
                "num_succeeded": sum(1 for r in records if r.succeeded),
            }
        )
        return extra, out_session
