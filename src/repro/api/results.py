"""Uniform response envelopes for the service façade.

Every :class:`~repro.api.service.TopKService` call returns a
:class:`ServiceResult`: the request kind, the snapshot id the request
was served against, a plain-data payload (JSON types only -- ``dict``
/ ``list`` / ``str`` / ``float`` / ``int`` / ``bool`` / ``None``), and
operational metadata (wall-clock timing plus the session/pool cache
counters the request consumed).  Like the specs, results are values:
``from_dict(to_dict(r)) == r`` holds exactly, including through a
``json.dumps``/``json.loads`` round-trip, which keeps the envelope
wire-ready for a future HTTP layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import InvalidSpecError

#: Request kinds a result may carry.
RESULT_KINDS = ("register", "query", "quality", "clean", "batch")


@dataclass(frozen=True)
class ServiceResult:
    """One service response: payload plus provenance and cost metadata.

    Attributes
    ----------
    kind:
        Which request shape produced this result (one of
        :data:`RESULT_KINDS`).
    snapshot_id:
        Content-hash id of the snapshot the request was served against.
        For ``clean`` requests that executed probes, the payload's
        ``"new_snapshot_id"`` names the registered outcome snapshot;
        ``snapshot_id`` here stays the input snapshot.
    payload:
        The answer itself, as plain JSON-serializable data.
    spec:
        The request spec's ``to_dict`` encoding (``None`` for
        ``register``, which takes no spec), so a response is
        self-describing.
    timing_ms:
        Wall-clock service time of this request.
    counters:
        Cache/cost counters consumed by this request, as per-request
        deltas of the session's cumulative totals: ``psr_hits`` /
        ``psr_misses`` / ``psr_patches`` / ``psr_prefills`` /
        ``cold_derives`` / ``delta_derives`` (cache behaviour),
        ``psr_parallel_passes`` / ``psr_parallel_fallbacks`` (which
        kernel ran), and the resilience trio ``psr_retries`` /
        ``psr_pool_restarts`` / ``psr_degraded`` (supervised retries,
        worker-pool rebuilds, and passes that degraded past the pooled
        kernel -- all zero on a healthy run, so any non-zero value is
        a recovered fault made visible).
    """

    kind: str
    snapshot_id: str
    payload: Dict[str, Any] = field(default_factory=dict)
    spec: Optional[Dict[str, Any]] = None
    timing_ms: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in RESULT_KINDS:
            raise InvalidSpecError(
                f"result kind must be one of {RESULT_KINDS}, got {self.kind!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding of the whole envelope."""
        return {
            "kind": self.kind,
            "snapshot_id": self.snapshot_id,
            "payload": self.payload,
            "spec": self.spec,
            "timing_ms": self.timing_ms,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServiceResult":
        """Reconstruct an envelope equal to the one ``to_dict`` encoded."""
        if not isinstance(payload, Mapping):
            raise InvalidSpecError(
                f"result payload must be a mapping, got {payload!r}"
            )
        try:
            return cls(
                kind=payload["kind"],
                snapshot_id=payload["snapshot_id"],
                payload=dict(payload.get("payload") or {}),
                spec=(
                    dict(payload["spec"])
                    if payload.get("spec") is not None
                    else None
                ),
                timing_ms=float(payload.get("timing_ms", 0.0)),
                counters=dict(payload.get("counters") or {}),
            )
        except KeyError as exc:
            raise InvalidSpecError(
                f"result payload lacks required key {exc.args[0]!r}"
            ) from None
