"""Thread-safe snapshot registry and :class:`QuerySession` pool.

:class:`~repro.queries.engine.QuerySession` is deliberately not
thread-safe -- it memoizes PSR state behind plain dict lookups.  The
pool makes sessions safe to serve concurrently by construction:

* **Snapshots** are immutable ranked databases registered under their
  content hash (:meth:`repro.db.database.ProbabilisticDatabase.\
content_hash`), so registration is idempotent and a snapshot id names
  one logical database forever.
* **Sessions** are memoized per snapshot in an LRU map bounded by
  ``max_sessions``; the *n*-th distinct hot snapshot evicts the least
  recently leased one (its caches are rebuilt on next lease -- never
  wrong, only cold).
* **Leases** hand out a session under that snapshot's private lock
  (:meth:`SessionPool.lease` is a context manager), so at most one
  thread touches a given session at a time while different snapshots
  proceed in parallel.  Registry bookkeeping itself is guarded by one
  short-held pool lock; no lock is ever held across kernel work of a
  *different* snapshot.
* **Admission** is gated: at most ``max_in_flight`` leases are live at
  once, a lease request waits at most ``admission_timeout_ms`` for a
  slot (less, if the request's scoped deadline is tighter), and a
  saturated pool **sheds** with
  :class:`~repro.exceptions.ServiceOverloadedError` instead of
  queueing unboundedly -- overload degrades into fast failures, not
  into every request timing out.

The pool is the concurrency substrate of
:class:`~repro.api.service.TopKService`; nothing in it knows about
specs or results.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Set, Union

from repro.core.lockcheck import (
    RANK_ADMISSION,
    RANK_POOL_REGISTRY,
    RANK_SNAPSHOT,
    OrderedLock,
    OrderedSemaphore,
)
from repro.core.resilience import current_deadline
from repro.db.database import ProbabilisticDatabase, RankedDatabase
from repro.db.ranking import RankingFunction, rankings_equivalent
from repro.exceptions import (
    CorruptSnapshotError,
    ServiceOverloadedError,
    UnknownSnapshotError,
)
from repro.queries.engine import QuerySession
from repro.store import RetentionPolicy, SnapshotStore

#: Default bound on concurrently cached sessions.
DEFAULT_MAX_SESSIONS = 8

#: Default bound on concurrently served leases (the admission gate).
DEFAULT_MAX_IN_FLIGHT = 32

#: Default bounded wait for an admission slot, in milliseconds.
DEFAULT_ADMISSION_TIMEOUT_MS = 1000.0

#: Snapshot-id prefix (purely cosmetic; the suffix is the content hash).
SNAPSHOT_PREFIX = "snap-"

#: Hex digits of the content hash kept in the public snapshot id.
SNAPSHOT_ID_HEX = 16


def snapshot_id_of(db: ProbabilisticDatabase) -> str:
    """The content-derived snapshot id a database registers under."""
    return SNAPSHOT_PREFIX + db.content_hash()[:SNAPSHOT_ID_HEX]


class SessionPool:
    """Concurrent registry of snapshots and their cached query sessions.

    Parameters
    ----------
    max_sessions:
        Upper bound on memoized sessions (LRU-evicted beyond it).  The
        snapshot registry itself is unbounded -- snapshots are the
        data; sessions are the (re-creatable) caches.
    ranking:
        Ranking function applied when a raw database is registered;
        defaults to by-value.
    backend:
        Kernel selection threaded into every pooled session.
    workers:
        Parallel-backend pool size threaded into every pooled session
        (``None`` defers to the environment; serial backends ignore
        it).
    max_in_flight:
        Admission gate: most leases live at once.  The ``max_in_flight
        + 1``-th concurrent lease waits for a slot and is shed with
        :class:`~repro.exceptions.ServiceOverloadedError` if none
        frees up within the admission timeout.
    admission_timeout_ms:
        Longest a lease waits for an admission slot.  A scoped request
        deadline tighter than this bounds the wait further.
    store:
        Optional :class:`~repro.store.SnapshotStore` backing the
        registry.  When set, the store's recovered snapshots are
        adopted at construction and every registration persists its
        segment durably **before** publishing the in-memory entry, so
        memory and disk can never disagree: a snapshot the pool serves
        is on disk, and a failed write publishes nothing.
    retention:
        Optional :class:`~repro.store.RetentionPolicy` bounding the
        *durable* segment set.  When set (and a store is attached),
        every durable registration triggers :meth:`sweep_store`:
        segments beyond ``keep_last_n`` are tombstoned and reclaimed
        by the store's two-phase GC, except pinned ids and anything
        currently leased or warm in the session cache.  ``None`` (the
        default) keeps every segment forever -- the pre-retention
        behaviour, unchanged.
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        ranking: Optional[RankingFunction] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        admission_timeout_ms: float = DEFAULT_ADMISSION_TIMEOUT_MS,
        store: Optional[SnapshotStore] = None,
        retention: Optional[RetentionPolicy] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if not admission_timeout_ms >= 0:
            raise ValueError(
                f"admission_timeout_ms must be non-negative, "
                f"got {admission_timeout_ms}"
            )
        self.max_sessions = max_sessions
        self.ranking = ranking
        self.backend = backend
        self.workers = workers
        self.max_in_flight = max_in_flight
        self.admission_timeout_ms = float(admission_timeout_ms)
        # The pool's locks declare their place in the serving stack's
        # lock hierarchy (admission < snapshot < registry); under
        # REPRO_DEBUG_LOCKS=1 any acquisition violating that order
        # raises LockOrderError at the inversion site.
        self._admission = OrderedSemaphore(
            "session-pool.admission", RANK_ADMISSION, max_in_flight
        )
        self._lock = OrderedLock("session-pool.registry", RANK_POOL_REGISTRY)
        self._snapshots: Dict[str, RankedDatabase] = {}
        self._snapshot_locks: Dict[str, OrderedLock] = {}
        self._sessions: "OrderedDict[str, QuerySession]" = OrderedDict()
        #: Live lease counts per snapshot id (guarded by the pool
        #: lock); these ids are always protected from segment GC.
        self._leased: Dict[str, int] = {}
        self.store = store
        self.retention = retention
        if store is not None:
            self._adopt_store(store)
        #: Lease-level cache telemetry (guarded by the pool lock).
        self.session_hits = 0
        self.session_misses = 0
        self.evictions = 0
        #: Admission telemetry: currently admitted leases and requests
        #: shed at the gate (guarded by the pool lock).
        self.in_flight = 0
        self.shed_requests = 0

    # ------------------------------------------------------------------
    # Snapshot registry
    # ------------------------------------------------------------------
    def _adopt_store(self, store: SnapshotStore) -> None:
        """Seed the registry with the store's recovered snapshots.

        One extra integrity check the store itself cannot perform: the
        pool's snapshot-id derivation must reproduce each stored id
        from the recovered content.  A mismatch means the segment was
        written under a different (or broken) id convention; serving
        it under either id would lie to one side, so the segment is
        quarantined and skipped instead.
        """
        for snapshot_id, ranked in store.snapshots().items():
            if snapshot_id_of(ranked.db) != snapshot_id:
                try:
                    store.quarantine_segment(
                        snapshot_id,
                        "stored id does not derive from the content hash",
                    )
                except CorruptSnapshotError:
                    continue
            self._snapshots[snapshot_id] = ranked
            self._snapshot_locks[snapshot_id] = OrderedLock(
                f"snapshot.{snapshot_id}", RANK_SNAPSHOT
            )

    def register(
        self,
        db: Union[ProbabilisticDatabase, RankedDatabase],
        session: Optional[QuerySession] = None,
        durable: Optional[bool] = None,
    ) -> str:
        """Register an immutable snapshot; returns its content-hash id.

        Idempotent: registering equal content returns the same id and
        keeps the existing ranked view (and any warm session).  An
        already-ranked view is adopted as-is; a raw database is ranked
        under the pool's ranking.  Snapshot ids hash *content* only, so
        re-registering equal content under a ranking that is not
        demonstrably equivalent to the stored view's (see
        :func:`repro.db.ranking.rankings_equivalent`) raises
        ``ValueError`` -- silently answering under the first-registered
        ranking would return wrong query results.  ``session``
        optionally seeds the session cache with an already-warm session
        over the snapshot -- the cleaning path uses this so a
        delta-derived session (one whose PSR cache was patched, not
        rebuilt) serves the outcome snapshot's future requests.

        With a backing store, registration is **persist-first**: the
        segment is durably committed before the in-memory entry is
        published, so a write failure
        (:class:`~repro.exceptions.StoreWriteError`) or a crash
        mid-write leaves the registry exactly as it was -- memory
        never advertises a snapshot disk does not hold.  ``durable``
        ``False`` opts one registration out of persistence (the
        snapshot stays memory-only); ``None``/``True`` persist
        whenever a store is attached.
        """
        ranked = db if isinstance(db, RankedDatabase) else None
        raw = ranked.db if ranked is not None else db
        assert isinstance(raw, ProbabilisticDatabase)
        snapshot_id = snapshot_id_of(raw)
        if self.store is not None and durable is not False:
            if ranked is None:
                ranked = raw.ranked(self.ranking)
            # Outside the registry lock: the store lock (RANK_STORE)
            # ranks below the registry lock, and a slow disk must not
            # block unrelated leases.  The store serializes itself.
            self.store.persist(snapshot_id, ranked)
            if self.retention is not None:
                self.sweep_store()
        incoming = ranked.ranking if ranked is not None else self.ranking
        with self._lock:
            stored = self._snapshots.get(snapshot_id)
            if stored is None:
                if ranked is None:
                    ranked = raw.ranked(self.ranking)
                self._snapshots[snapshot_id] = ranked
                self._snapshot_locks[snapshot_id] = OrderedLock(
                    f"snapshot.{snapshot_id}", RANK_SNAPSHOT
                )
            elif not rankings_equivalent(stored.ranking, incoming):
                raise ValueError(
                    f"snapshot {snapshot_id!r} is already registered under "
                    f"ranking {stored.ranking!r}; re-registering equal "
                    f"content under {incoming!r} would silently answer "
                    f"queries with the wrong ordering"
                )
            if session is not None and snapshot_id not in self._sessions:
                self._store_session(snapshot_id, session)
        return snapshot_id

    def ranked(self, snapshot_id: str) -> RankedDatabase:
        """The registered ranked view for a snapshot id."""
        with self._lock:
            try:
                return self._snapshots[snapshot_id]
            except KeyError:
                raise UnknownSnapshotError(
                    f"unknown snapshot id {snapshot_id!r}"
                ) from None

    def database(self, snapshot_id: str) -> ProbabilisticDatabase:
        """The registered database for a snapshot id."""
        return self.ranked(snapshot_id).db

    def __contains__(self, snapshot_id: str) -> bool:
        with self._lock:
            return snapshot_id in self._snapshots

    @property
    def num_snapshots(self) -> int:
        """Number of registered snapshots."""
        with self._lock:
            return len(self._snapshots)

    @property
    def num_cached_sessions(self) -> int:
        """Number of memoized sessions (always ``<= max_sessions``)."""
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # Session leasing
    # ------------------------------------------------------------------
    def _store_session(self, snapshot_id: str, session: QuerySession) -> None:
        """Insert/refresh an LRU entry; caller holds the pool lock."""
        self._sessions[snapshot_id] = session
        self._sessions.move_to_end(snapshot_id)
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self.evictions += 1

    def _admit(self) -> None:
        """Take an admission slot or shed within the bounded wait."""
        timeout_s = self.admission_timeout_ms / 1000.0
        deadline = current_deadline()
        if deadline is not None:
            timeout_s = min(timeout_s, max(deadline.remaining_s(), 0.0))
        if not self._admission.acquire(timeout=timeout_s):
            with self._lock:
                self.shed_requests += 1
            raise ServiceOverloadedError(
                f"{self.max_in_flight} requests already in flight and none "
                f"finished within {self.admission_timeout_ms:.0f}ms; "
                f"shedding instead of queueing"
            )
        with self._lock:
            self.in_flight += 1

    @contextmanager
    def lease(self, snapshot_id: str) -> Iterator[QuerySession]:
        """Exclusive access to the snapshot's memoized session.

        Acquires the snapshot's private lock for the duration of the
        ``with`` block, creating (or re-creating, after eviction) the
        session on a cache miss.  Concurrent leases of *different*
        snapshots run in parallel; leases of the same snapshot
        serialize, which is exactly the guarantee
        :class:`~repro.queries.engine.QuerySession` needs.

        Leases pass the admission gate first: when ``max_in_flight``
        are already live and none retires within the bounded admission
        wait, the lease is shed with
        :class:`~repro.exceptions.ServiceOverloadedError` rather than
        joining an unbounded queue.
        """
        with self._lock:
            try:
                ranked = self._snapshots[snapshot_id]
                snapshot_lock = self._snapshot_locks[snapshot_id]
            except KeyError:
                raise UnknownSnapshotError(
                    f"unknown snapshot id {snapshot_id!r}"
                ) from None
        self._admit()
        try:
            with self._lock:
                self._leased[snapshot_id] = (
                    self._leased.get(snapshot_id, 0) + 1
                )
            with snapshot_lock:
                yield self._leased_session(snapshot_id, ranked)
        finally:
            with self._lock:
                self.in_flight -= 1
                remaining = self._leased.get(snapshot_id, 1) - 1
                if remaining <= 0:
                    self._leased.pop(snapshot_id, None)
                else:
                    self._leased[snapshot_id] = remaining
            self._admission.release()

    def _leased_session(
        self, snapshot_id: str, ranked: RankedDatabase
    ) -> QuerySession:
        """The memoized session; caller holds the snapshot lock."""
        with self._lock:
            session = self._sessions.get(snapshot_id)
            if session is not None:
                self._sessions.move_to_end(snapshot_id)
                self.session_hits += 1
            else:
                self.session_misses += 1
        if session is None:
            # Built outside the pool lock: construction ranks
            # nothing (the view exists) but must not block other
            # snapshots' bookkeeping.
            session = QuerySession(
                ranked, backend=self.backend, workers=self.workers
            )
            with self._lock:
                self._store_session(snapshot_id, session)
        return session

    def clear_sessions(self) -> None:
        """Drop every memoized session (snapshots stay registered)."""
        with self._lock:
            self._sessions.clear()

    # ------------------------------------------------------------------
    # Store retention
    # ------------------------------------------------------------------
    def sweep_store(self) -> Optional[Dict[str, object]]:
        """Apply the retention policy to the backing store.

        Tombstones segments beyond ``retention.keep_last_n`` (the
        store's two-phase GC), protecting pinned ids plus every
        snapshot currently leased or warm in the session LRU, then
        checkpoints the journal so reclaimed files are actually
        unlinked.  Registered-but-cold snapshots stay servable from
        memory for this process's lifetime; only their *durable* copy
        is retired.  Returns the GC report, or ``None`` when no store
        or no retention policy is attached.

        The in-use set is passed as a *callback* the store evaluates
        under its exclusive lock, at the moment GC picks its victims
        -- not snapshotted up front.  A lease acquired while the sweep
        is already underway is therefore still protected; its durable
        segment cannot be tombstoned mid-lease.  (Rank order permits
        this: the store's locks rank below the registry lock, so the
        callback's registry acquisition is a legal nesting.)

        Called automatically after each durable registration when a
        retention policy is set; safe to call explicitly (the CLI's
        ``repro store gc`` goes through the store directly).
        """
        if self.store is None or self.retention is None:
            return None

        def in_use() -> Set[str]:
            with self._lock:
                return set(self._leased) | set(self._sessions)

        report = self.store.gc(self.retention, in_use=in_use)
        if report.get("tombstoned"):
            self.store.checkpoint()
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SessionPool: {self.num_snapshots} snapshots, "
            f"{self.num_cached_sessions}/{self.max_sessions} sessions>"
        )
