"""Thread-safe snapshot registry and :class:`QuerySession` pool.

:class:`~repro.queries.engine.QuerySession` is deliberately not
thread-safe -- it memoizes PSR state behind plain dict lookups.  The
pool makes sessions safe to serve concurrently by construction:

* **Snapshots** are immutable ranked databases registered under their
  content hash (:meth:`repro.db.database.ProbabilisticDatabase.\
content_hash`), so registration is idempotent and a snapshot id names
  one logical database forever.
* **Sessions** are memoized per snapshot in an LRU map bounded by
  ``max_sessions``; the *n*-th distinct hot snapshot evicts the least
  recently leased one (its caches are rebuilt on next lease -- never
  wrong, only cold).
* **Leases** hand out a session under that snapshot's private lock
  (:meth:`SessionPool.lease` is a context manager), so at most one
  thread touches a given session at a time while different snapshots
  proceed in parallel.  Registry bookkeeping itself is guarded by one
  short-held pool lock; no lock is ever held across kernel work of a
  *different* snapshot.

The pool is the concurrency substrate of
:class:`~repro.api.service.TopKService`; nothing in it knows about
specs or results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

from repro.db.database import ProbabilisticDatabase, RankedDatabase
from repro.db.ranking import RankingFunction, rankings_equivalent
from repro.exceptions import UnknownSnapshotError
from repro.queries.engine import QuerySession

#: Default bound on concurrently cached sessions.
DEFAULT_MAX_SESSIONS = 8

#: Snapshot-id prefix (purely cosmetic; the suffix is the content hash).
SNAPSHOT_PREFIX = "snap-"

#: Hex digits of the content hash kept in the public snapshot id.
SNAPSHOT_ID_HEX = 16


def snapshot_id_of(db: ProbabilisticDatabase) -> str:
    """The content-derived snapshot id a database registers under."""
    return SNAPSHOT_PREFIX + db.content_hash()[:SNAPSHOT_ID_HEX]


class SessionPool:
    """Concurrent registry of snapshots and their cached query sessions.

    Parameters
    ----------
    max_sessions:
        Upper bound on memoized sessions (LRU-evicted beyond it).  The
        snapshot registry itself is unbounded -- snapshots are the
        data; sessions are the (re-creatable) caches.
    ranking:
        Ranking function applied when a raw database is registered;
        defaults to by-value.
    backend:
        Kernel selection threaded into every pooled session.
    workers:
        Parallel-backend pool size threaded into every pooled session
        (``None`` defers to the environment; serial backends ignore
        it).
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        ranking: Optional[RankingFunction] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.max_sessions = max_sessions
        self.ranking = ranking
        self.backend = backend
        self.workers = workers
        self._lock = threading.Lock()
        self._snapshots: Dict[str, RankedDatabase] = {}
        self._snapshot_locks: Dict[str, threading.Lock] = {}
        self._sessions: "OrderedDict[str, QuerySession]" = OrderedDict()
        #: Lease-level cache telemetry (guarded by the pool lock).
        self.session_hits = 0
        self.session_misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Snapshot registry
    # ------------------------------------------------------------------
    def register(
        self,
        db: Union[ProbabilisticDatabase, RankedDatabase],
        session: Optional[QuerySession] = None,
    ) -> str:
        """Register an immutable snapshot; returns its content-hash id.

        Idempotent: registering equal content returns the same id and
        keeps the existing ranked view (and any warm session).  An
        already-ranked view is adopted as-is; a raw database is ranked
        under the pool's ranking.  Snapshot ids hash *content* only, so
        re-registering equal content under a ranking that is not
        demonstrably equivalent to the stored view's (see
        :func:`repro.db.ranking.rankings_equivalent`) raises
        ``ValueError`` -- silently answering under the first-registered
        ranking would return wrong query results.  ``session``
        optionally seeds the session cache with an already-warm session
        over the snapshot -- the cleaning path uses this so a
        delta-derived session (one whose PSR cache was patched, not
        rebuilt) serves the outcome snapshot's future requests.
        """
        ranked = db if isinstance(db, RankedDatabase) else None
        raw = ranked.db if ranked is not None else db
        assert isinstance(raw, ProbabilisticDatabase)
        snapshot_id = snapshot_id_of(raw)
        incoming = ranked.ranking if ranked is not None else self.ranking
        with self._lock:
            stored = self._snapshots.get(snapshot_id)
            if stored is None:
                if ranked is None:
                    ranked = raw.ranked(self.ranking)
                self._snapshots[snapshot_id] = ranked
                self._snapshot_locks[snapshot_id] = threading.Lock()
            elif not rankings_equivalent(stored.ranking, incoming):
                raise ValueError(
                    f"snapshot {snapshot_id!r} is already registered under "
                    f"ranking {stored.ranking!r}; re-registering equal "
                    f"content under {incoming!r} would silently answer "
                    f"queries with the wrong ordering"
                )
            if session is not None and snapshot_id not in self._sessions:
                self._store_session(snapshot_id, session)
        return snapshot_id

    def ranked(self, snapshot_id: str) -> RankedDatabase:
        """The registered ranked view for a snapshot id."""
        with self._lock:
            try:
                return self._snapshots[snapshot_id]
            except KeyError:
                raise UnknownSnapshotError(
                    f"unknown snapshot id {snapshot_id!r}"
                ) from None

    def database(self, snapshot_id: str) -> ProbabilisticDatabase:
        """The registered database for a snapshot id."""
        return self.ranked(snapshot_id).db

    def __contains__(self, snapshot_id: str) -> bool:
        with self._lock:
            return snapshot_id in self._snapshots

    @property
    def num_snapshots(self) -> int:
        """Number of registered snapshots."""
        with self._lock:
            return len(self._snapshots)

    @property
    def num_cached_sessions(self) -> int:
        """Number of memoized sessions (always ``<= max_sessions``)."""
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # Session leasing
    # ------------------------------------------------------------------
    def _store_session(self, snapshot_id: str, session: QuerySession) -> None:
        """Insert/refresh an LRU entry; caller holds the pool lock."""
        self._sessions[snapshot_id] = session
        self._sessions.move_to_end(snapshot_id)
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self.evictions += 1

    @contextmanager
    def lease(self, snapshot_id: str) -> Iterator[QuerySession]:
        """Exclusive access to the snapshot's memoized session.

        Acquires the snapshot's private lock for the duration of the
        ``with`` block, creating (or re-creating, after eviction) the
        session on a cache miss.  Concurrent leases of *different*
        snapshots run in parallel; leases of the same snapshot
        serialize, which is exactly the guarantee
        :class:`~repro.queries.engine.QuerySession` needs.
        """
        with self._lock:
            try:
                ranked = self._snapshots[snapshot_id]
                snapshot_lock = self._snapshot_locks[snapshot_id]
            except KeyError:
                raise UnknownSnapshotError(
                    f"unknown snapshot id {snapshot_id!r}"
                ) from None
        with snapshot_lock:
            with self._lock:
                session = self._sessions.get(snapshot_id)
                if session is not None:
                    self._sessions.move_to_end(snapshot_id)
                    self.session_hits += 1
                else:
                    self.session_misses += 1
            if session is None:
                # Built outside the pool lock: construction ranks
                # nothing (the view exists) but must not block other
                # snapshots' bookkeeping.
                session = QuerySession(
                    ranked, backend=self.backend, workers=self.workers
                )
                with self._lock:
                    self._store_session(snapshot_id, session)
            yield session

    def clear_sessions(self) -> None:
        """Drop every memoized session (snapshots stay registered)."""
        with self._lock:
            self._sessions.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SessionPool: {self.num_snapshots} snapshots, "
            f"{self.num_cached_sessions}/{self.max_sessions} sessions>"
        )
