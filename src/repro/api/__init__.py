"""Service façade: declarative requests over pooled, immutable snapshots.

This package is the canonical *serving* surface of the library -- the
stable API a server, shard router or async layer builds on:

* :mod:`repro.api.specs` -- frozen request dataclasses
  (:class:`QuerySpec`, :class:`QualitySpec`, :class:`CleaningSpec`,
  :class:`BatchSpec`), JSON round-trippable via ``to_dict`` /
  ``from_dict`` / :func:`spec_from_dict`;
* :mod:`repro.api.results` -- the uniform :class:`ServiceResult`
  response envelope (payload + snapshot id + timing/cache counters);
* :mod:`repro.api.pool` -- :class:`SessionPool`, the thread-safe
  registry of content-hash-identified snapshots with per-snapshot
  session leases and LRU-bounded memoization;
* :mod:`repro.api.service` -- :class:`TopKService`, the façade tying
  them together (batch execution shares one max-k PSR pass; cleaning
  registers outcomes as new snapshots through the delta engine).

The layers underneath (:mod:`repro.db`, :mod:`repro.queries`,
:mod:`repro.core`, :mod:`repro.cleaning`) stay importable for direct
library use; this package adds no algorithmic behaviour, only the
concurrent, wire-ready surface.
"""

from repro.api.pool import SessionPool, snapshot_id_of
from repro.api.results import ServiceResult
from repro.api.service import TopKService
from repro.api.specs import (
    BatchSpec,
    CleaningSpec,
    QualitySpec,
    QuerySpec,
    spec_from_dict,
)

__all__ = [
    "TopKService",
    "SessionPool",
    "ServiceResult",
    "QuerySpec",
    "QualitySpec",
    "CleaningSpec",
    "BatchSpec",
    "spec_from_dict",
    "snapshot_id_of",
]
