"""Simulated MOV dataset (paper Section VI, "Real Datasets").

The paper's MOV dataset is the Trio project's probabilistic
movie-rating database [4]: Netflix ratings with synthetic uncertainty.
The original download is no longer distributable, so this module
generates a statistical stand-in that matches every property the
paper's experiments depend on:

* 4999 x-tuples, each keyed by a ``(movie-id, viewer-id)`` pair;
* on average 2 alternative tuples per x-tuple (versus 10 in the
  synthetic data -- the source of MOV's higher quality scores in
  Figure 4(c) and its smaller nonzero-top-k set in Figure 5(d));
* per-tuple attributes ``date`` (2000-01-01 .. 2005-12-31) and
  ``rating`` (1..5), both normalized into ``[0, 1]``; the ranking
  function scores ``date + rating``;
* a ``confidence`` per alternative; confidences inside an x-tuple sum
  to one (a configurable fraction of x-tuples may sum to less, to
  exercise null handling).

The quality and cleaning algorithms only ever see
``(score, probability, x-tuple id)``, so matching these marginals
preserves the exercised code paths and the qualitative behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.db.database import ProbabilisticDatabase
from repro.db.ranking import RankingFunction, by_sum_of_keys
from repro.db.tuples import ProbabilisticTuple, XTuple

#: Distribution of alternatives per x-tuple; mean = 2.0 as reported.
_ALTERNATIVE_COUNTS = (1, 2, 3)
_ALTERNATIVE_WEIGHTS = (0.25, 0.50, 0.25)


@dataclass(frozen=True)
class MovConfig:
    """Knobs of the MOV simulator (defaults match the paper's figures)."""

    num_xtuples: int = 4999
    num_movies: int = 1200
    num_viewers: int = 2500
    #: Fraction of x-tuples whose confidences sum to < 1 (exercises the
    #: implicit null outcome; the paper's copy appears complete).
    incomplete_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_xtuples < 1:
            raise ValueError("num_xtuples must be positive")
        if not 0.0 <= self.incomplete_fraction <= 1.0:
            raise ValueError("incomplete_fraction must lie in [0, 1]")


def mov_ranking() -> RankingFunction:
    """The paper's MOV ranking: higher ``date + rating`` ranks higher."""
    return by_sum_of_keys("date", "rating")


def _alternative_values(
    rng: random.Random,
) -> Tuple[float, int]:
    """A base (normalized date, raw rating) pair for one entity."""
    return rng.random(), rng.randint(1, 5)


def generate_mov(
    config: Optional[MovConfig] = None, **overrides
) -> ProbabilisticDatabase:
    """Generate the simulated MOV database.

    Accepts a :class:`MovConfig` or keyword overrides of its fields.
    """
    if config is None:
        config = MovConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides")
    rng = random.Random(config.seed)

    xtuples = []
    seen_keys = set()
    for idx in range(config.num_xtuples):
        movie = rng.randrange(config.num_movies)
        viewer = rng.randrange(config.num_viewers)
        key = (movie, viewer)
        while key in seen_keys:
            movie = rng.randrange(config.num_movies)
            viewer = rng.randrange(config.num_viewers)
            key = (movie, viewer)
        seen_keys.add(key)
        xid = f"M{movie:04d}.V{viewer:04d}"

        count = rng.choices(_ALTERNATIVE_COUNTS, weights=_ALTERNATIVE_WEIGHTS)[0]
        base_date, base_rating = _alternative_values(rng)

        # Confidences: uniform simplex draw, optionally leaving null mass.
        raw = [rng.random() + 1e-6 for _ in range(count)]
        total = sum(raw)
        scale = 1.0
        if rng.random() < config.incomplete_fraction:
            scale = rng.uniform(0.5, 0.95)
        confidences = [scale * w / total for w in raw]

        members = []
        for alt in range(count):
            # Alternatives disagree slightly on when/what was rated.
            date = min(1.0, max(0.0, base_date + rng.uniform(-0.08, 0.08)))
            rating = min(5, max(1, base_rating + rng.choice((-1, 0, 0, 1))))
            members.append(
                ProbabilisticTuple(
                    tid=f"{xid}.a{alt}",
                    xtuple_id=xid,
                    value={
                        "date": date,
                        "rating": (rating - 1) / 4.0,
                        "movie_id": movie,
                        "viewer_id": viewer,
                    },
                    probability=confidences[alt],
                )
            )
        xtuples.append(XTuple(xid=xid, alternatives=tuple(members)))
    return ProbabilisticDatabase(
        xtuples, name=f"mov(m={config.num_xtuples})"
    )
