"""The paper's running-example databases (Tables I and II).

``udb1`` is the four-sensor temperature database of Table I; ``udb2``
is the same database after sensor ``S3`` has been cleaned successfully
(Table II).  The paper reports, for a top-2 query ranking higher
temperatures higher:

* ``udb1`` has seven pw-results and PWS-quality ``-2.55`` (Figure 2);
* ``udb2`` has four pw-results and PWS-quality ``-1.85`` (Figure 3);
* the PT-2 answer on ``udb1`` with threshold 0.4 is ``{t1, t2, t5}``;
* possible world ``{t0, t3, t4, t6}`` has probability 0.072;
* pw-result ``(t1, t2)`` has probability 0.28.

All of these are asserted in the test suite, making the two toy
databases the library's primary exact regression vectors.
"""

from __future__ import annotations

from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple


def udb1() -> ProbabilisticDatabase:
    """Table I: four sensors, seven tuples, temperatures in Celsius."""
    return ProbabilisticDatabase(
        [
            make_xtuple("S1", [("t0", 21.0, 0.6), ("t1", 32.0, 0.4)]),
            make_xtuple("S2", [("t2", 30.0, 0.7), ("t3", 22.0, 0.3)]),
            make_xtuple("S3", [("t4", 25.0, 0.4), ("t5", 27.0, 0.6)]),
            make_xtuple("S4", [("t6", 26.0, 1.0)]),
        ],
        name="udb1",
    )


def udb2() -> ProbabilisticDatabase:
    """Table II: ``udb1`` after a successful ``pclean(S3)`` revealed t5."""
    return ProbabilisticDatabase(
        [
            make_xtuple("S1", [("t0", 21.0, 0.6), ("t1", 32.0, 0.4)]),
            make_xtuple("S2", [("t2", 30.0, 0.7), ("t3", 22.0, 0.3)]),
            make_xtuple("S3", [("t5", 27.0, 1.0)]),
            make_xtuple("S4", [("t6", 26.0, 1.0)]),
        ],
        name="udb2",
    )


#: The quality scores the paper reports for a top-2 query (computed to
#: full precision here; the paper rounds to two decimals).
UDB1_TOP2_QUALITY = -2.551325921692723
UDB2_TOP2_QUALITY = -1.8522414936853613
