"""Workloads: the paper's toy example, synthetic generator, and MOV.

* :mod:`repro.datasets.paper` -- Tables I/II (udb1, udb2), the exact
  regression vectors;
* :mod:`repro.datasets.synthetic` -- the Section VI generator plus the
  cleaning-experiment knobs (costs, sc-pdfs);
* :mod:`repro.datasets.mov` -- the simulated Netflix movie-rating
  database (see DESIGN.md for the substitution rationale).
"""

from repro.datasets.mov import MovConfig, generate_mov, mov_ranking
from repro.datasets.paper import (
    UDB1_TOP2_QUALITY,
    UDB2_TOP2_QUALITY,
    udb1,
    udb2,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)

__all__ = [
    "udb1",
    "udb2",
    "UDB1_TOP2_QUALITY",
    "UDB2_TOP2_QUALITY",
    "SyntheticConfig",
    "generate_synthetic",
    "generate_costs",
    "generate_sc_probabilities",
    "MovConfig",
    "generate_mov",
    "mov_ranking",
]
