"""Synthetic workload generator (paper Section VI).

The paper's default synthetic dataset: 5K x-tuples with a 1-D attribute
``y`` over the domain ``[0, 10000]``.  Each x-tuple has an *uncertainty
interval* ``y.L`` of width uniform in ``[60, 100]`` centered at a mean
``μ`` uniform over the domain, and an *uncertainty pdf* ``y.U`` --
Gaussian ``N(μ, σ²)`` with ``σ = 100`` by default, or uniform.  The pdf
is discretized into 10 equal-width histogram bars over the interval:
bar masses (normalized to sum to one) become existential probabilities,
bar midpoints become tuple values.  The result: 5K x-tuples × 10 tuples
= 50K tuples whose ranking is by value, larger first.

Also provides the experiment knobs of Section VI's cleaning setup:
integer probing costs uniform in ``[1, 10]`` and sc-probabilities drawn
from a configurable *sc-pdf* (uniform ``[0,1]`` by default; truncated
normals with mean 0.5 and σ ∈ {0.13, 0.167, 0.3}; uniform ``[x, 1]``
for the average-sc sweep).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import ProbabilisticTuple, XTuple

#: Bar masses below this are dropped (they would violate the e > 0
#: invariant); the remaining masses are renormalized.
MASS_FLOOR = 1e-12


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the Section VI generator (defaults = the paper's)."""

    num_xtuples: int = 5000
    bars_per_xtuple: int = 10
    domain: Tuple[float, float] = (0.0, 10000.0)
    interval_width: Tuple[float, float] = (60.0, 100.0)
    #: Gaussian standard deviation of the uncertainty pdf; the paper's
    #: GX datasets use X ∈ {10, 30, 50, 100}.  Ignored when
    #: ``uncertainty="uniform"``.
    sigma: float = 100.0
    #: ``"gaussian"`` or ``"uniform"``.
    uncertainty: str = "gaussian"
    #: Probability that an x-tuple produces a real reading at all; bar
    #: masses are normalized to this total, so values < 1 leave genuine
    #: null mass (a sensor that may miss its reading).  Incomplete
    #: databases never trigger Lemma 2's early stop, which makes them
    #: the honest workload for full-scan PSR benchmarks.
    completion: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_xtuples < 1:
            raise ValueError("num_xtuples must be positive")
        if self.bars_per_xtuple < 1:
            raise ValueError("bars_per_xtuple must be positive")
        if self.uncertainty not in ("gaussian", "uniform"):
            raise ValueError(
                f"uncertainty must be 'gaussian' or 'uniform', "
                f"got {self.uncertainty!r}"
            )
        if self.uncertainty == "gaussian" and self.sigma <= 0.0:
            raise ValueError("sigma must be positive for gaussian uncertainty")
        if not 0.0 < self.completion <= 1.0:
            raise ValueError("completion must lie in (0, 1]")


def _gaussian_cdf(x: float, mu: float, sigma: float) -> float:
    return 0.5 * (1.0 + math.erf((x - mu) / (sigma * math.sqrt(2.0))))


def _bar_masses(
    config: SyntheticConfig, mu: float, low: float, high: float
) -> Tuple[Tuple[float, float], ...]:
    """``(midpoint, normalized mass)`` per histogram bar."""
    bars = config.bars_per_xtuple
    width = (high - low) / bars
    raw = []
    for b in range(bars):
        left = low + b * width
        right = left + width
        if config.uncertainty == "uniform":
            mass = 1.0 / bars
        else:
            mass = _gaussian_cdf(right, mu, config.sigma) - _gaussian_cdf(
                left, mu, config.sigma
            )
        raw.append(((left + right) / 2.0, max(0.0, mass)))
    total = math.fsum(mass for _, mass in raw)
    if total <= 0.0:
        # Degenerate σ (all mass outside float resolution): fall back
        # to a point mass on the bar containing μ.
        closest = min(raw, key=lambda bar: abs(bar[0] - mu))
        return ((closest[0], config.completion),)
    kept = [
        (mid, mass / total) for mid, mass in raw if mass / total > MASS_FLOOR
    ]
    renorm = math.fsum(mass for _, mass in kept) / config.completion
    return tuple((mid, mass / renorm) for mid, mass in kept)


def generate_synthetic(
    config: Optional[SyntheticConfig] = None, **overrides
) -> ProbabilisticDatabase:
    """Generate a Section VI synthetic database.

    Accepts either a prebuilt :class:`SyntheticConfig` or keyword
    overrides of its fields, e.g.
    ``generate_synthetic(num_xtuples=100, sigma=30.0, seed=7)``.
    """
    if config is None:
        config = SyntheticConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides")
    rng = random.Random(config.seed)
    lo, hi = config.domain
    xtuples = []
    digits = len(str(config.num_xtuples - 1))
    for idx in range(config.num_xtuples):
        mu = rng.uniform(lo, hi)
        width = rng.uniform(*config.interval_width)
        low, high = mu - width / 2.0, mu + width / 2.0
        xid = f"X{idx:0{digits}d}"
        members = tuple(
            ProbabilisticTuple(
                tid=f"{xid}.b{b}",
                xtuple_id=xid,
                value=mid,
                probability=mass,
            )
            for b, (mid, mass) in enumerate(_bar_masses(config, mu, low, high))
        )
        xtuples.append(XTuple(xid=xid, alternatives=members))
    label = (
        f"synthetic(m={config.num_xtuples}, "
        f"{config.uncertainty}"
        + (f", sigma={config.sigma:g}" if config.uncertainty == "gaussian" else "")
        + (f", completion={config.completion:g}" if config.completion < 1.0 else "")
        + ")"
    )
    return ProbabilisticDatabase(xtuples, name=label)


# ----------------------------------------------------------------------
# Cleaning-experiment knobs (Section VI, "Cleaning Problem")
# ----------------------------------------------------------------------
def generate_costs(
    db: ProbabilisticDatabase,
    low: int = 1,
    high: int = 10,
    seed: int = 0,
) -> Dict[str, int]:
    """Integer probing costs, uniform in ``[low, high]`` (paper default
    ``[1, 10]``), keyed by x-tuple id."""
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")
    rng = random.Random(seed)
    return {xt.xid: rng.randint(low, high) for xt in db.xtuples}


def generate_sc_probabilities(
    db: ProbabilisticDatabase,
    distribution: str = "uniform",
    seed: int = 0,
    low: float = 0.0,
    high: float = 1.0,
    mean: float = 0.5,
    sigma: float = 0.167,
) -> Dict[str, float]:
    """sc-probabilities from a configurable sc-pdf, keyed by x-tuple id.

    Parameters
    ----------
    distribution:
        ``"uniform"`` draws from ``U[low, high]`` (paper default
        ``[0, 1]``; the average-sc sweep of Figure 6(c) uses
        ``[x, 1]``).  ``"normal"`` draws from ``N(mean, sigma²)``
        clipped to ``[0, 1]`` (Figure 6(b) uses mean 0.5 and
        σ ∈ {0.13, 0.167, 0.3}).
    """
    rng = random.Random(seed)
    if distribution == "uniform":
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError("need 0 <= low <= high <= 1")
        return {xt.xid: rng.uniform(low, high) for xt in db.xtuples}
    if distribution == "normal":
        if sigma <= 0.0:
            raise ValueError("sigma must be positive")
        return {
            xt.xid: min(1.0, max(0.0, rng.gauss(mean, sigma)))
            for xt in db.xtuples
        }
    raise ValueError(
        f"distribution must be 'uniform' or 'normal', got {distribution!r}"
    )
