"""repro: reproduction of "Cleaning Uncertain Data for Top-k Queries"
(Mo, Cheng, Li, Cheung, Yang -- ICDE 2013).

The library has four layers:

* :mod:`repro.db` -- the x-tuple probabilistic database model, ranking,
  possible-world semantics, serialization;
* :mod:`repro.queries` -- probabilistic top-k semantics (U-kRanks,
  PT-k, Global-topk, plus U-Topk) on top of the PSR rank-probability
  dynamic program, with one-pass shared evaluation;
* :mod:`repro.core` -- PWS-quality computation: the naive PW baseline,
  the pw-result-enumerating PWR (Algorithm 1), the O(kn) TP algorithm
  (Theorem 1), and a Monte-Carlo estimator;
* :mod:`repro.cleaning` -- budgeted cleaning (Section V): the optimal
  DP planner, the Greedy / RandP / RandU heuristics, plan execution,
  and the inverse/adaptive extensions.

Quickstart
----------
>>> from repro import datasets, evaluate, build_cleaning_problem, GreedyCleaner
>>> db = datasets.udb1()
>>> report = evaluate(db, k=2, threshold=0.4)
>>> report.ptk.tids
['t1', 't2', 't5']
>>> round(report.quality_score, 2)
-2.55
"""

from repro import cleaning, core, datasets, db, queries
from repro.cleaning import (
    CleaningPlan,
    CleaningProblem,
    DPCleaner,
    GreedyCleaner,
    RandPCleaner,
    RandUCleaner,
    build_cleaning_problem,
    clean_adaptively,
    execute_plan,
    expected_improvement,
    min_cost_plan,
)
from repro.core import (
    compute_quality,
    compute_quality_detailed,
    compute_quality_pw,
    compute_quality_pwr,
    compute_quality_tp,
    current_backend,
    set_backend,
    use_backend,
)
from repro.db import (
    ProbabilisticDatabase,
    ProbabilisticTuple,
    RankedDatabase,
    RankingFunction,
    XTuple,
    by_value,
    make_xtuple,
)
from repro.exceptions import (
    InfeasibleTargetError,
    InvalidCleaningProblemError,
    InvalidDatabaseError,
    InvalidQueryError,
    ReproError,
)
from repro.queries import (
    EvaluationReport,
    QuerySession,
    compute_rank_probabilities,
    evaluate,
    evaluate_without_sharing,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # submodules
    "db",
    "queries",
    "core",
    "cleaning",
    "datasets",
    # database model
    "ProbabilisticDatabase",
    "RankedDatabase",
    "ProbabilisticTuple",
    "XTuple",
    "make_xtuple",
    "RankingFunction",
    "by_value",
    # queries
    "evaluate",
    "evaluate_without_sharing",
    "EvaluationReport",
    "QuerySession",
    "compute_rank_probabilities",
    # backends
    "current_backend",
    "set_backend",
    "use_backend",
    # quality
    "compute_quality",
    "compute_quality_detailed",
    "compute_quality_tp",
    "compute_quality_pwr",
    "compute_quality_pw",
    # cleaning
    "CleaningProblem",
    "CleaningPlan",
    "build_cleaning_problem",
    "DPCleaner",
    "GreedyCleaner",
    "RandPCleaner",
    "RandUCleaner",
    "expected_improvement",
    "execute_plan",
    "min_cost_plan",
    "clean_adaptively",
    # exceptions
    "ReproError",
    "InvalidDatabaseError",
    "InvalidQueryError",
    "InvalidCleaningProblemError",
    "InfeasibleTargetError",
]
