"""repro: reproduction of "Cleaning Uncertain Data for Top-k Queries"
(Mo, Cheng, Li, Cheung, Yang -- ICDE 2013).

The library has six layers:

* :mod:`repro.db` -- the x-tuple probabilistic database model, ranking,
  possible-world semantics, serialization;
* :mod:`repro.queries` -- probabilistic top-k semantics (U-kRanks,
  PT-k, Global-topk, plus U-Topk) on top of the PSR rank-probability
  dynamic program, with one-pass shared evaluation;
* :mod:`repro.core` -- PWS-quality computation: the naive PW baseline,
  the pw-result-enumerating PWR (Algorithm 1), the O(kn) TP algorithm
  (Theorem 1), and a Monte-Carlo estimator;
* :mod:`repro.cleaning` -- budgeted cleaning (Section V): the optimal
  DP planner, the Greedy / RandP / RandU heuristics, plan execution,
  and the inverse/adaptive extensions;
* :mod:`repro.api` -- the serving façade: declarative request specs
  over a thread-safe :class:`SessionPool` of content-hash-identified
  snapshots, with batch execution sharing one PSR pass and cleaning
  outcomes registered as new snapshots;
* :mod:`repro.store` -- crash-safe durability under the façade:
  checksummed atomic snapshot segments, a write-ahead journal of
  cleaning outcomes replayed on startup, and quarantine of anything
  that fails verification.

Quickstart
----------
>>> from repro import TopKService, QuerySpec, CleaningSpec, datasets
>>> service = TopKService()
>>> sid = service.register(datasets.udb1()).snapshot_id
>>> report = service.query(sid, QuerySpec(k=2, threshold=0.4))
>>> [tid for tid, _ in report.payload["ptk"]["members"]]
['t1', 't2', 't5']
>>> round(report.payload["quality"], 2)
-2.55
"""

import warnings
from typing import Any, Set

from repro import api, cleaning, core, datasets, db, queries
from repro.api import (
    BatchSpec,
    CleaningSpec,
    QualitySpec,
    QuerySpec,
    ServiceResult,
    SessionPool,
    TopKService,
    snapshot_id_of,
    spec_from_dict,
)
from repro.cleaning import (
    CleaningPlan,
    CleaningProblem,
    DPCleaner,
    GreedyCleaner,
    RandPCleaner,
    RandUCleaner,
    build_cleaning_problem,
    clean_adaptively,
    execute_plan,
    expected_improvement,
    min_cost_plan,
)
from repro.core import (
    compute_quality,
    compute_quality_detailed,
    compute_quality_pw,
    compute_quality_pwr,
    compute_quality_tp,
    current_backend,
    set_backend,
    set_workers,
    use_backend,
    use_workers,
)
from repro.db import (
    ProbabilisticDatabase,
    ProbabilisticTuple,
    RankedDatabase,
    RankingFunction,
    XTuple,
    by_value,
    make_xtuple,
)
from repro.exceptions import (
    CorruptSnapshotError,
    InfeasibleTargetError,
    InvalidCleaningProblemError,
    InvalidDataError,
    InvalidDatabaseError,
    InvalidQueryError,
    InvalidSpecError,
    JournalReplayError,
    ReproError,
    StoreError,
    StoreWriteError,
    UnknownSnapshotError,
    UnknownXTupleError,
)
from repro.queries import (
    EvaluationReport,
    QuerySession,
    compute_rank_probabilities,
)
from repro.store import RecoveryReport, SnapshotStore

__version__ = "1.3.0"

#: Legacy top-level entry points superseded by the :mod:`repro.api`
#: façade.  They remain importable here through a module
#: ``__getattr__`` shim that emits a :class:`DeprecationWarning` once
#: per name; their canonical homes (``repro.queries.engine``) stay
#: warning-free for direct library use.
_DEPRECATED_ENTRY_POINTS = {
    "evaluate": (
        "repro.queries.engine",
        "use repro.TopKService / repro.QuerySession (or import it from "
        "repro.queries) instead",
    ),
    "evaluate_without_sharing": (
        "repro.queries.engine",
        "use repro.TopKService / repro.QuerySession (or import it from "
        "repro.queries) instead",
    ),
}

_warned_entry_points: Set[str] = set()


def __getattr__(name: str) -> Any:
    """Deprecation shim for legacy top-level entry points.

    Serves the names in :data:`_DEPRECATED_ENTRY_POINTS` from their
    canonical modules, emitting one :class:`DeprecationWarning` per
    name per process.
    """
    target = _DEPRECATED_ENTRY_POINTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, advice = target
    if name not in _warned_entry_points:
        _warned_entry_points.add(name)
        warnings.warn(
            f"repro.{name} is deprecated; {advice}",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "__version__",
    # submodules
    "db",
    "queries",
    "core",
    "cleaning",
    "datasets",
    "api",
    # service façade (canonical entry points)
    "TopKService",
    "SessionPool",
    "ServiceResult",
    "QuerySpec",
    "QualitySpec",
    "CleaningSpec",
    "BatchSpec",
    "spec_from_dict",
    "snapshot_id_of",
    # durability
    "SnapshotStore",
    "RecoveryReport",
    # database model
    "ProbabilisticDatabase",
    "RankedDatabase",
    "ProbabilisticTuple",
    "XTuple",
    "make_xtuple",
    "RankingFunction",
    "by_value",
    # queries
    "evaluate",  # deprecated shim
    "evaluate_without_sharing",  # deprecated shim
    "EvaluationReport",
    "QuerySession",
    "compute_rank_probabilities",
    # backends
    "current_backend",
    "set_backend",
    "use_backend",
    # quality
    "compute_quality",
    "compute_quality_detailed",
    "compute_quality_tp",
    "compute_quality_pwr",
    "compute_quality_pw",
    # cleaning
    "CleaningProblem",
    "CleaningPlan",
    "build_cleaning_problem",
    "DPCleaner",
    "GreedyCleaner",
    "RandPCleaner",
    "RandUCleaner",
    "expected_improvement",
    "execute_plan",
    "min_cost_plan",
    "clean_adaptively",
    # exceptions
    "ReproError",
    "InvalidDatabaseError",
    "InvalidDataError",
    "InvalidQueryError",
    "InvalidCleaningProblemError",
    "InvalidSpecError",
    "UnknownXTupleError",
    "UnknownSnapshotError",
    "InfeasibleTargetError",
    "StoreError",
    "StoreWriteError",
    "CorruptSnapshotError",
    "JournalReplayError",
]
