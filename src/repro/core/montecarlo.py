"""Monte-Carlo quality estimation (library extension).

Samples possible worlds, evaluates the deterministic top-k in each, and
estimates the PWS-quality as the negated plug-in entropy of the
empirical pw-result distribution.  Useful as an anytime sanity check on
databases too large for PW/PWR yet violating TP's full-length-result
assumption, and as an independent cross-check in the test suite.

The plug-in entropy estimator is biased low by roughly
``(#distinct - 1) / (2·N·ln 2)`` bits; the Miller-Madow correction
(enabled by default) adds that term back.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.db.database import RankedDatabase
from repro.db.possible_worlds import sample_world
from repro.queries.deterministic import PWResult, require_valid_k, topk_of_world


@dataclass(frozen=True)
class MonteCarloQualityResult:
    """Estimate of the PWS-quality from sampled worlds.

    ``std_error`` is the delta-method standard error of the entropy
    estimate: ``sqrt(Var[log2 p̂(r)] / N)`` under the empirical
    distribution.
    """

    quality: float
    num_samples: int
    num_distinct_results: int
    std_error: float
    distribution: Dict[PWResult, float]


def compute_quality_montecarlo(
    ranked: RankedDatabase,
    k: int,
    num_samples: int = 10_000,
    rng: Optional[random.Random] = None,
    miller_madow: bool = True,
) -> MonteCarloQualityResult:
    """Estimate the PWS-quality from ``num_samples`` sampled worlds."""
    require_valid_k(k)
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    rng = rng or random.Random(0)
    counts: Dict[PWResult, int] = {}
    for _ in range(num_samples):
        world = sample_world(ranked.db, rng)
        result = topk_of_world(ranked, world, k)
        counts[result] = counts.get(result, 0) + 1

    empirical = {r: c / num_samples for r, c in counts.items()}
    entropy_terms = [
        p * math.log2(p) for p in empirical.values() if p > 0.0
    ]
    plugin_quality = math.fsum(entropy_terms)
    if miller_madow:
        plugin_quality -= (len(counts) - 1) / (2.0 * num_samples * math.log(2))

    # Delta-method variance of the entropy estimate.
    mean_log = math.fsum(
        p * math.log2(p) for p in empirical.values() if p > 0.0
    )
    second_moment = math.fsum(
        p * math.log2(p) ** 2 for p in empirical.values() if p > 0.0
    )
    variance = max(0.0, second_moment - mean_log**2)
    std_error = math.sqrt(variance / num_samples)

    return MonteCarloQualityResult(
        quality=plugin_quality,
        num_samples=num_samples,
        num_distinct_results=len(counts),
        std_error=std_error,
        distribution=empirical,
    )
