"""Tuple weights ``ω_i`` for the TP algorithm (Theorem 1, Eq. 6-9).

Theorem 1 rewrites the PWS-quality as a weighted sum of top-k
probabilities, ``S(D,Q) = Σ_i ω_i·p_i``, where the weight

    ω_i = log2 e_i + (Y(1 - E_i) - Y(1 - E_i + e_i)) / e_i

depends only on existential probabilities *inside* ``t_i``'s own
x-tuple: ``E_i`` is the mass of siblings ranked at least as high as
``t_i`` (including ``t_i`` itself), and ``Y(x) = x·log2 x``.

Because tuples are pre-sorted, ``E_i`` is maintained incrementally with
one running sum per x-tuple (Eq. 9), giving all weights in ``O(n)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.entropy import xlog2x
from repro.db.database import RankedDatabase


def weight_of(existential: float, mass_at_least: float) -> float:
    """``ω`` for one tuple from its own probability and sibling mass.

    Parameters
    ----------
    existential:
        ``e_i`` -- the tuple's existential probability (> 0).
    mass_at_least:
        ``E_i = Σ_{siblings ranked >= t_i} e`` *including* ``e_i``.
    """
    one_minus_e = 1.0 - mass_at_least
    if one_minus_e < 0.0:  # round-off when the x-tuple sums to one
        one_minus_e = 0.0
    one_minus_higher = one_minus_e + existential
    if one_minus_higher > 1.0:
        one_minus_higher = 1.0
    return math.log2(existential) + (
        xlog2x(one_minus_e) - xlog2x(one_minus_higher)
    ) / existential


def compute_weights(
    ranked: RankedDatabase, upto: Optional[int] = None
) -> List[float]:
    """Weights ``ω_i`` for the first ``upto`` ranked tuples.

    ``upto`` defaults to all tuples; the TP algorithm passes the PSR
    cutoff so that weights are only computed for tuples that can have a
    nonzero top-k probability (the optimization Lemma 2 licenses).
    """
    n = ranked.num_tuples if upto is None else min(upto, ranked.num_tuples)
    seen: Dict[int, float] = {}
    weights: List[float] = []
    for i in range(n):
        e_i = ranked.probabilities[i]
        l = ranked.xtuple_indices[i]
        mass_at_least = seen.get(l, 0.0) + e_i
        seen[l] = mass_at_least
        weights.append(weight_of(e_i, mass_at_least))
    return weights
