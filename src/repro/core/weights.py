"""Tuple weights ``ω_i`` for the TP algorithm (Theorem 1, Eq. 6-9).

Theorem 1 rewrites the PWS-quality as a weighted sum of top-k
probabilities, ``S(D,Q) = Σ_i ω_i·p_i``, where the weight

    ω_i = log2 e_i + (Y(1 - E_i) - Y(1 - E_i + e_i)) / e_i

depends only on existential probabilities *inside* ``t_i``'s own
x-tuple: ``E_i`` is the mass of siblings ranked at least as high as
``t_i`` (including ``t_i`` itself), and ``Y(x) = x·log2 x``.

Because tuples are pre-sorted, ``E_i`` is maintained incrementally with
one running sum per x-tuple (Eq. 9), giving all weights in ``O(n)``.
The NumPy backend computes the running sums as one segmented cumulative
sum over the columnar arrays (group tuples by x-tuple with a stable
sort -- rank order is preserved within each group -- cumsum, subtract
each group's starting offset) and evaluates the weight formula as
array expressions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.entropy import xlog2x, xlog2x_array
from repro.db.database import RankedDatabase


def weight_of(existential: float, mass_at_least: float) -> float:
    """``ω`` for one tuple from its own probability and sibling mass.

    Parameters
    ----------
    existential:
        ``e_i`` -- the tuple's existential probability (> 0).
    mass_at_least:
        ``E_i = Σ_{siblings ranked >= t_i} e`` *including* ``e_i``.
    """
    one_minus_e = 1.0 - mass_at_least
    if one_minus_e < 0.0:  # round-off when the x-tuple sums to one
        one_minus_e = 0.0
    one_minus_higher = one_minus_e + existential
    if one_minus_higher > 1.0:
        one_minus_higher = 1.0
    return math.log2(existential) + (
        xlog2x(one_minus_e) - xlog2x(one_minus_higher)
    ) / existential


def sibling_mass_at_least(ranked: RankedDatabase, upto: int) -> np.ndarray:
    """``E_i`` for the first ``upto`` ranked tuples, vectorized.

    ``E_i`` is the cumulative existential mass of ``t_i``'s x-tuple
    over members ranked at least as high as ``t_i``, including ``t_i``
    itself -- a segmented cumulative sum over the columnar arrays.
    """
    existential = ranked.probabilities_array[:upto]
    groups = ranked.xtuple_indices_array[:upto]
    order = np.argsort(groups, kind="stable")
    cumulative = np.cumsum(existential[order])
    grouped = groups[order]
    # Subtract each group's cumulative total at its start; group-start
    # offsets are nondecreasing, so a running maximum forward-fills
    # them across each group.
    starts = np.nonzero(np.r_[True, grouped[1:] != grouped[:-1]])[0]
    offsets = np.zeros(upto)
    offsets[starts] = np.r_[0.0, cumulative[starts[1:] - 1]]
    offsets = np.maximum.accumulate(offsets)
    mass = cumulative - offsets
    out = np.empty(upto)
    out[order] = mass
    return out


def _compute_weights_numpy(ranked: RankedDatabase, upto: int) -> np.ndarray:
    existential = ranked.probabilities_array[:upto]
    mass = sibling_mass_at_least(ranked, upto)
    one_minus_e = np.maximum(1.0 - mass, 0.0)
    one_minus_higher = np.minimum(one_minus_e + existential, 1.0)
    return np.log2(existential) + (
        xlog2x_array(one_minus_e) - xlog2x_array(one_minus_higher)
    ) / existential


def _compute_weights_python(ranked: RankedDatabase, upto: int) -> List[float]:
    seen: Dict[int, float] = {}
    weights: List[float] = []
    for i in range(upto):
        e_i = ranked.probabilities[i]
        l = ranked.xtuple_indices[i]
        mass_at_least = seen.get(l, 0.0) + e_i
        seen[l] = mass_at_least
        weights.append(weight_of(e_i, mass_at_least))
    return weights


def compute_weights(
    ranked: RankedDatabase,
    upto: Optional[int] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Weights ``ω_i`` for the first ``upto`` ranked tuples.

    ``upto`` defaults to all tuples; the TP algorithm passes the PSR
    cutoff so that weights are only computed for tuples that can have a
    nonzero top-k probability (the optimization Lemma 2 licenses).
    Returns a float64 array; both backends agree within 1e-9.
    """
    n = ranked.num_tuples if upto is None else min(upto, ranked.num_tuples)
    if resolve_backend(backend) != "python":
        if n == 0:
            return np.zeros(0)
        return _compute_weights_numpy(ranked, n)
    return np.array(_compute_weights_python(ranked, n), dtype=np.float64)
