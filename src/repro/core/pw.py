"""PW: the naive quality algorithm (paper Section III-C, Figure 1(a)).

Expands every possible world (Step 1), evaluates a deterministic top-k
query in each (Step 2), aggregates equal pw-results, and scores the
resulting distribution with Definition 4 (Step A).  Exponential in the
number of x-tuples -- the paper reports 36.2 *minutes* for a 10-x-tuple
database -- so it exists purely as ground truth and as the slowest line
of Figure 4(d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.db.database import RankedDatabase
from repro.queries.brute_force import pw_result_distribution
from repro.core.entropy import quality_of_distribution
from repro.queries.deterministic import PWResult


@dataclass(frozen=True)
class PWQualityResult:
    """Output of the PW algorithm.

    Attributes
    ----------
    quality:
        The PWS-quality score ``S(D, Q)``.
    num_results:
        Number of distinct pw-results.
    distribution:
        The full pw-result distribution (kept because PW only runs on
        tiny inputs anyway, and Figures 2-3 plot it).
    """

    quality: float
    num_results: int
    distribution: Dict[PWResult, float]


def compute_quality_pw(
    ranked: RankedDatabase, k: int, max_worlds: Optional[int] = None
) -> PWQualityResult:
    """Run the naive PW pipeline.

    Parameters
    ----------
    ranked:
        Pre-sorted database.
    k:
        Top-k parameter.
    max_worlds:
        Optional safety valve: raise ``ValueError`` when the database
        has more possible worlds than this, instead of running for
        hours.  ``None`` disables the check.
    """
    if max_worlds is not None:
        worlds = ranked.db.num_possible_worlds()
        if worlds > max_worlds:
            raise ValueError(
                f"database has {worlds} possible worlds, exceeding the "
                f"max_worlds cap of {max_worlds}"
            )
    distribution = pw_result_distribution(ranked, k)
    return PWQualityResult(
        quality=quality_of_distribution(distribution),
        num_results=len(distribution),
        distribution=distribution,
    )
