"""Request-level resilience primitives: deadlines and retry policies.

Two small value types shared by the service façade and the parallel
backend's worker supervision:

* :class:`RetryPolicy` -- how many attempts a supervised operation may
  make, how long to back off between them (capped exponential with
  deterministic jitter), and how long a pooled task may go without
  progress before it is declared hung.  Policies are frozen, validated
  eagerly, and JSON round-trippable so request specs can carry them
  over the wire.
* :class:`Deadline` -- an absolute expiry derived from a request's
  ``deadline_ms``.  Work checks it at admission, after queueing, and at
  every supervision wait, raising
  :class:`~repro.exceptions.DeadlineExceededError` the moment the
  budget is gone instead of finishing an answer nobody is waiting for.

Both travel from the service to the kernels through a **thread-local**
scope (:func:`scoped`) rather than parameters: the PSR entry points are
four layers below :class:`~repro.api.service.TopKService` and the
deadline must not leak between concurrently served requests -- a
module-level global (the ``use_workers`` idiom) would cross-cancel
other threads' requests.

Environment defaults (read per call, so tests can monkeypatch):

* ``REPRO_MAX_ATTEMPTS`` -- supervised attempt budget (default 3);
* ``REPRO_BACKOFF_MS`` -- base backoff between attempts (default 25);
* ``REPRO_TASK_TIMEOUT_MS`` -- pooled-task progress timeout
  (default 30000).
"""

from __future__ import annotations

import math
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.exceptions import DeadlineExceededError, InvalidSpecError

#: Fallback attempt budget when neither a policy nor the environment
#: sets one.  Three attempts ride out one crash *and* one unlucky
#: retry before the kernel degrades.
DEFAULT_MAX_ATTEMPTS = 3

#: Fallback base backoff between supervised attempts, in milliseconds.
DEFAULT_BACKOFF_MS = 25.0

#: Fallback cap on the exponential backoff, in milliseconds.
DEFAULT_MAX_BACKOFF_MS = 1000.0

#: Fallback progress timeout for pooled tasks, in milliseconds.  A
#: pool that completes *no* task for this long is treated as hung and
#: rebuilt.  Generous by default: a legitimate block scan is seconds at
#: most, and a false positive costs one pool rebuild, not an error.
DEFAULT_TASK_TIMEOUT_MS = 30_000.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = float(raw)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {raw!r}")
    return value


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {raw!r}")
    return value


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidSpecError(message)


def _positive_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value > 0
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised operation retries before degrading.

    Attributes
    ----------
    max_attempts:
        Total attempts, counting the first (``1`` disables retries).
    backoff_ms:
        Base sleep before the second attempt; attempt ``n`` waits
        ``backoff_ms * 2**(n-2)``, capped at ``max_backoff_ms``.
    max_backoff_ms:
        Upper bound on any single backoff sleep.
    jitter:
        Fraction of each backoff randomized away (``0`` = fixed sleeps,
        ``0.5`` = sleep uniformly in ``[0.5*b, b]``).  The jitter RNG is
        seeded per attempt, so runs are reproducible.
    task_timeout_ms:
        Progress timeout for pooled tasks -- the longest the worker
        pool may go without completing any task before it is declared
        hung and rebuilt.  ``None`` defers to ``REPRO_TASK_TIMEOUT_MS``
        (default 30s).
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_ms: float = DEFAULT_BACKOFF_MS
    max_backoff_ms: float = DEFAULT_MAX_BACKOFF_MS
    jitter: float = 0.5
    task_timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.max_attempts, int)
            and not isinstance(self.max_attempts, bool)
            and self.max_attempts >= 1,
            f"max_attempts must be a positive integer, "
            f"got {self.max_attempts!r}",
        )
        for label in ("backoff_ms", "max_backoff_ms"):
            value = getattr(self, label)
            _require(
                _positive_number(value) or value == 0,
                f"{label} must be a non-negative number, got {value!r}",
            )
            object.__setattr__(self, label, float(value))
        _require(
            isinstance(self.jitter, (int, float))
            and not isinstance(self.jitter, bool)
            and 0.0 <= self.jitter <= 1.0,
            f"jitter must lie in [0, 1], got {self.jitter!r}",
        )
        object.__setattr__(self, "jitter", float(self.jitter))
        if self.task_timeout_ms is not None:
            _require(
                _positive_number(self.task_timeout_ms),
                f"task_timeout_ms must be a positive number or None, "
                f"got {self.task_timeout_ms!r}",
            )
            object.__setattr__(
                self, "task_timeout_ms", float(self.task_timeout_ms)
            )

    # -- wire form -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable encoding."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RetryPolicy":
        """Reconstruct a policy equal to the one ``to_dict`` encoded."""
        if not isinstance(payload, Mapping):
            raise InvalidSpecError(
                f"retry policy must be a mapping, got {payload!r}"
            )
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - names)
        if unknown:
            raise InvalidSpecError(
                f"unknown retry-policy fields {unknown!r}"
            )
        return cls(**{name: payload[name] for name in names if name in payload})

    # -- behaviour -----------------------------------------------------
    def resolved_task_timeout_s(self) -> float:
        """The effective progress timeout, in seconds."""
        ms = self.task_timeout_ms
        if ms is None:
            ms = _env_float("REPRO_TASK_TIMEOUT_MS", DEFAULT_TASK_TIMEOUT_MS)
        return ms / 1000.0

    def backoff_s(self, attempt: int) -> float:
        """The (jittered, deterministic) sleep before ``attempt``.

        ``attempt`` counts from 1; the first attempt never sleeps.
        The jitter RNG is seeded with the attempt number, so the same
        policy replays the same sleeps -- supervision stays
        reproducible end to end.
        """
        if attempt <= 1 or self.backoff_ms == 0:
            return 0.0
        base = min(
            self.backoff_ms * (2.0 ** (attempt - 2)), self.max_backoff_ms
        )
        if self.jitter <= 0.0:
            return base / 1000.0
        rng = random.Random(attempt)
        scale = 1.0 - self.jitter * rng.random()
        return base * scale / 1000.0


def default_retry_policy() -> RetryPolicy:
    """The environment-derived policy used when a request sets none."""
    return RetryPolicy(
        max_attempts=_env_int("REPRO_MAX_ATTEMPTS", DEFAULT_MAX_ATTEMPTS),
        backoff_ms=_env_float("REPRO_BACKOFF_MS", DEFAULT_BACKOFF_MS),
    )


class Deadline:
    """An absolute expiry a request must finish by.

    Built from a relative budget (:meth:`after_ms`) at request
    admission; monotonic-clock based, so wall-clock adjustments cannot
    spuriously expire requests.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` from now."""
        return cls(time.monotonic() + budget_ms / 1000.0)

    def remaining_s(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining_s() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline: {self.remaining_s() * 1000.0:.1f}ms remaining>"


# ---------------------------------------------------------------------------
# Thread-local request scope
# ---------------------------------------------------------------------------

_scope = threading.local()


@contextmanager
def scoped(
    deadline: Optional[Deadline] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> Iterator[None]:
    """Attach a deadline / retry policy to the current thread's work.

    ``None`` values are transparent: the surrounding scope (or the
    environment default) stays in effect, so callers can wrap
    unconditionally.  Scopes nest and restore on exit.
    """
    previous_deadline = getattr(_scope, "deadline", None)
    previous_policy = getattr(_scope, "retry_policy", None)
    if deadline is not None:
        _scope.deadline = deadline
    if retry_policy is not None:
        _scope.retry_policy = retry_policy
    try:
        yield
    finally:
        _scope.deadline = previous_deadline
        _scope.retry_policy = previous_policy


def current_deadline() -> Optional[Deadline]:
    """The deadline attached to the current thread's request, if any."""
    deadline = getattr(_scope, "deadline", None)
    return deadline if isinstance(deadline, Deadline) else None


def resolve_retry_policy(policy: Optional[RetryPolicy] = None) -> RetryPolicy:
    """Resolve the effective policy: explicit > scoped > environment."""
    if policy is not None:
        return policy
    scoped_policy = getattr(_scope, "retry_policy", None)
    if isinstance(scoped_policy, RetryPolicy):
        return scoped_policy
    return default_retry_policy()


def check_deadline(what: str) -> None:
    """Raise :class:`DeadlineExceededError` if the scoped deadline passed."""
    deadline = current_deadline()
    if deadline is not None and deadline.expired:
        raise DeadlineExceededError(
            f"deadline exceeded "
            f"({-deadline.remaining_s() * 1000.0:.1f}ms past) {what}"
        )


def interruptible_sleep(seconds: float) -> None:
    """Sleep, but never past the scoped deadline.

    The supervision backoff uses this so a request with 50ms left never
    spends 400ms asleep between attempts; the deadline check on wake
    raises if the budget ran out mid-sleep.
    """
    deadline = current_deadline()
    if deadline is not None:
        seconds = min(seconds, max(deadline.remaining_s(), 0.0))
    if seconds > 0:
        time.sleep(seconds)
    check_deadline("while backing off between attempts")
