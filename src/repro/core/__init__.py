"""PWS-quality computation -- the paper's first contribution (Sec. IV).

Three exact algorithms plus one estimator:

* :func:`~repro.core.pw.compute_quality_pw` -- naive possible-world
  enumeration (ground truth, exponential);
* :func:`~repro.core.pwr.compute_quality_pwr` -- Algorithm 1: direct
  pw-result enumeration, ``O(n^{k+1})`` worst case;
* :func:`~repro.core.tp.compute_quality_tp` -- Theorem 1: weighted sum
  of top-k probabilities, ``O(kn)``, shareable with query evaluation;
* :func:`~repro.core.montecarlo.compute_quality_montecarlo` -- sampled
  estimate with standard error (extension).

:func:`~repro.core.quality.compute_quality` dispatches by name.
"""

from repro.core.backend import (
    BACKENDS,
    current_backend,
    set_backend,
    use_backend,
)
from repro.core.parallel import (
    resolve_workers,
    set_workers,
    shutdown_pool,
    use_workers,
)
from repro.core.entropy import entropy, negated_entropy, xlog2x
from repro.core.montecarlo import MonteCarloQualityResult, compute_quality_montecarlo
from repro.core.pw import PWQualityResult, compute_quality_pw
from repro.core.pwr import (
    PWRQualityResult,
    ResultLimitExceeded,
    compute_quality_pwr,
    iter_pw_results,
)
from repro.core.quality import compute_quality, compute_quality_detailed
from repro.core.tp import (
    TPQualityResult,
    compute_quality_tp,
    short_result_probability,
)
from repro.core.weights import compute_weights, weight_of

__all__ = [
    "compute_quality",
    "compute_quality_detailed",
    "compute_quality_pw",
    "compute_quality_pwr",
    "compute_quality_tp",
    "compute_quality_montecarlo",
    "iter_pw_results",
    "compute_weights",
    "weight_of",
    "short_result_probability",
    "PWQualityResult",
    "PWRQualityResult",
    "TPQualityResult",
    "MonteCarloQualityResult",
    "ResultLimitExceeded",
    "xlog2x",
    "entropy",
    "negated_entropy",
    "BACKENDS",
    "current_backend",
    "set_backend",
    "use_backend",
    "resolve_workers",
    "set_workers",
    "shutdown_pool",
    "use_workers",
]
