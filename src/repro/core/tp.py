"""TP: quality from tuple probabilities in ``O(kn)`` (Section IV-B).

TP never looks at pw-results.  It obtains every tuple's top-k
probability ``p_i`` with one PSR pass, computes the weights ``ω_i``
(Theorem 1) incrementally, and sums ``ω_i·p_i``.  Because PSR is also
what answers U-kRanks / PT-k / Global-topk, a caller who already
evaluated a query can hand its :class:`RankProbabilities` in and pay
only the (small) weight-summation overhead -- the computation sharing
of Section IV-C and Figure 5.

Assumption inherited from Theorem 1: every possible world yields a
full-length (size-``k``) result.  This holds whenever at least ``k``
x-tuples are complete, and in particular on all the paper's workloads.
Use :func:`short_result_probability` to check, or
``compute_quality_tp(..., check_support=True)`` to fail fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.weights import compute_weights
from repro.db.database import RankedDatabase
from repro.exceptions import InvalidQueryError
from repro.queries.psr import RankProbabilities, compute_rank_probabilities

#: Tolerated probability of a short result before `check_support` fails.
SUPPORT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class TPQualityResult:
    """Output of the TP algorithm.

    Keeps the intermediates that downstream stages reuse: the rank
    probabilities (query answering) and the per-tuple weighted
    contributions aggregated per x-tuple (``g(l, D)`` -- the quantity
    the whole cleaning machinery of Section V is built on).
    """

    quality: float
    rank_probabilities: RankProbabilities
    weights_prefix: List[float]

    @property
    def k(self) -> int:
        return self.rank_probabilities.k

    @property
    def ranked(self) -> RankedDatabase:
        return self.rank_probabilities.ranked

    def g_by_xtuple(self) -> List[float]:
        """``g(l, D) = Σ_{t_i∈τ_l} ω_i·p_i`` for every x-tuple.

        These sum to the quality score; cleaning x-tuple ``l``
        successfully removes exactly ``g(l, D)`` from it (Theorem 2).
        Indexed by the database's x-tuple order.
        """
        rp = self.rank_probabilities
        g = [0.0] * self.ranked.num_xtuples
        for i in range(rp.cutoff):
            g[self.ranked.xtuple_indices[i]] += (
                self.weights_prefix[i] * rp.topk_prefix[i]
            )
        return g


def short_result_probability(ranked: RankedDatabase, k: int) -> float:
    """Probability that a possible world yields fewer than ``k`` real
    tuples (i.e. a short pw-result, outside Theorem 1's assumption)."""
    return 1.0 - ranked.min_real_tuples_probability(k)


def compute_quality_tp(
    ranked: RankedDatabase,
    k: int,
    rank_probabilities: Optional[RankProbabilities] = None,
    check_support: bool = False,
) -> TPQualityResult:
    """Run TP: PSR (unless shared), weights, weighted sum.

    Parameters
    ----------
    ranked:
        Pre-sorted database.
    k:
        Top-k parameter.
    rank_probabilities:
        PSR output to reuse (Section IV-C sharing).  Must have been
        computed for the same ``ranked`` view and the same ``k``.
    check_support:
        When true, verify Theorem 1's full-length-result assumption and
        raise :class:`~repro.exceptions.InvalidQueryError` if short
        results are possible.
    """
    if rank_probabilities is None:
        rank_probabilities = compute_rank_probabilities(ranked, k)
    else:
        if rank_probabilities.k != k:
            raise InvalidQueryError(
                f"shared rank probabilities were computed for "
                f"k={rank_probabilities.k}, not k={k}"
            )
        if rank_probabilities.ranked is not ranked:
            raise InvalidQueryError(
                "shared rank probabilities belong to a different ranked view"
            )
    if check_support:
        shortfall = short_result_probability(ranked, k)
        if shortfall > SUPPORT_TOLERANCE:
            raise InvalidQueryError(
                f"possible worlds yield fewer than k={k} real tuples with "
                f"probability {shortfall:.3g}; Theorem 1 (TP) does not "
                f"apply -- use PWR or PW instead"
            )
    weights = compute_weights(ranked, upto=rank_probabilities.cutoff)
    quality = math.fsum(
        w * p for w, p in zip(weights, rank_probabilities.topk_prefix)
    )
    return TPQualityResult(
        quality=quality,
        rank_probabilities=rank_probabilities,
        weights_prefix=weights,
    )
