"""TP: quality from tuple probabilities in ``O(kn)`` (Section IV-B).

TP never looks at pw-results.  It obtains every tuple's top-k
probability ``p_i`` with one PSR pass, computes the weights ``ω_i``
(Theorem 1) incrementally, and sums ``ω_i·p_i``.  Because PSR is also
what answers U-kRanks / PT-k / Global-topk, a caller who already
evaluated a query can hand its :class:`RankProbabilities` in and pay
only the (small) weight-summation overhead -- the computation sharing
of Section IV-C and Figure 5.  :class:`repro.queries.engine.QuerySession`
automates exactly that.

On the NumPy backend the weight pass is a segmented cumulative sum, the
quality a dot product, and the per-x-tuple aggregation ``g(l, D)`` a
``bincount`` over the columnar arrays.

Assumption inherited from Theorem 1: every possible world yields a
full-length (size-``k``) result.  This holds whenever at least ``k``
x-tuples are complete, and in particular on all the paper's workloads.
Use :func:`short_result_probability` to check, or
``compute_quality_tp(..., check_support=True)`` to fail fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.weights import compute_weights, weight_of
from repro.db.database import RankDelta, RankedDatabase
from repro.exceptions import InvalidQueryError
from repro.queries.psr import RankProbabilities, compute_rank_probabilities

#: Tolerated probability of a short result before `check_support` fails.
SUPPORT_TOLERANCE = 1e-9


@dataclass(frozen=True, eq=False)
class TPQualityResult:
    """Output of the TP algorithm.

    Keeps the intermediates that downstream stages reuse: the rank
    probabilities (query answering) and the per-tuple weighted
    contributions aggregated per x-tuple (``g(l, D)`` -- the quantity
    the whole cleaning machinery of Section V is built on).
    """

    quality: float
    rank_probabilities: RankProbabilities
    weights_prefix: np.ndarray
    backend: str = field(default="python")

    def __eq__(self, other: object) -> bool:
        # The weights array needs elementwise comparison; the dataclass
        # default would raise on it.
        if not isinstance(other, TPQualityResult):
            return NotImplemented
        return (
            self.quality == other.quality
            and self.rank_probabilities == other.rank_probabilities
            and np.array_equal(self.weights_prefix, other.weights_prefix)
        )

    @property
    def k(self) -> int:
        return self.rank_probabilities.k

    @property
    def ranked(self) -> RankedDatabase:
        return self.rank_probabilities.ranked

    def g_by_xtuple_array(self) -> np.ndarray:
        """``g(l, D)`` per x-tuple as a float64 array (database order)."""
        rp = self.rank_probabilities
        return np.bincount(
            self.ranked.xtuple_indices_array[: rp.cutoff],
            weights=np.asarray(self.weights_prefix) * rp.topk_prefix,
            minlength=self.ranked.num_xtuples,
        )

    def g_by_xtuple(self) -> List[float]:
        """``g(l, D) = Σ_{t_i∈τ_l} ω_i·p_i`` for every x-tuple.

        These sum to the quality score; cleaning x-tuple ``l``
        successfully removes exactly ``g(l, D)`` from it (Theorem 2).
        Indexed by the database's x-tuple order.
        """
        if self.backend != "python":
            return self.g_by_xtuple_array().tolist()
        rp = self.rank_probabilities
        g = [0.0] * self.ranked.num_xtuples
        xtuple_indices = self.ranked.xtuple_indices
        for i in range(rp.cutoff):
            g[xtuple_indices[i]] += float(
                self.weights_prefix[i] * rp.topk_prefix[i]
            )
        return g


def patch_quality_tp(
    old_quality: TPQualityResult,
    rank_probabilities: RankProbabilities,
    delta: RankDelta,
    backend: Optional[str] = None,
) -> Optional[TPQualityResult]:
    """TP quality for a delta-patched view, from the old quality.

    A tuple's weight ``ω_i`` depends only on its own x-tuple's
    higher-ranked siblings, so an x-tuple swap leaves every survivor's
    weight bitwise unchanged -- the new weight vector is the old one
    with the swapped x-tuple's rows spliced out and the replacement's
    (computed scalar-style, O(|replacement|)) spliced in.  The quality
    is then one dot product against the patched top-k vector.

    Returns ``None`` when the patch does not apply (x-tuple removal can
    *grow* the PSR cutoff past the old weight vector; rare) -- the
    caller falls back to :func:`compute_quality_tp`.
    """
    if delta.new_index is None:
        return None
    old_w = np.asarray(old_quality.weights_prefix)
    cutoff = rank_probabilities.cutoff
    spliced = np.delete(
        old_w, delta.removed_rows[delta.removed_rows < old_w.shape[0]]
    )
    inserted = delta.inserted_rows[delta.inserted_rows < cutoff]
    if inserted.size:
        ranked = rank_probabilities.ranked
        probabilities = ranked.probabilities_array[delta.inserted_rows]
        weights = []
        mass = 0.0
        for j, e in enumerate(probabilities.tolist()):
            mass = min(1.0, mass + e)
            if delta.inserted_rows[j] < cutoff:
                weights.append(weight_of(e, mass))
        spliced = np.insert(
            spliced,
            np.minimum(inserted - np.arange(inserted.size), spliced.shape[0]),
            weights,
        )
    if spliced.shape[0] < cutoff:
        return None
    weights_prefix = np.ascontiguousarray(spliced[:cutoff])
    resolved = resolve_backend(backend)
    if resolved != "python":
        quality = float(weights_prefix @ rank_probabilities.topk_prefix)
    else:
        quality = math.fsum(
            w * p
            for w, p in zip(
                weights_prefix.tolist(),
                rank_probabilities.topk_prefix.tolist(),
            )
        )
    return TPQualityResult(
        quality=quality,
        rank_probabilities=rank_probabilities,
        weights_prefix=weights_prefix,
        backend=resolved,
    )


def short_result_probability(ranked: RankedDatabase, k: int) -> float:
    """Probability that a possible world yields fewer than ``k`` real
    tuples (i.e. a short pw-result, outside Theorem 1's assumption)."""
    return 1.0 - ranked.min_real_tuples_probability(k)


def compute_quality_tp(
    ranked: RankedDatabase,
    k: int,
    rank_probabilities: Optional[RankProbabilities] = None,
    check_support: bool = False,
    backend: Optional[str] = None,
) -> TPQualityResult:
    """Run TP: PSR (unless shared), weights, weighted sum.

    Parameters
    ----------
    ranked:
        Pre-sorted database.
    k:
        Top-k parameter.
    rank_probabilities:
        PSR output to reuse (Section IV-C sharing).  Must have been
        computed for the same ``ranked`` view and the same ``k``.
    check_support:
        When true, verify Theorem 1's full-length-result assumption and
        raise :class:`~repro.exceptions.InvalidQueryError` if short
        results are possible.
    backend:
        Kernel selection (``"numpy"`` or ``"python"``); defaults to the
        process-wide backend from :mod:`repro.core.backend`.
    """
    resolved = resolve_backend(backend)
    if rank_probabilities is None:
        rank_probabilities = compute_rank_probabilities(ranked, k, backend=resolved)
    else:
        if rank_probabilities.k != k:
            raise InvalidQueryError(
                f"shared rank probabilities were computed for "
                f"k={rank_probabilities.k}, not k={k}"
            )
        if rank_probabilities.ranked is not ranked:
            raise InvalidQueryError(
                "shared rank probabilities belong to a different ranked view"
            )
    if check_support:
        shortfall = short_result_probability(ranked, k)
        if shortfall > SUPPORT_TOLERANCE:
            raise InvalidQueryError(
                f"possible worlds yield fewer than k={k} real tuples with "
                f"probability {shortfall:.3g}; Theorem 1 (TP) does not "
                f"apply -- use PWR or PW instead"
            )
    weights = compute_weights(
        ranked, upto=rank_probabilities.cutoff, backend=resolved
    )
    if resolved != "python":
        quality = float(weights @ rank_probabilities.topk_prefix)
    else:
        quality = math.fsum(
            w * p
            for w, p in zip(
                weights.tolist(), rank_probabilities.topk_prefix.tolist()
            )
        )
    return TPQualityResult(
        quality=quality,
        rank_probabilities=rank_probabilities,
        weights_prefix=weights,
        backend=resolved,
    )
