"""Sharded process-parallel PSR: multi-core scale-out of the rank scan.

The PSR scan is sequential on its face -- every row's Poisson-binomial
base depends on every x-tuple mass accumulated above it -- but the
dependency is *summarizable*: the scan state at any row boundary is
(saturation shift, open-mass dict, closed factor product), and all
three are cheap aggregates of the prefix.  This module exploits that to
run PSR over ``P`` processes:

1. **Plan** (coordinator, ``O(n + m·W)`` where ``W`` = number of
   blocks): partition the ranked rows into contiguous fixed-size blocks
   and derive each boundary's shift, open masses and the per-block list
   of x-tuples that *close* inside it.  Blocks past the row where the
   ``k``-th x-tuple saturates are dropped outright (Lemma 2: their rows
   have zero top-k probability).
2. **Pass 1** (parallel): each block's closing masses fold into a
   degree-capped generating polynomial
   (:func:`repro.core.pwr.truncated_factor_product`).
3. **Prefix combine** (coordinator): truncated convolutions turn the
   per-block factors into each block's entry ``closed_dp``
   (:func:`repro.core.pwr.prefix_factor_products`).
4. **Pass 2** (parallel): every block runs the ordinary columnar scan
   (:func:`repro.queries.psr_numpy._scan_numpy`) seeded with its
   boundary state and writes its ρ rows and top-k entries into disjoint
   slices of a shared output buffer.

Row data never crosses a process boundary by pickling: the canonical
columnar arrays are published once per ranked view as
``multiprocessing.shared_memory`` segments (:class:`SharedColumns`) and
workers map them read-only; task payloads are block offsets plus the
O(|open|) boundary state.

Determinism
-----------
The block size is fixed (:data:`DEFAULT_BLOCK_ROWS`, overridable via
``REPRO_BLOCK_ROWS``) and *independent of the worker count*, the plan
is pure coordinator arithmetic, and blocks write disjoint output
slices -- so the backend is bit-reproducible across runs **and** across
worker counts, including the in-process serial fallback.  No worker
holds an RNG.  Against the serial backends the results agree to well
under 1e-9: block-mass aggregation associates floating-point additions
differently than the row-by-row scan (a ~1e-15 effect), so equality is
by tolerance, not bytes.

Fallback
--------
:func:`compute_rank_probabilities_parallel` degrades to an in-process
run of the *same* sharded math (identical bytes) whenever a pool cannot
pay for itself or cannot be built: one resolved worker, a single live
block, shared memory unavailable, or pool setup failure.  The reason is
reported in the result's ``parallel_info`` so sessions can count
fallbacks.

Supervision and degradation
---------------------------
Pooled passes run under worker supervision: a crashed worker
(``BrokenProcessPool``), a hung worker (no task completes within the
:class:`~repro.core.resilience.RetryPolicy`'s progress timeout), or a
failed task makes the supervisor kill and rebuild the pool as needed
and retry the outstanding shards with capped exponential backoff +
deterministic jitter.  When the attempt budget is exhausted, the run
*degrades* instead of erroring: first to the in-process sharded scan
(bit-identical math), and -- should that fail too -- to the NumPy
kernel (1e-9-identical).  What happened is visible in
``parallel_info``: ``retries``, ``pool_restarts``, and ``degraded``
(``None`` / ``"serial"`` / ``"numpy"``), which sessions surface as the
``psr_retries`` / ``psr_pool_restarts`` / ``psr_degraded`` counters.
Scoped request deadlines (:mod:`repro.core.resilience`) are honoured
at every supervision wait; faults for the test harness are injected
via :mod:`repro.testing.faults`.

Every shared-memory segment the coordinator creates is registered in a
process-local registry under a ``repro_*`` name until it is unlinked,
so tests can assert zero leaks; all failure paths (including
``KeyboardInterrupt`` mid-scan) release the segments they created.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError as FuturesCancelledError,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.core.lockcheck import RANK_WORKER_POOL, OrderedLock
from repro.core.pwr import prefix_factor_products, truncated_factor_product
from repro.core.resilience import (
    RetryPolicy,
    check_deadline,
    current_deadline,
    interruptible_sleep,
    resolve_retry_policy,
)
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjectedError,
    RetryExhaustedError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.db.database import RankedDatabase
    from repro.queries.psr import RankProbabilities
    from repro.testing.faults import FaultPlan

#: Rows per shard.  Independent of the worker count so that results are
#: bit-identical no matter how many processes share the work; small
#: enough that ~8 workers stay balanced at n = 100k, large enough that
#: per-task overhead (a future + O(|open|) state pickle) stays under a
#: percent of a block's scan time.  Override with ``REPRO_BLOCK_ROWS``
#: (read per call; tests shrink it to force many-block plans on small
#: inputs).
DEFAULT_BLOCK_ROWS = 8192


def _block_rows() -> int:
    """The configured shard size (``REPRO_BLOCK_ROWS`` or the default)."""
    raw = os.environ.get("REPRO_BLOCK_ROWS")
    if raw is None:
        return DEFAULT_BLOCK_ROWS
    value = int(raw)
    if value <= 0:
        raise ValueError(f"REPRO_BLOCK_ROWS must be positive, got {value}")
    return value


# ---------------------------------------------------------------------------
# Worker-count resolution (mirrors the backend knob in core/backend.py)
# ---------------------------------------------------------------------------

_workers_override: Optional[int] = None


def _validate_workers(value: int) -> int:
    if value < 1:
        raise ValueError(f"worker count must be >= 1, got {value}")
    return value


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Precedence: the scoped override (:func:`set_workers` /
    :func:`use_workers`), then an explicit ``workers=`` argument, then
    the ``REPRO_WORKERS`` environment variable, then
    ``os.cpu_count()``.  The override outranks the explicit argument on
    purpose: callers such as :class:`~repro.queries.engine.QuerySession`
    always pass their *configured default* explicitly, and the override
    exists precisely so a narrower scope (one service request wrapped in
    ``use_workers(spec.workers)``) can retarget that default without
    re-threading a parameter through every layer.
    """
    if _workers_override is not None:
        return _workers_override
    if workers is not None:
        return _validate_workers(workers)
    raw = os.environ.get("REPRO_WORKERS")
    if raw is not None:
        return _validate_workers(int(raw))
    return os.cpu_count() or 1


def set_workers(workers: Optional[int]) -> None:
    """Set (or clear, with ``None``) the process-wide worker override."""
    global _workers_override
    _workers_override = (
        None if workers is None else _validate_workers(workers)
    )


@contextmanager
def use_workers(workers: Optional[int]) -> Iterator[Optional[int]]:
    """Temporarily set the process-wide worker override.

    ``None`` is a no-op passthrough so callers can wrap unconditionally
    (``with use_workers(spec.workers): ...``).
    """
    global _workers_override
    previous = _workers_override
    if workers is not None:
        _workers_override = _validate_workers(workers)
    try:
        yield _workers_override
    finally:
        _workers_override = previous


# ---------------------------------------------------------------------------
# Shared-memory registry (coordinator side)
# ---------------------------------------------------------------------------

#: Picklable handle to one shared-memory-backed ndarray:
#: ``(segment name, shape, dtype string)``.
ArraySpec = Tuple[str, Tuple[int, ...], str]

#: Name prefix of every segment this library creates.  The leak-check
#: fixture greps ``/dev/shm`` for it, so keep it distinctive.
SEGMENT_PREFIX = "repro_"

#: Names of every live (created, not yet unlinked) segment of this
#: process.  ``_Segment`` registers on create and deregisters on
#: destroy; tests assert the registry drains to exactly the cached
#: column segments (and to nothing once caches are cleared).
_live_segments: Set[str] = set()

_segment_seq = 0


def _next_segment_name() -> str:
    """A fresh ``repro_<pid>_<seq>`` segment name."""
    global _segment_seq
    _segment_seq += 1
    return f"{SEGMENT_PREFIX}{os.getpid()}_{_segment_seq}"


def live_segment_names() -> Set[str]:
    """Names of segments this process created and has not unlinked."""
    return set(_live_segments)


def untracked_segment_names() -> Set[str]:
    """Live segments with **no** owner -- a leak, always.

    The cached column mirrors (:func:`shared_columns`) legitimately
    stay live between calls; anything else still registered has
    escaped a ``finally`` and would survive on ``/dev/shm``.
    """
    owned: Set[str] = set()
    for columns in _column_cache.values():
        owned.add(columns.probabilities.spec[0])
        owned.add(columns.xtuples.spec[0])
    return _live_segments - owned


class _Segment:
    """One shared-memory segment mirroring a NumPy array."""

    def __init__(self, array: np.ndarray) -> None:
        # Named create so leaks are attributable; retry on the (test
        # re-entrancy / crashed predecessor) case of a name collision.
        while True:
            name = _next_segment_name()
            try:
                self.shm = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1), name=name
                )
                break
            except FileExistsError:  # pragma: no cover - crashed leftover
                continue
        _live_segments.add(self.shm.name)
        self.spec: ArraySpec = (
            self.shm.name, tuple(array.shape), str(array.dtype)
        )
        try:
            view: np.ndarray = np.ndarray(
                array.shape, dtype=array.dtype, buffer=self.shm.buf
            )
            view[...] = array
        except BaseException:
            self.destroy()
            raise

    def array(self) -> np.ndarray:
        """The coordinator-side view of the segment."""
        name, shape, dtype = self.spec
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf)

    def destroy(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        _live_segments.discard(self.shm.name)


class SharedColumns:
    """The PSR input columns of one ranked view, published as shm.

    Holds the existential-probability and x-tuple-index columns.
    Instances are cached per ranked view (:func:`shared_columns`) so the
    one-time copy into shared memory amortizes over every query the
    session runs against that view.
    """

    def __init__(self, probabilities: np.ndarray, xtuples: np.ndarray) -> None:
        self.probabilities = _Segment(np.ascontiguousarray(probabilities))
        try:
            self.xtuples = _Segment(np.ascontiguousarray(xtuples))
        except BaseException:
            # Never leak the first segment because the second failed.
            self.probabilities.destroy()
            raise

    def specs(self) -> Tuple[ArraySpec, ArraySpec]:
        """The picklable ``(probabilities, xtuple indices)`` handles."""
        return self.probabilities.spec, self.xtuples.spec

    def destroy(self) -> None:
        """Release both segments."""
        self.probabilities.destroy()
        self.xtuples.destroy()


_column_cache: Dict[int, SharedColumns] = {}


def _release_columns(key: int) -> None:
    """Finalizer: drop a ranked view's cached segments."""
    columns = _column_cache.pop(key, None)
    if columns is not None:
        columns.destroy()


def _release_all_columns() -> None:
    """``atexit`` hook: unlink every cached segment."""
    for key in list(_column_cache):
        _release_columns(key)


atexit.register(_release_all_columns)


def shared_columns(ranked: "RankedDatabase") -> SharedColumns:
    """The (cached) shared-memory mirror of a ranked view's columns.

    The cache entry is keyed by object identity and torn down by a
    ``weakref.finalize`` when the ranked view is garbage-collected, so
    id reuse cannot alias two views and segments never outlive their
    data (a process-exit ``atexit`` sweep catches the remainder).
    """
    key = id(ranked)
    columns = _column_cache.get(key)
    if columns is None:
        probabilities, xtuples = ranked.psr_columns()
        columns = SharedColumns(probabilities, xtuples)
        _column_cache[key] = columns
        weakref.finalize(ranked, _release_columns, key)
    return columns


def release_columns_for(ranked: "RankedDatabase") -> None:
    """Eagerly drop (and unlink) a ranked view's cached column mirror.

    Failure paths call this so a run that died mid-scan does not pin
    ``/dev/shm`` space until the view happens to be garbage-collected;
    the next successful run simply republishes the columns.
    """
    _release_columns(id(ranked))


def clear_column_cache() -> None:
    """Unlink every cached column segment (tests and diagnostics)."""
    _release_all_columns()


# ---------------------------------------------------------------------------
# Worker-side attach
# ---------------------------------------------------------------------------


def _attach(spec: ArraySpec) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map a segment by spec inside a worker (transient, per task).

    Mappings are per task and closed by the caller: caching them would
    pin the coordinator's already-unlinked output buffers in worker
    memory for the pool's lifetime, and an attach is microseconds
    against a block scan.  Attaching re-registers the name with the
    ``resource_tracker`` the pool shares with the coordinator; that is
    a set-membership no-op there, and the coordinator's eventual
    ``unlink`` performs the single matching unregister -- workers must
    *not* unregister themselves or they would strip the coordinator's
    entry.
    """
    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_size = 0
_pool_method: Optional[str] = None

#: Guards every transition of the module-level pool state above.  The
#: SessionPool serves different snapshots from concurrent threads, and
#: each lease may reach :func:`_get_pool`; without the lock two threads
#: could interleave a teardown and a rebuild and strand a live
#: executor (its workers leak until process exit).  Innermost rank of
#: the serving stack's declared lock hierarchy -- it is only ever
#: taken during kernel work, under a snapshot lock.
_pool_lock = OrderedLock("parallel.worker-pool", RANK_WORKER_POOL)

#: Pools ever (re)built in this process -- a cheap observability hook
#: for tests asserting that supervision actually rebuilt the pool.
pool_builds = 0


def _pick_context() -> multiprocessing.context.BaseContext:
    """The preferred multiprocessing start method available on the host.

    Forkserver first (fast spawns, no inherited locks), then spawn
    (portable), then fork.
    """
    available = multiprocessing.get_all_start_methods()
    for method in ("forkserver", "spawn", "fork"):
        if method in available:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


def _pool_is_broken() -> bool:
    """Whether the cached pool has been marked broken by the executor."""
    return _pool is not None and getattr(_pool, "_broken", False) is not False


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The process pool, (re)built when size, context, or health changed.

    The cache is keyed by worker count **and** start-method: a
    fork-context change (e.g. a test overriding :func:`_pick_context`)
    invalidates it, and a pool the executor marked broken (a worker
    SIGKILLed between requests) is torn down and rebuilt instead of
    poisoning every future submission.  Serialized by ``_pool_lock`` so
    concurrent leases cannot interleave a teardown with a rebuild;
    submissions on the returned executor need no lock (the executor is
    itself thread-safe).
    """
    global _pool, _pool_size, _pool_method, pool_builds
    with _pool_lock:
        context = _pick_context()
        method = context.get_start_method()
        if (
            _pool is not None
            and _pool_size == workers
            and _pool_method == method
            and not _pool_is_broken()
        ):
            return _pool
        if _pool is not None:
            _pool.shutdown(wait=not _pool_is_broken(), cancel_futures=True)
        _pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _pool_size = workers
        _pool_method = method
        pool_builds += 1
        return _pool


def _kill_pool_locked() -> None:
    """Tear the pool down by force; caller holds ``_pool_lock``."""
    global _pool, _pool_size, _pool_method
    if _pool is None:
        return
    for process in list(getattr(_pool, "_processes", {}).values()):
        try:
            process.kill()
        except (OSError, AttributeError):  # pragma: no cover - racing exit
            pass
    _pool.shutdown(wait=False, cancel_futures=True)
    _pool = None
    _pool_size = 0
    _pool_method = None


def _kill_pool() -> None:
    """Forcibly tear the pool down, SIGKILLing its workers.

    The supervisor's hang path: a worker stuck in a task never exits on
    a polite ``shutdown``, so the processes are killed first and the
    executor (now broken, which it tolerates) is discarded.
    """
    with _pool_lock:
        _kill_pool_locked()


def shutdown_pool() -> None:
    """Tear down the worker pool (tests and ``atexit``)."""
    global _pool, _pool_size, _pool_method
    with _pool_lock:
        if _pool is not None:
            if _pool_is_broken():
                _kill_pool_locked()
                return
            _pool.shutdown(wait=True, cancel_futures=True)
            _pool = None
            _pool_size = 0
            _pool_method = None


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# The block plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Block:
    """One shard of the ranked row space with its boundary scan state.

    ``open_items`` are the x-tuples straddling the block's start row --
    ``(dense index, accumulated mass)`` in first-appearance order, which
    is exactly the insertion order the serial scan's open dict would
    hold.  ``close_masses`` are the total masses of x-tuples whose last
    member falls inside the block without saturating, in closing order.
    """

    start: int
    stop: int
    shift: int
    open_items: Tuple[Tuple[int, float], ...]
    close_masses: Tuple[float, ...]


@dataclass(frozen=True)
class _Plan:
    """The full shard decomposition of one PSR run.

    ``blocks`` covers only *live* rows: planning stops at the first
    block boundary whose saturation shift reaches ``k``, because the
    serial scan would have early-stopped before it (Lemma 2).
    """

    blocks: Tuple[_Block, ...]
    truncated: bool


def _plan_blocks(
    probabilities: np.ndarray,
    xtuple_indices: np.ndarray,
    num_xtuples: int,
    k: int,
    block_rows: int,
) -> _Plan:
    """Partition the ranked rows and derive each block's boundary state.

    All quantities are prefix aggregates: per-x-tuple member counts and
    mass sums accumulated block by block (``np.bincount`` adds in row
    order, matching the scan).  Masses are clamped at the boundary
    rather than per row; the two associate additions differently, a
    ~1e-15 effect far below the backends' 1e-9 cross-check tolerance,
    and identical across worker counts since the plan never depends on
    them.
    """
    from repro.db.database import SATURATION_EPSILON

    n = int(probabilities.shape[0])
    m = num_xtuples
    rows = np.arange(n, dtype=np.int64)
    total_counts = np.bincount(xtuple_indices, minlength=m)
    total_mass = np.bincount(
        xtuple_indices, weights=probabilities, minlength=m
    )
    first_row = np.full(m, n, dtype=np.int64)
    np.minimum.at(first_row, xtuple_indices, rows)
    last_row = np.full(m, -1, dtype=np.int64)
    np.maximum.at(last_row, xtuple_indices, rows)
    # X-tuples that fold into the closed product (last member scanned,
    # never saturates), keyed by the row where the fold happens.
    closer_mask = (last_row >= 0) & (total_mass < 1.0 - SATURATION_EPSILON)
    closers = np.nonzero(closer_mask)[0]
    closers = closers[np.argsort(last_row[closers], kind="stable")]
    close_rows = last_row[closers]
    close_mass = total_mass[closers]

    blocks: List[_Block] = []
    mass = np.zeros(m, dtype=np.float64)
    counts = np.zeros(m, dtype=np.int64)
    truncated = False
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        clamped = np.minimum(mass, 1.0)
        saturated = clamped >= 1.0 - SATURATION_EPSILON
        shift = int(np.count_nonzero(saturated))
        if shift >= k:
            truncated = True
            break
        straddling = np.nonzero((counts > 0) & (counts < total_counts))[0]
        straddling = straddling[
            np.argsort(first_row[straddling], kind="stable")
        ]
        open_items = tuple(
            (int(l), 1.0 if saturated[l] else float(clamped[l]))
            for l in straddling
        )
        lo, hi = np.searchsorted(close_rows, (start, stop))
        blocks.append(
            _Block(
                start=start,
                stop=stop,
                shift=shift,
                open_items=open_items,
                close_masses=tuple(float(q) for q in close_mass[lo:hi]),
            )
        )
        window = slice(start, stop)
        mass += np.bincount(
            xtuple_indices[window],
            weights=probabilities[window],
            minlength=m,
        )
        counts += np.bincount(xtuple_indices[window], minlength=m)
    return _Plan(blocks=tuple(blocks), truncated=truncated)


# ---------------------------------------------------------------------------
# The two parallel passes (each runs identically in-pool or in-process)
# ---------------------------------------------------------------------------


def _block_factors_task(
    k: int, masses: List[Tuple[float, ...]]
) -> List[np.ndarray]:
    """Pass 1: the truncated closing factor of each assigned block."""
    return [truncated_factor_product(block, k) for block in masses]


def _scan_block(
    probabilities: np.ndarray,
    xtuple_indices: np.ndarray,
    num_xtuples: int,
    k: int,
    start: int,
    stop: int,
    shift: int,
    open_items: Tuple[Tuple[int, float], ...],
    prefix: np.ndarray,
    out_rho: np.ndarray,
    out_topk: np.ndarray,
) -> int:
    """Pass 2 for one block: seed the columnar scan and emit its rows.

    Reuses :func:`repro.queries.psr_numpy._scan_numpy` verbatim -- the
    block's boundary state is exactly a :class:`ScanCheckpoint`-shaped
    state, so the serial kernel needs no changes to run a shard.
    Returns the row where the scan ended (``stop``, except for Lemma 2
    early stops in the final live block).
    """
    from repro.queries.psr_numpy import (
        _NumpyScanState,
        _RowEmitter,
        _open_product,
        _scan_numpy,
    )

    open_masses = dict(open_items)
    state = _NumpyScanState(
        row=start,
        shift=shift,
        open_masses=open_masses,
        p_open=_open_product(open_masses, -1),
        closed_dp=prefix.copy(),
        remaining=np.bincount(
            xtuple_indices[start:], minlength=num_xtuples
        ).tolist(),
    )
    emitter = _RowEmitter(start, stop - start, k)
    end = _scan_numpy(
        probabilities[start:stop].tolist(),
        xtuple_indices[start:stop].tolist(),
        k,
        state,
        stop,
        emitter,
        None,
        base=start,
    )
    emitter.flush(state.closed_dp)
    window, topk = emitter.finalize(probabilities, end)
    out_rho[start:end] = window.materialize()
    out_topk[start:end] = topk
    return end


def _scan_block_task(
    column_specs: Tuple[ArraySpec, ArraySpec],
    out_rho_spec: ArraySpec,
    out_topk_spec: ArraySpec,
    num_xtuples: int,
    k: int,
    start: int,
    stop: int,
    shift: int,
    open_items: Tuple[Tuple[int, float], ...],
    prefix: np.ndarray,
    fault: Optional[Mapping[str, Any]] = None,
) -> int:
    """Worker entry point for pass 2: attach shm views, scan one block.

    ``fault`` is a directive from the coordinator's armed
    :class:`~repro.testing.faults.FaultPlan` (``None`` in production);
    it executes *before* any shared memory is mapped, so an injected
    death never strands a worker-side mapping.
    """
    if fault is not None:
        from repro.testing.faults import execute_worker_fault

        execute_worker_fault(fault)
    handles = [
        _attach(spec)
        for spec in (
            column_specs[0], column_specs[1], out_rho_spec, out_topk_spec
        )
    ]
    try:
        probabilities, xtuple_indices, out_rho, out_topk = (
            array for _, array in handles
        )
        return _scan_block(
            probabilities,
            xtuple_indices,
            num_xtuples,
            k,
            start,
            stop,
            shift,
            open_items,
            prefix,
            out_rho,
            out_topk,
        )
    finally:
        for shm, _ in handles:
            shm.close()


def _chunk(count: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into at most ``parts`` contiguous spans."""
    parts = max(1, min(parts, count))
    bounds = np.linspace(0, count, parts + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(parts)
        if bounds[i] < bounds[i + 1]
    ]


# ---------------------------------------------------------------------------
# Worker supervision
# ---------------------------------------------------------------------------


@dataclass
class _SupervisionStats:
    """What supervision had to do to finish one PSR run."""

    retries: int = 0
    pool_restarts: int = 0


def _supervised_factors(
    pool_workers: int,
    interior: List[Tuple[float, ...]],
    k: int,
    policy: RetryPolicy,
    stats: _SupervisionStats,
) -> List[np.ndarray]:
    """Pass 1 with a one-shot fallback: pooled, else in-process.

    Factor folding is cheap (milliseconds even at n=100k), so a failed
    or hung pooled attempt is not worth a retry loop -- the in-process
    computation *is* the retry, bit-identical by construction.  Broken
    or timed-out pools are killed so pass 2 starts from a fresh one.
    """
    try:
        pool = _get_pool(pool_workers)
        spans = _chunk(len(interior), pool_workers)
        futures = [
            pool.submit(_block_factors_task, k, interior[lo:hi])
            for lo, hi in spans
        ]
        timeout = policy.resolved_task_timeout_s()
        return [
            factor
            for future in futures
            for factor in future.result(timeout=timeout)
        ]
    except (Exception, FuturesCancelledError) as exc:
        stats.retries += 1
        if isinstance(exc, FuturesTimeoutError) or _pool_is_broken():
            _kill_pool()
            stats.pool_restarts += 1
        return _block_factors_task(k, interior)


def _supervised_scan(
    pool_workers: int,
    blocks: Tuple[_Block, ...],
    prefixes: List[np.ndarray],
    columns: SharedColumns,
    out_rho: _Segment,
    out_topk: _Segment,
    num_xtuples: int,
    k: int,
    policy: RetryPolicy,
    faults: Optional["FaultPlan"],
    stats: _SupervisionStats,
) -> Dict[int, int]:
    """Pass 2 under full supervision: retry, rebuild, back off, or give up.

    Submits every outstanding block to the pool and collects results as
    they complete.  Three failure shapes are recovered from:

    * **crash** -- a worker died (``BrokenProcessPool`` from a result
      or a submit): the pool is killed and rebuilt;
    * **hang** -- no task completed within the policy's progress
      timeout: the workers are SIGKILLed (a polite shutdown never
      returns from a stuck task) and the pool rebuilt;
    * **task error** -- a task raised (e.g. an shm attach failure):
      the pool is healthy, only the failed blocks are retried.

    Completed blocks are never re-run -- their output slices are
    already written and disjoint -- so a retry costs only the failed
    remainder.  Between attempts the supervisor sleeps the policy's
    capped exponential backoff (deterministic jitter) without ever
    sleeping past the scoped deadline; exhausting ``max_attempts``
    raises :class:`RetryExhaustedError`, which the entry point turns
    into degradation rather than an error.
    """
    outstanding = set(range(len(blocks)))
    ends: Dict[int, int] = {}
    attempt = 1
    last_error: Optional[BaseException] = None
    while True:
        check_deadline("before a supervised scan attempt")
        try:
            pool = _get_pool(pool_workers)
        except (OSError, ValueError, RuntimeError) as exc:
            raise RetryExhaustedError(
                f"worker pool could not be rebuilt: {exc}"
            ) from exc
        future_blocks: Dict["Future[int]", int] = {}
        submit_error: Optional[BaseException] = None
        for b in sorted(outstanding):
            block = blocks[b]
            fault = faults.draw("task", b) if faults is not None else None
            try:
                future = pool.submit(
                    _scan_block_task,
                    columns.specs(),
                    out_rho.spec,
                    out_topk.spec,
                    num_xtuples,
                    k,
                    block.start,
                    block.stop,
                    block.shift,
                    block.open_items,
                    prefixes[b],
                    fault,
                )
            except (BrokenProcessPool, RuntimeError) as exc:
                submit_error = exc
                break
            future_blocks[future] = b
        failed: Set[int] = set()
        hung = False
        pending = set(future_blocks)
        progress_timeout = policy.resolved_task_timeout_s()
        while pending:
            deadline = current_deadline()
            wait_s = progress_timeout
            if deadline is not None:
                remaining = deadline.remaining_s()
                if remaining <= 0:
                    check_deadline("while awaiting scan shards")
                wait_s = min(wait_s, max(remaining, 0.001))
            done, not_done = futures_wait(
                pending, timeout=wait_s, return_when=FIRST_COMPLETED
            )
            if not done:
                # No progress inside the window: deadline first (the
                # request is dead either way), then declare a hang.
                check_deadline("while awaiting scan shards")
                hung = True
                failed.update(future_blocks[f] for f in not_done)
                last_error = TimeoutError(
                    f"no shard completed within {progress_timeout:.3f}s"
                )
                break
            for future in done:
                b = future_blocks[future]
                try:
                    ends[b] = future.result()
                    outstanding.discard(b)
                except (Exception, FuturesCancelledError) as exc:
                    failed.add(b)
                    last_error = exc
            pending = not_done
        if submit_error is not None:
            failed.update(outstanding - set(ends))
            last_error = submit_error
        if not failed:
            return ends
        crashed = submit_error is not None or _pool_is_broken() or any(
            isinstance(last_error, exc_type)
            for exc_type in (BrokenProcessPool, FuturesCancelledError)
        )
        if hung or crashed:
            _kill_pool()
            stats.pool_restarts += 1
        attempt += 1
        if attempt > policy.max_attempts:
            raise RetryExhaustedError(
                f"parallel scan failed on all {policy.max_attempts} "
                f"attempts; last error: {last_error!r}"
            )
        stats.retries += 1
        interruptible_sleep(policy.backoff_s(attempt))


def _serial_scan(
    probabilities: np.ndarray,
    xtuple_indices: np.ndarray,
    num_xtuples: int,
    k: int,
    blocks: Tuple[_Block, ...],
    prefixes: List[np.ndarray],
    faults: Optional["FaultPlan"],
) -> Tuple[np.ndarray, np.ndarray, List[int]]:
    """The in-process sharded scan (bit-identical to the pooled pass)."""
    live_rows = blocks[-1].stop
    rho_full = np.zeros((live_rows, k), dtype=np.float64)
    topk_full = np.zeros(live_rows, dtype=np.float64)
    ends: List[int] = []
    for b, block in enumerate(blocks):
        if faults is not None:
            directive = faults.draw("serial", b)
            if directive is not None:
                raise FaultInjectedError(
                    f"injected in-process scan failure at block {b}"
                )
        ends.append(
            _scan_block(
                probabilities,
                xtuple_indices,
                num_xtuples,
                k,
                block.start,
                block.stop,
                block.shift,
                block.open_items,
                prefixes[b],
                rho_full,
                topk_full,
            )
        )
    return rho_full[: ends[-1]], topk_full[: ends[-1]], ends


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def compute_rank_probabilities_parallel(
    ranked: "RankedDatabase", k: int, workers: Optional[int] = None
) -> "RankProbabilities":
    """Sharded PSR over a pre-sorted database (parallel backend).

    Returns the same :class:`repro.queries.psr.RankProbabilities` the
    serial backends produce (within 1e-9 on every entry), with
    checkpoints at block boundaries -- so the delta engine replays at
    most one block -- and a ``parallel_info`` dict describing how the
    run executed: ``{"workers", "blocks", "mode", "fallback",
    "retries", "pool_restarts", "degraded"}`` where ``mode`` is
    ``"pool"``, ``"serial"`` or ``"numpy"``, ``fallback`` names the
    *benign* reason a pool was not attempted (``None`` when it was),
    and ``degraded`` names the tier a failing pooled run fell back to
    (``"serial"`` after retry exhaustion, ``"numpy"`` when the
    in-process shards failed too, ``None`` on the happy path).

    Failure paths never leak shared memory: the output buffers are
    destroyed in ``finally`` and the cached input columns are unlinked
    before any exception (including ``KeyboardInterrupt``) propagates.
    """
    from repro.queries.deterministic import require_valid_k
    from repro.queries.psr import RankProbabilities, ScanCheckpoint
    from repro.testing.faults import active_faults

    require_valid_k(k)
    check_deadline("before the parallel PSR pass")
    probabilities, xtuple_indices = ranked.psr_columns()
    m = ranked.num_xtuples
    plan = _plan_blocks(probabilities, xtuple_indices, m, k, _block_rows())
    requested = resolve_workers(workers)
    policy = resolve_retry_policy()
    faults = active_faults()
    stats = _SupervisionStats()

    def _info(
        used: int, mode: str, degraded: Optional[str], fallback: Optional[str]
    ) -> Dict[str, object]:
        return {
            "workers": used,
            "blocks": len(plan.blocks),
            "mode": mode,
            "fallback": fallback,
            "retries": stats.retries,
            "pool_restarts": stats.pool_restarts,
            "degraded": degraded,
        }

    if not plan.blocks:
        result = RankProbabilities(
            k=k,
            ranked=ranked,
            cutoff=0,
            rho_prefix=np.zeros((0, k)),
            topk_prefix=np.zeros(0),
            backend="parallel",
            checkpoints=[],
        )
        result.parallel_info = _info(1, "serial", None, "empty")
        return result

    fallback: Optional[str] = None
    if requested <= 1:
        fallback = "workers <= 1"
    elif len(plan.blocks) == 1:
        fallback = "single live block"

    pool_ok = fallback is None
    columns: Optional[SharedColumns] = None
    if pool_ok:
        try:
            columns = shared_columns(ranked)
        except (OSError, ValueError, RuntimeError) as exc:
            fallback = f"shared memory unavailable: {exc}"
            pool_ok = False
    if pool_ok:
        try:
            _get_pool(requested)
        except (OSError, ValueError, RuntimeError) as exc:
            fallback = f"pool unavailable: {exc}"
            pool_ok = False

    blocks = plan.blocks
    live_rows = blocks[-1].stop
    degraded: Optional[str] = None
    mode = "serial"
    used = 1

    rho: Optional[np.ndarray] = None
    topk: Optional[np.ndarray] = None
    ends: List[int] = []
    try:
        # Pass 1 + prefix combine: the entry closed_dp of every block.
        # The final block's own factor is never consumed, so it is not
        # computed.
        interior = [block.close_masses for block in blocks[:-1]]
        factors: List[np.ndarray]
        if pool_ok and interior:
            factors = _supervised_factors(
                requested, interior, k, policy, stats
            )
        else:
            factors = _block_factors_task(k, interior)
        prefixes = prefix_factor_products(factors, k)

        # Pass 2: scan every live block against its boundary state,
        # degrading pool -> in-process shards -> NumPy kernel.
        if pool_ok and columns is not None:
            out_rho = _Segment(np.zeros((live_rows, k), dtype=np.float64))
            out_topk = _Segment(np.zeros(live_rows, dtype=np.float64))
            try:
                ends_by_block = _supervised_scan(
                    requested,
                    blocks,
                    prefixes,
                    columns,
                    out_rho,
                    out_topk,
                    m,
                    k,
                    policy,
                    faults,
                    stats,
                )
                ends = [ends_by_block[b] for b in range(len(blocks))]
                rho = np.array(out_rho.array()[: ends[-1]])
                topk = np.array(out_topk.array()[: ends[-1]])
                mode = "pool"
                used = _pool_size
            except RetryExhaustedError:
                degraded = "serial"
            finally:
                out_rho.destroy()
                out_topk.destroy()
        if rho is None or topk is None:
            try:
                rho, topk, ends = _serial_scan(
                    probabilities, xtuple_indices, m, k, blocks, prefixes,
                    faults,
                )
            except DeadlineExceededError:
                raise
            except Exception:
                degraded = "numpy"
    except BaseException:
        # An exception mid-scan (worker supervision gave up entirely,
        # a planner bug, KeyboardInterrupt, ...) must not strand this
        # view's column segments on /dev/shm until garbage collection
        # happens to run; the next successful run republishes them.
        if columns is not None:
            release_columns_for(ranked)
        raise

    if degraded == "numpy":
        # Last tier: the plain single-core kernel, sharing nothing with
        # the sharded code paths that just failed.  1e-9-identical to
        # the sharded output (the backends are cross-validated), with
        # its own interval checkpoints for delta replay.
        from repro.queries.psr import compute_rank_probabilities

        result = compute_rank_probabilities(ranked, k, backend="numpy")
        result.parallel_info = _info(1, "numpy", "numpy", fallback)
        return result

    assert rho is not None and topk is not None
    # Only the final live block may hit Lemma 2's early stop: every
    # earlier boundary's shift was checked below k by the planner.
    for block, end in zip(blocks[:-1], ends[:-1]):
        if end != block.stop:  # pragma: no cover - planner invariant
            raise AssertionError(
                f"non-final block [{block.start}, {block.stop}) "
                f"stopped early at {end}"
            )
    cutoff = ends[-1]

    checkpoints = [
        ScanCheckpoint(
            row=block.start,
            shift=block.shift,
            closed_dp=prefixes[b].copy(),
            open_masses=dict(block.open_items),
        )
        for b, block in enumerate(blocks)
        if 0 < block.start <= cutoff
    ]
    result = RankProbabilities(
        k=k,
        ranked=ranked,
        cutoff=cutoff,
        rho_prefix=rho,
        topk_prefix=topk,
        backend="parallel",
        checkpoints=checkpoints,
    )
    result.parallel_info = _info(used, mode, degraded, fallback)
    return result
