"""Sharded process-parallel PSR: multi-core scale-out of the rank scan.

The PSR scan is sequential on its face -- every row's Poisson-binomial
base depends on every x-tuple mass accumulated above it -- but the
dependency is *summarizable*: the scan state at any row boundary is
(saturation shift, open-mass dict, closed factor product), and all
three are cheap aggregates of the prefix.  This module exploits that to
run PSR over ``P`` processes:

1. **Plan** (coordinator, ``O(n + m·W)`` where ``W`` = number of
   blocks): partition the ranked rows into contiguous fixed-size blocks
   and derive each boundary's shift, open masses and the per-block list
   of x-tuples that *close* inside it.  Blocks past the row where the
   ``k``-th x-tuple saturates are dropped outright (Lemma 2: their rows
   have zero top-k probability).
2. **Pass 1** (parallel): each block's closing masses fold into a
   degree-capped generating polynomial
   (:func:`repro.core.pwr.truncated_factor_product`).
3. **Prefix combine** (coordinator): truncated convolutions turn the
   per-block factors into each block's entry ``closed_dp``
   (:func:`repro.core.pwr.prefix_factor_products`).
4. **Pass 2** (parallel): every block runs the ordinary columnar scan
   (:func:`repro.queries.psr_numpy._scan_numpy`) seeded with its
   boundary state and writes its ρ rows and top-k entries into disjoint
   slices of a shared output buffer.

Row data never crosses a process boundary by pickling: the canonical
columnar arrays are published once per ranked view as
``multiprocessing.shared_memory`` segments (:class:`SharedColumns`) and
workers map them read-only; task payloads are block offsets plus the
O(|open|) boundary state.

Determinism
-----------
The block size is fixed (:data:`DEFAULT_BLOCK_ROWS`, overridable via
``REPRO_BLOCK_ROWS``) and *independent of the worker count*, the plan
is pure coordinator arithmetic, and blocks write disjoint output
slices -- so the backend is bit-reproducible across runs **and** across
worker counts, including the in-process serial fallback.  No worker
holds an RNG.  Against the serial backends the results agree to well
under 1e-9: block-mass aggregation associates floating-point additions
differently than the row-by-row scan (a ~1e-15 effect), so equality is
by tolerance, not bytes.

Fallback
--------
:func:`compute_rank_probabilities_parallel` degrades to an in-process
run of the *same* sharded math (identical bytes) whenever a pool cannot
pay for itself or cannot be built: one resolved worker, a single live
block, shared memory unavailable, or pool setup failure.  The reason is
reported in the result's ``parallel_info`` so sessions can count
fallbacks.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.pwr import prefix_factor_products, truncated_factor_product

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.db.database import RankedDatabase
    from repro.queries.psr import RankProbabilities

#: Rows per shard.  Independent of the worker count so that results are
#: bit-identical no matter how many processes share the work; small
#: enough that ~8 workers stay balanced at n = 100k, large enough that
#: per-task overhead (a future + O(|open|) state pickle) stays under a
#: percent of a block's scan time.  Override with ``REPRO_BLOCK_ROWS``
#: (read per call; tests shrink it to force many-block plans on small
#: inputs).
DEFAULT_BLOCK_ROWS = 8192


def _block_rows() -> int:
    """The configured shard size (``REPRO_BLOCK_ROWS`` or the default)."""
    raw = os.environ.get("REPRO_BLOCK_ROWS")
    if raw is None:
        return DEFAULT_BLOCK_ROWS
    value = int(raw)
    if value <= 0:
        raise ValueError(f"REPRO_BLOCK_ROWS must be positive, got {value}")
    return value


# ---------------------------------------------------------------------------
# Worker-count resolution (mirrors the backend knob in core/backend.py)
# ---------------------------------------------------------------------------

_workers_override: Optional[int] = None


def _validate_workers(value: int) -> int:
    if value < 1:
        raise ValueError(f"worker count must be >= 1, got {value}")
    return value


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Precedence: the scoped override (:func:`set_workers` /
    :func:`use_workers`), then an explicit ``workers=`` argument, then
    the ``REPRO_WORKERS`` environment variable, then
    ``os.cpu_count()``.  The override outranks the explicit argument on
    purpose: callers such as :class:`~repro.queries.engine.QuerySession`
    always pass their *configured default* explicitly, and the override
    exists precisely so a narrower scope (one service request wrapped in
    ``use_workers(spec.workers)``) can retarget that default without
    re-threading a parameter through every layer.
    """
    if _workers_override is not None:
        return _workers_override
    if workers is not None:
        return _validate_workers(workers)
    raw = os.environ.get("REPRO_WORKERS")
    if raw is not None:
        return _validate_workers(int(raw))
    return os.cpu_count() or 1


def set_workers(workers: Optional[int]) -> None:
    """Set (or clear, with ``None``) the process-wide worker override."""
    global _workers_override
    _workers_override = (
        None if workers is None else _validate_workers(workers)
    )


@contextmanager
def use_workers(workers: Optional[int]) -> Iterator[Optional[int]]:
    """Temporarily set the process-wide worker override.

    ``None`` is a no-op passthrough so callers can wrap unconditionally
    (``with use_workers(spec.workers): ...``).
    """
    global _workers_override
    previous = _workers_override
    if workers is not None:
        _workers_override = _validate_workers(workers)
    try:
        yield _workers_override
    finally:
        _workers_override = previous


# ---------------------------------------------------------------------------
# Shared-memory registry (coordinator side)
# ---------------------------------------------------------------------------

#: Picklable handle to one shared-memory-backed ndarray:
#: ``(segment name, shape, dtype string)``.
ArraySpec = Tuple[str, Tuple[int, ...], str]


class _Segment:
    """One shared-memory segment mirroring a NumPy array."""

    def __init__(self, array: np.ndarray) -> None:
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1)
        )
        self.spec: ArraySpec = (
            self.shm.name, tuple(array.shape), str(array.dtype)
        )
        view: np.ndarray = np.ndarray(
            array.shape, dtype=array.dtype, buffer=self.shm.buf
        )
        view[...] = array

    def array(self) -> np.ndarray:
        """The coordinator-side view of the segment."""
        name, shape, dtype = self.spec
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf)

    def destroy(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


class SharedColumns:
    """The PSR input columns of one ranked view, published as shm.

    Holds the existential-probability and x-tuple-index columns.
    Instances are cached per ranked view (:func:`shared_columns`) so the
    one-time copy into shared memory amortizes over every query the
    session runs against that view.
    """

    def __init__(self, probabilities: np.ndarray, xtuples: np.ndarray) -> None:
        self.probabilities = _Segment(np.ascontiguousarray(probabilities))
        self.xtuples = _Segment(np.ascontiguousarray(xtuples))

    def specs(self) -> Tuple[ArraySpec, ArraySpec]:
        """The picklable ``(probabilities, xtuple indices)`` handles."""
        return self.probabilities.spec, self.xtuples.spec

    def destroy(self) -> None:
        """Release both segments."""
        self.probabilities.destroy()
        self.xtuples.destroy()


_column_cache: Dict[int, SharedColumns] = {}


def _release_columns(key: int) -> None:
    """Finalizer: drop a ranked view's cached segments."""
    columns = _column_cache.pop(key, None)
    if columns is not None:
        columns.destroy()


def _release_all_columns() -> None:
    """``atexit`` hook: unlink every cached segment."""
    for key in list(_column_cache):
        _release_columns(key)


atexit.register(_release_all_columns)


def shared_columns(ranked: "RankedDatabase") -> SharedColumns:
    """The (cached) shared-memory mirror of a ranked view's columns.

    The cache entry is keyed by object identity and torn down by a
    ``weakref.finalize`` when the ranked view is garbage-collected, so
    id reuse cannot alias two views and segments never outlive their
    data (a process-exit ``atexit`` sweep catches the remainder).
    """
    key = id(ranked)
    columns = _column_cache.get(key)
    if columns is None:
        probabilities, xtuples = ranked.psr_columns()
        columns = SharedColumns(probabilities, xtuples)
        _column_cache[key] = columns
        weakref.finalize(ranked, _release_columns, key)
    return columns


# ---------------------------------------------------------------------------
# Worker-side attach
# ---------------------------------------------------------------------------


def _attach(spec: ArraySpec) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map a segment by spec inside a worker (transient, per task).

    Mappings are per task and closed by the caller: caching them would
    pin the coordinator's already-unlinked output buffers in worker
    memory for the pool's lifetime, and an attach is microseconds
    against a block scan.  Attaching re-registers the name with the
    ``resource_tracker`` the pool shares with the coordinator; that is
    a set-membership no-op there, and the coordinator's eventual
    ``unlink`` performs the single matching unregister -- workers must
    *not* unregister themselves or they would strip the coordinator's
    entry.
    """
    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_size = 0


def _pick_context() -> multiprocessing.context.BaseContext:
    """The preferred multiprocessing start method available on the host.

    Forkserver first (fast spawns, no inherited locks), then spawn
    (portable), then fork.
    """
    available = multiprocessing.get_all_start_methods()
    for method in ("forkserver", "spawn", "fork"):
        if method in available:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The process pool, (re)built when the requested size changes."""
    global _pool, _pool_size
    if _pool is not None and _pool_size == workers:
        return _pool
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
    _pool = ProcessPoolExecutor(
        max_workers=workers, mp_context=_pick_context()
    )
    _pool_size = workers
    return _pool


def shutdown_pool() -> None:
    """Tear down the worker pool (tests and ``atexit``)."""
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_size = 0


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# The block plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Block:
    """One shard of the ranked row space with its boundary scan state.

    ``open_items`` are the x-tuples straddling the block's start row --
    ``(dense index, accumulated mass)`` in first-appearance order, which
    is exactly the insertion order the serial scan's open dict would
    hold.  ``close_masses`` are the total masses of x-tuples whose last
    member falls inside the block without saturating, in closing order.
    """

    start: int
    stop: int
    shift: int
    open_items: Tuple[Tuple[int, float], ...]
    close_masses: Tuple[float, ...]


@dataclass(frozen=True)
class _Plan:
    """The full shard decomposition of one PSR run.

    ``blocks`` covers only *live* rows: planning stops at the first
    block boundary whose saturation shift reaches ``k``, because the
    serial scan would have early-stopped before it (Lemma 2).
    """

    blocks: Tuple[_Block, ...]
    truncated: bool


def _plan_blocks(
    probabilities: np.ndarray,
    xtuple_indices: np.ndarray,
    num_xtuples: int,
    k: int,
    block_rows: int,
) -> _Plan:
    """Partition the ranked rows and derive each block's boundary state.

    All quantities are prefix aggregates: per-x-tuple member counts and
    mass sums accumulated block by block (``np.bincount`` adds in row
    order, matching the scan).  Masses are clamped at the boundary
    rather than per row; the two associate additions differently, a
    ~1e-15 effect far below the backends' 1e-9 cross-check tolerance,
    and identical across worker counts since the plan never depends on
    them.
    """
    from repro.db.database import SATURATION_EPSILON

    n = int(probabilities.shape[0])
    m = num_xtuples
    rows = np.arange(n, dtype=np.int64)
    total_counts = np.bincount(xtuple_indices, minlength=m)
    total_mass = np.bincount(
        xtuple_indices, weights=probabilities, minlength=m
    )
    first_row = np.full(m, n, dtype=np.int64)
    np.minimum.at(first_row, xtuple_indices, rows)
    last_row = np.full(m, -1, dtype=np.int64)
    np.maximum.at(last_row, xtuple_indices, rows)
    # X-tuples that fold into the closed product (last member scanned,
    # never saturates), keyed by the row where the fold happens.
    closer_mask = (last_row >= 0) & (total_mass < 1.0 - SATURATION_EPSILON)
    closers = np.nonzero(closer_mask)[0]
    closers = closers[np.argsort(last_row[closers], kind="stable")]
    close_rows = last_row[closers]
    close_mass = total_mass[closers]

    blocks: List[_Block] = []
    mass = np.zeros(m, dtype=np.float64)
    counts = np.zeros(m, dtype=np.int64)
    truncated = False
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        clamped = np.minimum(mass, 1.0)
        saturated = clamped >= 1.0 - SATURATION_EPSILON
        shift = int(np.count_nonzero(saturated))
        if shift >= k:
            truncated = True
            break
        straddling = np.nonzero((counts > 0) & (counts < total_counts))[0]
        straddling = straddling[
            np.argsort(first_row[straddling], kind="stable")
        ]
        open_items = tuple(
            (int(l), 1.0 if saturated[l] else float(clamped[l]))
            for l in straddling
        )
        lo, hi = np.searchsorted(close_rows, (start, stop))
        blocks.append(
            _Block(
                start=start,
                stop=stop,
                shift=shift,
                open_items=open_items,
                close_masses=tuple(float(q) for q in close_mass[lo:hi]),
            )
        )
        window = slice(start, stop)
        mass += np.bincount(
            xtuple_indices[window],
            weights=probabilities[window],
            minlength=m,
        )
        counts += np.bincount(xtuple_indices[window], minlength=m)
    return _Plan(blocks=tuple(blocks), truncated=truncated)


# ---------------------------------------------------------------------------
# The two parallel passes (each runs identically in-pool or in-process)
# ---------------------------------------------------------------------------


def _block_factors_task(
    k: int, masses: List[Tuple[float, ...]]
) -> List[np.ndarray]:
    """Pass 1: the truncated closing factor of each assigned block."""
    return [truncated_factor_product(block, k) for block in masses]


def _scan_block(
    probabilities: np.ndarray,
    xtuple_indices: np.ndarray,
    num_xtuples: int,
    k: int,
    start: int,
    stop: int,
    shift: int,
    open_items: Tuple[Tuple[int, float], ...],
    prefix: np.ndarray,
    out_rho: np.ndarray,
    out_topk: np.ndarray,
) -> int:
    """Pass 2 for one block: seed the columnar scan and emit its rows.

    Reuses :func:`repro.queries.psr_numpy._scan_numpy` verbatim -- the
    block's boundary state is exactly a :class:`ScanCheckpoint`-shaped
    state, so the serial kernel needs no changes to run a shard.
    Returns the row where the scan ended (``stop``, except for Lemma 2
    early stops in the final live block).
    """
    from repro.queries.psr_numpy import (
        _NumpyScanState,
        _RowEmitter,
        _open_product,
        _scan_numpy,
    )

    open_masses = dict(open_items)
    state = _NumpyScanState(
        row=start,
        shift=shift,
        open_masses=open_masses,
        p_open=_open_product(open_masses, -1),
        closed_dp=prefix.copy(),
        remaining=np.bincount(
            xtuple_indices[start:], minlength=num_xtuples
        ).tolist(),
    )
    emitter = _RowEmitter(start, stop - start, k)
    end = _scan_numpy(
        probabilities[start:stop].tolist(),
        xtuple_indices[start:stop].tolist(),
        k,
        state,
        stop,
        emitter,
        None,
        base=start,
    )
    emitter.flush(state.closed_dp)
    window, topk = emitter.finalize(probabilities, end)
    out_rho[start:end] = window.materialize()
    out_topk[start:end] = topk
    return end


def _scan_block_task(
    column_specs: Tuple[ArraySpec, ArraySpec],
    out_rho_spec: ArraySpec,
    out_topk_spec: ArraySpec,
    num_xtuples: int,
    k: int,
    start: int,
    stop: int,
    shift: int,
    open_items: Tuple[Tuple[int, float], ...],
    prefix: np.ndarray,
) -> int:
    """Worker entry point for pass 2: attach shm views, scan one block."""
    handles = [
        _attach(spec)
        for spec in (
            column_specs[0], column_specs[1], out_rho_spec, out_topk_spec
        )
    ]
    try:
        probabilities, xtuple_indices, out_rho, out_topk = (
            array for _, array in handles
        )
        return _scan_block(
            probabilities,
            xtuple_indices,
            num_xtuples,
            k,
            start,
            stop,
            shift,
            open_items,
            prefix,
            out_rho,
            out_topk,
        )
    finally:
        for shm, _ in handles:
            shm.close()


def _chunk(count: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into at most ``parts`` contiguous spans."""
    parts = max(1, min(parts, count))
    bounds = np.linspace(0, count, parts + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(parts)
        if bounds[i] < bounds[i + 1]
    ]


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def compute_rank_probabilities_parallel(
    ranked: "RankedDatabase", k: int, workers: Optional[int] = None
) -> "RankProbabilities":
    """Sharded PSR over a pre-sorted database (parallel backend).

    Returns the same :class:`repro.queries.psr.RankProbabilities` the
    serial backends produce (within 1e-9 on every entry), with
    checkpoints at block boundaries -- so the delta engine replays at
    most one block -- and a ``parallel_info`` dict describing how the
    run executed: ``{"workers", "blocks", "mode", "fallback"}`` where
    ``mode`` is ``"pool"`` or ``"serial"`` and ``fallback`` names the
    reason a pool was not used (``None`` when it was).
    """
    from repro.queries.deterministic import require_valid_k
    from repro.queries.psr import RankProbabilities, ScanCheckpoint

    require_valid_k(k)
    probabilities, xtuple_indices = ranked.psr_columns()
    n = int(probabilities.shape[0])
    m = ranked.num_xtuples
    plan = _plan_blocks(probabilities, xtuple_indices, m, k, _block_rows())
    requested = resolve_workers(workers)

    if not plan.blocks:
        result = RankProbabilities(
            k=k,
            ranked=ranked,
            cutoff=0,
            rho_prefix=np.zeros((0, k)),
            topk_prefix=np.zeros(0),
            backend="parallel",
            checkpoints=[],
        )
        result.parallel_info = {
            "workers": 1, "blocks": 0, "mode": "serial", "fallback": "empty",
        }
        return result

    fallback: Optional[str] = None
    if requested <= 1:
        fallback = "workers <= 1"
    elif len(plan.blocks) == 1:
        fallback = "single live block"

    pool: Optional[ProcessPoolExecutor] = None
    columns: Optional[SharedColumns] = None
    if fallback is None:
        try:
            columns = shared_columns(ranked)
        except (OSError, ValueError, RuntimeError) as exc:
            fallback = f"shared memory unavailable: {exc}"
    if fallback is None:
        try:
            pool = _get_pool(requested)
        except (OSError, ValueError, RuntimeError) as exc:
            fallback = f"pool unavailable: {exc}"

    blocks = plan.blocks
    live_rows = blocks[-1].stop

    # Pass 1 + prefix combine: the entry closed_dp of every block.  The
    # final block's own factor is never consumed, so it is not computed.
    interior = [block.close_masses for block in blocks[:-1]]
    factors: List[np.ndarray]
    if pool is not None and interior:
        spans = _chunk(len(interior), _pool_size)
        futures = [
            pool.submit(_block_factors_task, k, interior[lo:hi])
            for lo, hi in spans
        ]
        factors = [f for future in futures for f in future.result()]
    else:
        factors = _block_factors_task(k, interior)
    prefixes = prefix_factor_products(factors, k)

    # Pass 2: scan every live block against its boundary state.
    ends: List[int]
    if pool is not None and columns is not None:
        out_rho = _Segment(np.zeros((live_rows, k), dtype=np.float64))
        out_topk = _Segment(np.zeros(live_rows, dtype=np.float64))
        try:
            task_futures: List["Future[int]"] = [
                pool.submit(
                    _scan_block_task,
                    columns.specs(),
                    out_rho.spec,
                    out_topk.spec,
                    m,
                    k,
                    block.start,
                    block.stop,
                    block.shift,
                    block.open_items,
                    prefixes[b],
                )
                for b, block in enumerate(blocks)
            ]
            ends = [future.result() for future in task_futures]
            rho = np.array(out_rho.array()[: ends[-1]])
            topk = np.array(out_topk.array()[: ends[-1]])
        finally:
            out_rho.destroy()
            out_topk.destroy()
        mode = "pool"
        used = _pool_size
    else:
        rho_full = np.zeros((live_rows, k), dtype=np.float64)
        topk_full = np.zeros(live_rows, dtype=np.float64)
        ends = [
            _scan_block(
                probabilities,
                xtuple_indices,
                m,
                k,
                block.start,
                block.stop,
                block.shift,
                block.open_items,
                prefixes[b],
                rho_full,
                topk_full,
            )
            for b, block in enumerate(blocks)
        ]
        rho = rho_full[: ends[-1]]
        topk = topk_full[: ends[-1]]
        mode = "serial"
        used = 1

    # Only the final live block may hit Lemma 2's early stop: every
    # earlier boundary's shift was checked below k by the planner.
    for block, end in zip(blocks[:-1], ends[:-1]):
        if end != block.stop:  # pragma: no cover - planner invariant
            raise AssertionError(
                f"non-final block [{block.start}, {block.stop}) "
                f"stopped early at {end}"
            )
    cutoff = ends[-1]

    checkpoints = [
        ScanCheckpoint(
            row=block.start,
            shift=block.shift,
            closed_dp=prefixes[b].copy(),
            open_masses=dict(block.open_items),
        )
        for b, block in enumerate(blocks)
        if 0 < block.start <= cutoff
    ]
    result = RankProbabilities(
        k=k,
        ranked=ranked,
        cutoff=cutoff,
        rho_prefix=rho,
        topk_prefix=topk,
        backend="parallel",
        checkpoints=checkpoints,
    )
    result.parallel_info = {
        "workers": used,
        "blocks": len(blocks),
        "mode": mode,
        "fallback": fallback,
    }
    return result
