"""Unified entry point for PWS-quality computation.

``compute_quality(db, k)`` is what most users want: it sorts the
database (or accepts a pre-sorted view), runs the requested algorithm,
and returns the score.  ``compute_quality_detailed`` returns the
algorithm-specific result object with all intermediates.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.core.montecarlo import (
    MonteCarloQualityResult,
    compute_quality_montecarlo,
)
from repro.core.pw import PWQualityResult, compute_quality_pw
from repro.core.pwr import PWRQualityResult, compute_quality_pwr
from repro.core.tp import TPQualityResult, compute_quality_tp
from repro.db.database import ProbabilisticDatabase, RankedDatabase
from repro.db.ranking import RankingFunction

#: The quality algorithms selectable by name.
METHODS = ("tp", "pwr", "pw", "montecarlo")

DatabaseLike = Union[ProbabilisticDatabase, RankedDatabase]

#: What ``compute_quality_detailed`` returns: every algorithm's result
#: object carries ``.quality``; everything else is method-specific.
QualityResult = Union[
    TPQualityResult,
    PWRQualityResult,
    PWQualityResult,
    MonteCarloQualityResult,
]


def _as_ranked(
    db: DatabaseLike, ranking: Optional[RankingFunction]
) -> RankedDatabase:
    if isinstance(db, RankedDatabase):
        if ranking is not None and ranking is not db.ranking:
            raise ValueError(
                "cannot override the ranking of an already-ranked database"
            )
        return db
    return db.ranked(ranking)


def compute_quality_detailed(
    db: DatabaseLike,
    k: int,
    method: str = "tp",
    ranking: Optional[RankingFunction] = None,
    **kwargs: Any,
) -> "QualityResult":
    """Compute the PWS-quality, returning the full result object.

    Parameters
    ----------
    db:
        A :class:`ProbabilisticDatabase` or a pre-sorted
        :class:`RankedDatabase`.
    k:
        Top-k parameter of the query whose quality is measured.
    method:
        One of ``"tp"`` (default, ``O(kn)``), ``"pwr"`` (pw-result
        enumeration), ``"pw"`` (possible-world enumeration) or
        ``"montecarlo"`` (sampling estimate).
    ranking:
        Ranking function; defaults to ranking by numeric value.
    kwargs:
        Forwarded to the selected algorithm (e.g. ``collect=True`` for
        PWR, ``num_samples=...`` for Monte Carlo).
    """
    ranked = _as_ranked(db, ranking)
    if method == "tp":
        return compute_quality_tp(ranked, k, **kwargs)
    if method == "pwr":
        return compute_quality_pwr(ranked, k, **kwargs)
    if method == "pw":
        return compute_quality_pw(ranked, k, **kwargs)
    if method == "montecarlo":
        return compute_quality_montecarlo(ranked, k, **kwargs)
    raise ValueError(f"unknown quality method {method!r}; pick one of {METHODS}")


def compute_quality(
    db: DatabaseLike,
    k: int,
    method: str = "tp",
    ranking: Optional[RankingFunction] = None,
    **kwargs,
) -> float:
    """Compute the PWS-quality score ``S(D, Q)`` (a float ``<= 0``)."""
    return compute_quality_detailed(db, k, method, ranking, **kwargs).quality
