"""Compute-backend selection: NumPy, reference Python, or multi-process.

The hot PSR kernel exists three times (TP weights and the per-x-tuple
aggregations twice):

* ``"numpy"`` -- columnar, array-vectorized kernels; the default
  whenever NumPy imports.  This is the single-core production path.
* ``"python"`` -- the original scalar reference implementation.  It is
  kept runnable forever so the vectorized kernels can be
  cross-validated against it (and both against the exponential
  possible-world oracles) on every change.
* ``"parallel"`` -- the sharded multi-process PSR backend
  (:mod:`repro.core.parallel`): contiguous rank blocks scanned by a
  ``multiprocessing`` pool over shared-memory column views, combined
  by a truncated-convolution prefix scan.  Non-PSR kernels (weights,
  quality aggregation) run their columnar single-core variants under
  this backend -- the PSR pass is the scaling bottleneck.

Selection, in decreasing precedence:

1. an explicit ``backend="..."`` argument on the kernel entry points
   (:func:`repro.queries.psr.compute_rank_probabilities`,
   :func:`repro.core.weights.compute_weights`,
   :func:`repro.core.tp.compute_quality_tp`) or on
   :class:`repro.queries.engine.QuerySession`;
2. the process-wide default set via :func:`set_backend` /
   :func:`use_backend`;
3. the ``REPRO_BACKEND`` environment variable at import time;
4. ``"numpy"``.

The parallel backend's worker count is resolved separately (the
``REPRO_WORKERS`` environment variable, a ``workers=`` argument, or
the host CPU count -- see :func:`repro.core.parallel.resolve_workers`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: The selectable backends.  NumPy is a hard dependency of the package
#: (the columnar db layer is built on it); the "python" backend selects
#: the scalar reference kernels, not a numpy-free mode.
BACKENDS = ("numpy", "python", "parallel")


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    return name


_current = _validate(os.environ.get("REPRO_BACKEND", "numpy").lower())


def current_backend() -> str:
    """The process-wide default backend name."""
    return _current


def set_backend(name: str) -> None:
    """Set the process-wide default backend (one of :data:`BACKENDS`)."""
    global _current
    _current = _validate(name)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily switch the process-wide default backend."""
    global _current
    previous = _current
    _current = _validate(name)
    try:
        yield _current
    finally:
        _current = previous


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve an explicit ``backend=`` argument against the default."""
    if backend is None:
        return _current
    return _validate(backend)
