"""The single registry of session/operational counter names.

Every cost / cache / resilience counter a
:class:`~repro.queries.engine.QuerySession` accumulates -- and that the
service façade surfaces as per-request deltas in
:class:`~repro.api.results.ServiceResult` envelopes -- is declared
here, once.  The static analyzer (:mod:`repro.tooling.lint`, rule
REP007) rejects any ``psr_*`` attribute introduced elsewhere in the
package that is not declared in this registry, so a new counter cannot
ship half-wired (accumulated in the engine but invisible in result
envelopes, or vice versa).

To add a counter: declare it in :data:`SESSION_COUNTERS` (ordering is
the envelope's reporting order), initialize it in
``QuerySession.__init__``, carry it in ``QuerySession._adopt_counters``
-- REP007 plus the engine's own tests keep the three spots in sync.
"""

from __future__ import annotations

from typing import Tuple

#: Cumulative counters of one :class:`~repro.queries.engine.QuerySession`,
#: in envelope reporting order.  Cache behaviour first, kernel routing
#: second, resilience last.
SESSION_COUNTERS: Tuple[str, ...] = (
    "psr_hits",
    "psr_misses",
    "psr_patches",
    "psr_prefills",
    "cold_derives",
    "delta_derives",
    "psr_parallel_passes",
    "psr_parallel_fallbacks",
    "psr_retries",
    "psr_pool_restarts",
    "psr_degraded",
)

#: Counter names with the ``psr_`` prefix REP007 polices.
PSR_COUNTERS: Tuple[str, ...] = tuple(
    name for name in SESSION_COUNTERS if name.startswith("psr_")
)
