"""The single registry of session/operational counter names.

Every cost / cache / resilience counter a
:class:`~repro.queries.engine.QuerySession` accumulates -- and that the
service façade surfaces as per-request deltas in
:class:`~repro.api.results.ServiceResult` envelopes -- is declared
here, once.  The static analyzer (:mod:`repro.tooling.lint`, rule
REP007) rejects any ``psr_*`` attribute introduced elsewhere in the
package that is not declared in this registry, so a new counter cannot
ship half-wired (accumulated in the engine but invisible in result
envelopes, or vice versa).

To add a counter: declare it in :data:`SESSION_COUNTERS` (ordering is
the envelope's reporting order), initialize it in
``QuerySession.__init__``, carry it in ``QuerySession._adopt_counters``
-- REP007 plus the engine's own tests keep the three spots in sync.
"""

from __future__ import annotations

from typing import Tuple

#: Cumulative counters of one :class:`~repro.queries.engine.QuerySession`,
#: in envelope reporting order.  Cache behaviour first, kernel routing
#: second, resilience last.
SESSION_COUNTERS: Tuple[str, ...] = (
    "psr_hits",
    "psr_misses",
    "psr_patches",
    "psr_prefills",
    "cold_derives",
    "delta_derives",
    "psr_parallel_passes",
    "psr_parallel_fallbacks",
    "psr_retries",
    "psr_pool_restarts",
    "psr_degraded",
)

#: Cumulative counters of one :class:`~repro.store.SnapshotStore`, in
#: envelope reporting order.  Unlike the session counters these live on
#: the *store* (one per store directory, shared by every session served
#: over it): segments durably committed, journal records re-executed at
#: open, and files quarantined by verification failures.  The service
#: façade surfaces them as per-request deltas next to the session
#: counters whenever the pool is store-backed, so replays and
#: quarantines are visible in result envelopes (and the CLI's JSON
#: output) without log access.  The multi-writer counters follow:
#: journal checkpoints performed, segment files reclaimed by two-phase
#: GC, contended cross-process lock acquisitions (a first non-blocking
#: attempt failed and the bounded wait ran), and coalesced group-commit
#: journal flushes (``durability="batch"`` only).
STORE_COUNTERS: Tuple[str, ...] = (
    "psr_store_writes",
    "psr_store_replays",
    "psr_store_quarantined",
    "psr_store_compactions",
    "psr_store_gc_unlinks",
    "psr_store_lock_waits",
    "psr_store_group_flushes",
)

#: Counter names with the ``psr_`` prefix REP007 polices.
PSR_COUNTERS: Tuple[str, ...] = tuple(
    name
    for name in SESSION_COUNTERS + STORE_COUNTERS
    if name.startswith("psr_")
)
