"""Entropy helpers shared by the quality algorithms.

The PWS-quality (Definition 4) is ``Σ_r Pr(r)·log2 Pr(r)`` -- the
*negated* Shannon entropy of the pw-result distribution.  Its maximum is
zero (a single certain result); with ``N`` equiprobable results it
bottoms out at ``-log2 N``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable

if TYPE_CHECKING:  # entropy stays numpy-free at import time by design
    import numpy as np

#: Probabilities at or below this value contribute nothing to entropy
#: terms; guards ``log2`` against zero and negative round-off.
PROBABILITY_FLOOR = 0.0


def xlog2x(x: float) -> float:
    """The paper's ``Y(x) = x · log2(x)``, with ``Y(0) = 0``.

    Negative inputs (possible from float cancellation when an x-tuple's
    probabilities sum to one) are clamped to zero.
    """
    if x <= PROBABILITY_FLOOR:
        return 0.0
    return x * math.log2(x)


def xlog2x_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`xlog2x` over a NumPy array (``Y(0) = 0``)."""
    import numpy as np

    positive = values > PROBABILITY_FLOOR
    out = np.zeros_like(values)
    safe = np.where(positive, values, 1.0)
    out[positive] = (safe * np.log2(safe))[positive]
    return out


def negated_entropy(probabilities: Iterable[float]) -> float:
    """``Σ p·log2 p`` over the given probabilities (zero terms skipped).

    This is the PWS-quality of a result distribution; always <= 0.
    Uses ``math.fsum`` for a numerically robust total.
    """
    return math.fsum(xlog2x(p) for p in probabilities)


def entropy(probabilities: Iterable[float]) -> float:
    """Shannon entropy in bits (the negation of :func:`negated_entropy`)."""
    return -negated_entropy(probabilities)


def quality_of_distribution(distribution: Dict[object, float]) -> float:
    """PWS-quality of an explicit result distribution (Definition 4)."""
    return negated_entropy(distribution.values())


def quality_lower_bound(num_results: int) -> float:
    """``-log2 N``: the lowest quality any ``N``-result distribution allows."""
    if num_results < 1:
        raise ValueError("a result distribution holds at least one result")
    return -math.log2(num_results)
