"""Debug-mode lock-order tracking for the serving layers.

The serving stack holds locks from three subsystems at once: the
:class:`~repro.api.pool.SessionPool` admission semaphore, per-snapshot
session locks, the pool's registry lock, and the worker-pool lifecycle
lock of :mod:`repro.core.parallel`.  A deadlock between them would be a
probabilistic production incident -- two threads interleaving
acquisitions in opposite orders -- that no unit test reliably
reproduces.  This module makes the order a *declared invariant*: every
participating lock carries a rank, and in debug mode
(``REPRO_DEBUG_LOCKS=1``, or :func:`enable` from a test) each
acquisition is checked against the locks the thread already holds.  An
acquisition whose rank is not strictly greater than every held rank
raises :class:`~repro.exceptions.LockOrderError` immediately -- at the
inversion site, on the first run, instead of as a once-a-month hang.

The declared hierarchy (outermost first)::

    RANK_ADMISSION      SessionPool admission semaphore
    RANK_SNAPSHOT       per-snapshot session locks
    RANK_STORE          SnapshotStore directory lock
    RANK_STORE_FILE     cross-process store file lock (fcntl.flock)
    RANK_POOL_REGISTRY  SessionPool bookkeeping lock
    RANK_WORKER_POOL    core.parallel worker-pool lifecycle lock

The cross-process file lock is not a ``threading`` primitive -- it is
an ``fcntl.flock`` on the store root, owned by
:mod:`repro.store.locks` (this module must stay fcntl-free; REP012
scopes all fcntl use to ``repro.store``).  It still participates in
the hierarchy through :func:`check_acquirable` / :func:`note_acquired`
/ :func:`note_released`, so a thread that takes the file lock while
holding a lock that ranks above it fails loudly in debug mode exactly
like a misordered mutex would.

With tracking disabled (the default), :class:`OrderedLock` and
:class:`OrderedSemaphore` delegate straight to their ``threading``
primitives -- one attribute indirection and one flag test per
acquisition.
"""

from __future__ import annotations

import os
import threading
from typing import List, Optional, Tuple

from repro.exceptions import LockOrderError

#: Declared ranks of the serving stack's lock hierarchy, outermost
#: (acquired first) to innermost.  Gaps leave room for future layers.
RANK_ADMISSION = 10
RANK_SNAPSHOT = 20
RANK_STORE = 25
RANK_STORE_FILE = 27
RANK_POOL_REGISTRY = 30
RANK_WORKER_POOL = 40


def _env_enabled() -> bool:
    return os.environ.get("REPRO_DEBUG_LOCKS", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


#: Process-wide tracking flag; reads are unsynchronized on purpose (a
#: torn read merely delays enablement by one acquisition).
_enabled: bool = _env_enabled()


def enable() -> None:
    """Turn tracking on for this process (tests, diagnosis sessions)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracking off and forget every thread's recorded holdings."""
    global _enabled
    _enabled = False


def tracking_enabled() -> bool:
    """Whether acquisitions are currently being order-checked."""
    return _enabled


class _Holdings(threading.local):
    """Per-thread stack of ``(rank, name, id)`` for held locks."""

    def __init__(self) -> None:
        self.stack: List[Tuple[int, str, int]] = []


_holdings = _Holdings()


def held_locks() -> List[Tuple[int, str]]:
    """The calling thread's currently held locks as ``(rank, name)``."""
    return [(rank, name) for rank, name, _ in _holdings.stack]


def _check_order(rank: int, name: str, token: int) -> None:
    for held_rank, held_name, held_token in _holdings.stack:
        if held_token == token:
            raise LockOrderError(
                f"thread {threading.current_thread().name!r} re-acquired "
                f"non-reentrant lock {name!r} (rank {rank})"
            )
        if held_rank >= rank:
            raise LockOrderError(
                f"thread {threading.current_thread().name!r} acquired "
                f"{name!r} (rank {rank}) while holding {held_name!r} "
                f"(rank {held_rank}); the declared order requires "
                f"strictly increasing ranks"
            )


def _record(rank: int, name: str, token: int) -> None:
    _holdings.stack.append((rank, name, token))


def _forget(token: int) -> None:
    stack = _holdings.stack
    for i in range(len(stack) - 1, -1, -1):
        if stack[i][2] == token:
            del stack[i]
            return


# ---------------------------------------------------------------------------
# Participation hooks for non-threading locks (the store's file lock)
# ---------------------------------------------------------------------------


def check_acquirable(rank: int, name: str, token: int) -> None:
    """Order-check an acquisition of an external (non-threading) lock.

    Raises :class:`~repro.exceptions.LockOrderError` in debug mode when
    the calling thread already holds a lock of rank ``>= rank`` (or the
    same ``token``); a no-op with tracking disabled.  Call *before*
    blocking on the external primitive.
    """
    if _enabled:
        _check_order(rank, name, token)


def note_acquired(rank: int, name: str, token: int) -> None:
    """Record a successful external-lock acquisition on this thread."""
    if _enabled:
        _record(rank, name, token)


def note_released(token: int) -> None:
    """Drop an external lock from the calling thread's holdings."""
    if _enabled:
        _forget(token)


class OrderedLock:
    """A ``threading.Lock`` that participates in the rank hierarchy.

    Drop-in for the mutexes of the serving stack: same ``acquire`` /
    ``release`` / context-manager surface, plus a rank and a name used
    only when tracking is enabled.
    """

    __slots__ = ("name", "rank", "_lock")

    def __init__(self, name: str, rank: int) -> None:
        self.name = name
        self.rank = rank
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire (``threading.Lock`` semantics), order-checked first."""
        if _enabled:
            _check_order(self.rank, self.name, id(self))
        acquired = self._lock.acquire(blocking, timeout)
        if acquired and _enabled:
            _record(self.rank, self.name, id(self))
        return acquired

    def release(self) -> None:
        """Release and drop the lock from the thread's holdings."""
        self._lock.release()
        if _enabled:
            _forget(id(self))

    def locked(self) -> bool:
        """Whether any thread currently holds the lock."""
        return self._lock.locked()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OrderedLock {self.name!r} rank={self.rank}>"


class OrderedSemaphore:
    """A ``threading.BoundedSemaphore`` with a rank in the hierarchy.

    Unlike a mutex, several threads may hold it at once; each holder's
    slot is tracked per thread, so holding the admission semaphore
    while taking a snapshot lock is legal (rank increases) but the
    reverse order raises.
    """

    __slots__ = ("name", "rank", "_semaphore")

    def __init__(self, name: str, rank: int, value: int) -> None:
        self.name = name
        self.rank = rank
        self._semaphore = threading.BoundedSemaphore(value)

    def acquire(self, blocking: bool = True, timeout: Optional[float] = None) -> bool:
        """Take a slot (``BoundedSemaphore`` semantics), order-checked."""
        if _enabled:
            _check_order(self.rank, self.name, id(self))
        acquired = self._semaphore.acquire(blocking, timeout)
        if acquired and _enabled:
            _record(self.rank, self.name, id(self))
        return acquired

    def release(self) -> None:
        """Return the slot and drop it from the thread's holdings."""
        self._semaphore.release()
        if _enabled:
            _forget(id(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OrderedSemaphore {self.name!r} rank={self.rank}>"
