"""PWR: enumerate pw-results directly, skipping possible worlds.

Algorithm 1 of the paper.  A depth-first search over the rank-sorted
tuples decides, for each tuple, whether it belongs to the current
partial result ``r``.  The crucial observation: while ``|r| < k``, a
scanned tuple that is *not* in ``r`` cannot exist in the underlying
world at all (it would have made the top-k), so each DFS path pins down
exactly the information Lemma 1 needs and the search never touches
tuples ranked below the k-th member of a result.

The module also hosts the *block-factor* kernels of the sharded PSR
backend (:mod:`repro.core.parallel`): degree-capped Poisson-binomial
generating polynomials over per-x-tuple factors, and the truncated
convolutions that combine per-block factors in a prefix scan.  They
live here because they are pw-result mathematics -- the coefficient
``c_s`` of such a polynomial is the probability that exactly ``s``
x-tuples of the folded set contribute a tuple to the possible world's
result prefix.

Beyond the paper's pseudocode, this implementation:

* maintains Lemma 1's probability *incrementally* along the DFS path
  (an ``O(1)`` update per step instead of an ``O(n)`` rescan per
  result);
* is iterative (explicit stack), so deep skip-chains on large inputs
  cannot overflow Python's recursion limit;
* handles *short* results exactly: when x-tuples are incomplete, a
  world may hold fewer than ``k`` real tuples, and the DFS reaches the
  end of the scan with ``|r| < k`` -- the leftover probability mass is
  ``Π e_i · Π (1 - s_l)`` over the uncovered x-tuples;
* prunes zero-probability branches, which subsumes the pseudocode's
  Step 10 ("forced existence") as a special case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.entropy import xlog2x
from repro.db.database import RankedDatabase
from repro.db.tuples import COMPLETENESS_TOLERANCE
from repro.exceptions import ReproError
from repro.queries.deterministic import PWResult, require_valid_k


class ResultLimitExceeded(ReproError):
    """PWR hit the caller-imposed cap on the number of pw-results."""


@dataclass(frozen=True)
class PWRQualityResult:
    """Output of the PWR algorithm.

    ``distribution`` is populated only when the caller asked to collect
    results (it can be huge: up to ``n^k`` entries).
    """

    quality: float
    num_results: int
    distribution: Optional[Dict[PWResult, float]]


def iter_pw_results(
    ranked: RankedDatabase, k: int
) -> Iterator[Tuple[PWResult, float]]:
    """Yield every pw-result with its exact probability (Lemma 1).

    Results are produced in DFS order; each distinct result appears
    exactly once and the probabilities sum to one.
    """
    require_valid_k(k)
    n = ranked.num_tuples
    m = ranked.num_xtuples
    probabilities = ranked.probabilities
    xtuple_indices = ranked.xtuple_indices

    covered = [False] * m
    mass = [0.0] * m
    chosen: list = []  # tids of the current partial result

    # Work stack items:
    #   ("visit", i, prod_e, prod_excl) -- explore tuple index i
    #   ("take", i, l, old_mass)        -- enter t_i into r
    #   ("untake", l)                   -- leave the take-branch subtree
    #   ("setmass", l, value)           -- mass bookkeeping around skips
    work: list = [("visit", 0, 1.0, 1.0)]
    while work:
        item = work.pop()
        tag = item[0]
        if tag == "visit":
            _, i, prod_e, prod_excl = item
            if len(chosen) == k:
                probability = prod_e * prod_excl
                if probability > 0.0:
                    yield tuple(chosen), probability
                continue
            if i == n:
                probability = prod_e * prod_excl
                if probability > 0.0:
                    # Short result: every uncovered x-tuple went null.
                    yield tuple(chosen), probability
                continue
            l = xtuple_indices[i]
            if covered[l]:
                # Step 8: a sibling is already in r, so t_i cannot exist.
                work.append(("visit", i + 1, prod_e, prod_excl))
                continue
            e = probabilities[i]
            old = mass[l]
            remainder = 1.0 - old - e
            # Skip branch (t_i absent).  Pushed first so the take branch
            # is explored first; a remainder of zero means existence is
            # forced (Step 10) and the branch is pruned.
            if remainder > COMPLETENESS_TOLERANCE:
                work.append(("setmass", l, old))
                work.append(
                    ("visit", i + 1, prod_e, prod_excl * remainder / (1.0 - old))
                )
                work.append(("setmass", l, old + e))
            # Take branch (t_i enters r).
            work.append(("untake", l))
            work.append(
                ("visit", i + 1, prod_e * e, prod_excl / (1.0 - old))
            )
            work.append(("take", i, l))
        elif tag == "take":
            _, i, l = item
            covered[l] = True
            chosen.append(ranked.order[i].tid)
        elif tag == "untake":
            covered[item[1]] = False
            chosen.pop()
        else:  # "setmass"
            mass[item[1]] = item[2]


def compute_quality_pwr(
    ranked: RankedDatabase,
    k: int,
    collect: bool = False,
    max_results: Optional[int] = None,
) -> PWRQualityResult:
    """Run PWR and score the pw-result distribution (Definition 4).

    Parameters
    ----------
    ranked:
        Pre-sorted database.
    k:
        Top-k parameter.
    collect:
        Keep the full pw-result distribution (needed to redraw the
        paper's Figures 2-3; costs memory proportional to the number of
        results).
    max_results:
        Optional cap; exceeding it raises :class:`ResultLimitExceeded`.
        Protects benchmark sweeps from the algorithm's exponential tail.
    """
    quality = 0.0
    count = 0
    distribution: Optional[Dict[PWResult, float]] = {} if collect else None
    for result, probability in iter_pw_results(ranked, k):
        quality += xlog2x(probability)
        count += 1
        if distribution is not None:
            distribution[result] = probability
        if max_results is not None and count > max_results:
            raise ResultLimitExceeded(
                f"PWR produced more than {max_results} pw-results"
            )
    return PWRQualityResult(
        quality=quality, num_results=count, distribution=distribution
    )


# ---------------------------------------------------------------------------
# Block-factor kernels for the sharded parallel PSR backend.
#
# A PSR block that fully contains a set of x-tuples contributes the
# degree-capped generating polynomial Π_l ((1 - q_l) + q_l · z) to the
# scan's *closed* factor, where q_l is the x-tuple's total existential
# mass.  Because PSR only ever reads coefficients 0..k-1 (Lemma 2's
# early stop makes higher degrees unreachable), every polynomial here is
# truncated to degree < k and stored as a length-k float64 array.
# ---------------------------------------------------------------------------


def truncated_factor_product(masses: Sequence[float], k: int) -> np.ndarray:
    """Degree-capped product ``Π_l ((1 - q_l) + q_l z)`` as a length-``k`` array.

    ``masses`` are per-x-tuple existential masses in scan-closing order.
    The fold is the serial kernels' closed-factor update, so within one
    block the coefficients match the numpy scan exactly; across blocks
    the coordinator combines factors by :func:`truncated_convolve`,
    which is algebraically identical to continuing the fold and agrees
    with it to well under the backends' 1e-9 cross-check tolerance.
    """
    dp = np.zeros(k, dtype=np.float64)
    dp[0] = 1.0
    for q in masses:
        shifted = dp[:-1] * q
        dp *= 1.0 - q
        dp[1:] += shifted
    return dp


def truncated_convolve(a: np.ndarray, b: np.ndarray, k: int) -> np.ndarray:
    """Polynomial product of two coefficient arrays, truncated to degree < ``k``.

    The result is zero-padded to exactly length ``k`` so that block
    factors stay shape-stable through the coordinator's prefix scan.
    """
    full = np.convolve(a, b)[:k]
    if full.shape[0] < k:
        full = np.pad(full, (0, k - full.shape[0]))
    return full


def prefix_factor_products(factors: Sequence[np.ndarray], k: int) -> list:
    """Exclusive prefix scan of block factors under truncated convolution.

    ``result[b]`` is the combined closed factor of every block *before*
    block ``b`` -- exactly the ``closed_dp`` state a serial scan would
    hold when entering block ``b``'s first row.  ``result[0]`` is the
    unit polynomial.  Returns ``len(factors) + 1`` arrays; the final
    entry is the product over all blocks.
    """
    unit = np.zeros(k, dtype=np.float64)
    unit[0] = 1.0
    prefixes = [unit]
    for factor in factors:
        prefixes.append(truncated_convolve(prefixes[-1], factor, k))
    return prefixes
