"""Cached benchmark workloads.

Dataset generation and ranking are deterministic in their parameters,
so the benchmark sweeps share them through ``lru_cache`` keyed by the
generating parameters -- one 5000-x-tuple sort (about 160 ms) instead
of one per figure point.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.cleaning.model import CleaningProblem, build_cleaning_problem
from repro.core.tp import TPQualityResult, compute_quality_tp
from repro.datasets.mov import generate_mov, mov_ranking
from repro.datasets.synthetic import (
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)
from repro.db.database import ProbabilisticDatabase, RankedDatabase

#: Fixed seeds, one experiment knob each, so every figure sees the same
#: database / costs / sc-probabilities (as in the paper's setup).
DB_SEED = 7
COST_SEED = 11
SC_SEED = 13


@lru_cache(maxsize=None)
def synthetic_db(
    num_xtuples: int,
    sigma: float = 100.0,
    uncertainty: str = "gaussian",
) -> ProbabilisticDatabase:
    """The Section VI synthetic database at a given size/pdf."""
    return generate_synthetic(
        num_xtuples=num_xtuples,
        sigma=sigma,
        uncertainty=uncertainty,
        seed=DB_SEED,
    )


@lru_cache(maxsize=None)
def synthetic_ranked(
    num_xtuples: int,
    sigma: float = 100.0,
    uncertainty: str = "gaussian",
) -> RankedDatabase:
    return synthetic_db(num_xtuples, sigma, uncertainty).ranked()


@lru_cache(maxsize=None)
def mov_db(num_xtuples: int) -> ProbabilisticDatabase:
    return generate_mov(num_xtuples=num_xtuples, seed=DB_SEED)


@lru_cache(maxsize=None)
def mov_ranked(num_xtuples: int) -> RankedDatabase:
    return mov_db(num_xtuples).ranked(mov_ranking())


@lru_cache(maxsize=None)
def synthetic_quality(num_xtuples: int, k: int) -> TPQualityResult:
    return compute_quality_tp(synthetic_ranked(num_xtuples), k)


@lru_cache(maxsize=None)
def mov_quality(num_xtuples: int, k: int) -> TPQualityResult:
    return compute_quality_tp(mov_ranked(num_xtuples), k)


@lru_cache(maxsize=None)
def synthetic_costs(num_xtuples: int) -> Tuple[Tuple[str, int], ...]:
    costs = generate_costs(synthetic_db(num_xtuples), seed=COST_SEED)
    return tuple(sorted(costs.items()))


@lru_cache(maxsize=None)
def mov_costs(num_xtuples: int) -> Tuple[Tuple[str, int], ...]:
    costs = generate_costs(mov_db(num_xtuples), seed=COST_SEED)
    return tuple(sorted(costs.items()))


def sc_probabilities(
    db: ProbabilisticDatabase,
    distribution: str = "uniform",
    low: float = 0.0,
    high: float = 1.0,
    sigma: float = 0.167,
) -> Dict[str, float]:
    """sc-probabilities for a benchmark database (fixed seed)."""
    return generate_sc_probabilities(
        db,
        distribution=distribution,
        seed=SC_SEED,
        low=low,
        high=high,
        sigma=sigma,
    )


def synthetic_cleaning_problem(
    num_xtuples: int,
    k: int,
    budget: int,
    sc_distribution: str = "uniform",
    sc_low: float = 0.0,
    sc_high: float = 1.0,
    sc_sigma: float = 0.167,
) -> CleaningProblem:
    """A Section VI cleaning instance over the synthetic database."""
    db = synthetic_db(num_xtuples)
    return build_cleaning_problem(
        synthetic_quality(num_xtuples, k),
        dict(synthetic_costs(num_xtuples)),
        sc_probabilities(
            db,
            distribution=sc_distribution,
            low=sc_low,
            high=sc_high,
            sigma=sc_sigma,
        ),
        budget,
    )


def mov_cleaning_problem(
    num_xtuples: int,
    k: int,
    budget: int,
    sc_distribution: str = "uniform",
    sc_low: float = 0.0,
    sc_high: float = 1.0,
    sc_sigma: float = 0.167,
) -> CleaningProblem:
    """A cleaning instance over the MOV database."""
    db = mov_db(num_xtuples)
    return build_cleaning_problem(
        mov_quality(num_xtuples, k),
        dict(mov_costs(num_xtuples)),
        sc_probabilities(
            db,
            distribution=sc_distribution,
            low=sc_low,
            high=sc_high,
            sigma=sc_sigma,
        ),
        budget,
    )
