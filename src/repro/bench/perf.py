"""Machine-readable performance snapshots (``run_all.py --json``).

Emits a JSON document with the timings future PRs compare against:

* ``psr``: time per PSR pass for both backends at
  ``n ∈ {1k, 10k, 100k}`` tuples and ``k ∈ {15, 100}``, on an
  *incomplete* synthetic database (completion 0.85) so Lemma 2's early
  stop never truncates the scan -- every pass is a genuine O(kn)
  sweep.  Includes the numpy-over-python speedup per point.
* ``query_session``: cold-vs-warm evaluation through
  :class:`~repro.queries.engine.QuerySession` -- the warm numbers are
  pure answer extraction, demonstrating that repeated same-``k``
  evaluations never re-run PSR.
* ``adaptive_cleaning``: the incremental delta engine measured
  end-to-end -- a greedy adaptive cleaning run with per-probe
  :class:`~repro.db.database.RankDelta` threading versus the identical
  run on the cold-derive path, plus an isolated replay of each round's
  derive/re-evaluate phase (snapshot construction + ranking + PSR +
  quality) on the real probe trace.  The replay also cross-checks the
  delta-derived quality against the cold quality at every round and
  **fails the run** beyond :data:`DERIVE_CHECK_TOLERANCE`, which is
  what lets the CI smoke mode catch kernel regressions.
* ``service_batch``: :meth:`repro.api.service.TopKService.batch` (one
  shared max-k PSR pass for ``m`` mixed-``k`` requests) versus the
  same ``m`` requests answered by independent cold
  :class:`~repro.queries.engine.QuerySession` evaluations.  Every
  batch answer is cross-checked against its independent twin and the
  run **fails** on any disagreement -- the per-push CI gate for the
  prefix-restriction sharing path.
* ``pool_contention``: warm-path request throughput through a shared
  :class:`~repro.api.pool.SessionPool`, single-threaded versus a
  thread group hammering the same snapshots -- measures the lease /
  LRU bookkeeping overhead under contention (correctness under
  concurrency is covered by ``tests/test_service_pool.py``).
* ``parallel_scaling``: the sharded process-parallel PSR backend
  swept over worker counts at ``n ∈ {100k, 1M}``, each point
  cross-checked against the serial numpy kernel within 1e-9 (the run
  fails on disagreement).  Records the measuring host's physical core
  count next to every speedup -- a 1-core container honestly reports
  oversubscribed numbers rather than fabricating scaling.
* ``resilience``: the supervised parallel pass timed fault-free,
  recovering from an injected worker crash (pool rebuild + block
  retry), and degrading to the in-process serial tier after retry
  exhaustion -- every faulted answer cross-checked against the serial
  numpy kernel within 1e-9 (the run fails on disagreement), so the
  recovery overheads are measured on passes that provably healed.

The pure-Python backend is skipped above ``PYTHON_BACKEND_MAX_TUPLES``
tuples when ``--quick`` is requested; the full snapshot runs it
everywhere.  ``--smoke`` shrinks every section to n = 500 so the whole
snapshot runs in seconds on every push.
"""

from __future__ import annotations

import json
import os
import platform
import random
import statistics
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.pool import SessionPool
from repro.api.service import TopKService
from repro.api.specs import BatchSpec, QuerySpec
from repro.bench.harness import time_call
from repro.cleaning.adaptive import clean_adaptively
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.model import build_cleaning_problem
from repro.core.backend import BACKENDS
from repro.core.tp import compute_quality_tp
from repro.datasets.synthetic import (
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)
from repro.db.database import ProbabilisticDatabase, RankedDatabase
from repro.api.results import ServiceResult
from repro.queries.engine import EvaluationReport, QuerySession
from repro.queries.psr import compute_rank_probabilities

#: Snapshot grid: total tuple counts and top-k parameters.
SNAPSHOT_SIZES = (1_000, 10_000, 100_000)
SNAPSHOT_KS = (15, 100)

#: Bars per x-tuple in the snapshot database (n = m · bars).
BARS = 10

#: Completion probability of the snapshot database; < 1 disables the
#: Lemma 2 early stop so the scan covers all n tuples.
COMPLETION = 0.85

#: --quick skips the python backend above this size (it is ~10s per
#: pass at n = 100k; the numpy backend still covers the full grid).
PYTHON_BACKEND_MAX_TUPLES = 10_000

DB_SEED = 7

#: Adaptive-cleaning section: sizes, top-k, probing budget and seeds.
#: The budget follows the paper's Section VI sweeps (absolute budgets
#: up to ~100 for databases an order of magnitude larger), and the
#: complete database is the natural cleaning workload -- collapsing an
#: entity to a certain reading keeps the delta window confined to the
#: entity's own uncertainty interval.
ADAPTIVE_SIZES = (10_000, 100_000)
ADAPTIVE_K = 100
#: Paper-proportional probing budget: Section VI sweeps budgets up to
#: ~100 on a 5000-x-tuple database (C/m up to 0.02); the snapshot sits
#: mid-sweep, in the regime the paper motivates -- probes (phone
#: calls, sensor polls) are expensive, so a round cleans a handful of
#: entities while the re-evaluation has to keep up.
ADAPTIVE_BUDGET = 10
COST_SEED = 11
SC_SEED = 13
PROBE_SEED = 17

#: Delta-vs-cold quality disagreement that fails the snapshot (and the
#: CI smoke run) outright.
DERIVE_CHECK_TOLERANCE = 1e-9

#: Batch section: requests per batch and the k values they cycle over.
BATCH_M = 16
BATCH_KS = (15, 25, 50, 100)

#: Contention section: worker threads and warm requests per measurement.
CONTENTION_THREADS = 4
CONTENTION_OPS = 400

#: Resilience section: workload size, top-k, pool width and block rows
#: for the fault-recovery timing.  Small enough that the pass itself is
#: cheap -- the interesting cost is the supervision machinery (pool
#: rebuild, block retry, degradation), not the kernel.
RESILIENCE_SIZE = 20_000
RESILIENCE_K = 100
RESILIENCE_WORKERS = 2
RESILIENCE_BLOCK_ROWS = 512

#: Parallel-scaling section: total tuple counts, top-k parameter and
#: the worker counts swept.  The domain scales with the x-tuple count
#: so score-interval overlap (and with it the open-factor population
#: the scan carries) stays at the paper's density instead of growing
#: with n.
PARALLEL_SIZES = (100_000, 1_000_000)
PARALLEL_K = 100
PARALLEL_WORKER_COUNTS = (1, 2, 4, 8)


def _snapshot_ranked(num_tuples: int) -> RankedDatabase:
    db = generate_synthetic(
        num_xtuples=num_tuples // BARS,
        completion=COMPLETION,
        seed=DB_SEED,
    )
    return db.ranked()


def psr_snapshot(
    sizes: Sequence[int] = SNAPSHOT_SIZES,
    ks: Sequence[int] = SNAPSHOT_KS,
    repeats: int = 3,
    quick: bool = False,
) -> List[Dict]:
    """Per-point PSR pass timings for both backends."""
    points: List[Dict] = []
    for size in sizes:
        ranked = _snapshot_ranked(size)
        for k in ks:
            point: Dict = {"n": ranked.num_tuples, "k": k}
            for backend in BACKENDS:
                if (
                    backend == "python"
                    and quick
                    and ranked.num_tuples > PYTHON_BACKEND_MAX_TUPLES
                ):
                    point[f"{backend}_ms"] = None
                    continue
                point[f"{backend}_ms"] = time_call(
                    lambda: compute_rank_probabilities(ranked, k, backend=backend),
                    repeats=repeats,
                    time_budget_s=30.0,
                )
            if point.get("python_ms") and point.get("numpy_ms"):
                point["speedup"] = point["python_ms"] / point["numpy_ms"]
            points.append(point)
    return points


def _parallel_ranked(num_tuples: int) -> RankedDatabase:
    """Paper-density synthetic workload for the scaling sweep.

    The default domain of :class:`~repro.datasets.synthetic.\
SyntheticConfig` is the paper's fixed ``(0, 10000)``; at 1M tuples
    that would pile ~800 x-tuples onto every score point and the scan
    would spend its time in open-factor bookkeeping no real workload
    exhibits.  Scaling the domain with ``m`` keeps the overlap density
    exactly at the paper's 5000-x-tuple setting.
    """
    m = num_tuples // BARS
    db = generate_synthetic(
        num_xtuples=m,
        completion=COMPLETION,
        seed=DB_SEED,
        domain=(0.0, 2.0 * m),
    )
    return db.ranked()


def parallel_scaling_snapshot(
    sizes: Sequence[int] = PARALLEL_SIZES,
    k: int = PARALLEL_K,
    worker_counts: Sequence[int] = PARALLEL_WORKER_COUNTS,
    repeats: int = 2,
    block_rows: "int | None" = None,
) -> List[Dict]:
    """Parallel-backend scaling sweep with a per-point exactness gate.

    For every ``(n, workers)`` point the parallel result is
    cross-checked against the serial numpy kernel -- cutoff equality
    plus a :data:`DERIVE_CHECK_TOLERANCE` bound on every rank
    probability and top-k probability -- and the run **fails** on
    disagreement, so the published scaling numbers can never come from
    a kernel that drifted.  ``host_cpu_count`` is recorded per point:
    speedups are only meaningful relative to the physical cores the
    measuring host actually had.
    """
    import numpy as np

    from repro.core.parallel import _block_rows, shutdown_pool

    previous_rows = os.environ.get("REPRO_BLOCK_ROWS")
    if block_rows is not None:
        os.environ["REPRO_BLOCK_ROWS"] = str(block_rows)
    points: List[Dict] = []
    try:
        for size in sizes:
            ranked = _parallel_ranked(size)
            k_eff = min(k, ranked.num_tuples)
            reference = compute_rank_probabilities(
                ranked, k_eff, backend="numpy"
            )
            numpy_ms = time_call(
                lambda: compute_rank_probabilities(
                    ranked, k_eff, backend="numpy"
                ),
                repeats=repeats,
                time_budget_s=240.0,
            )
            runs: List[Dict] = []
            serial_ms = None
            for workers in worker_counts:
                result = compute_rank_probabilities(
                    ranked, k_eff, backend="parallel", workers=workers
                )
                if result.cutoff != reference.cutoff:
                    raise RuntimeError(
                        f"parallel cutoff {result.cutoff} != serial "
                        f"{reference.cutoff} at n={ranked.num_tuples}, "
                        f"workers={workers}"
                    )
                max_err = max(
                    float(
                        np.max(
                            np.abs(result.rho_prefix - reference.rho_prefix)
                        )
                    ),
                    float(
                        np.max(
                            np.abs(result.topk_prefix - reference.topk_prefix)
                        )
                    ),
                )
                if max_err > DERIVE_CHECK_TOLERANCE:
                    raise RuntimeError(
                        f"parallel kernel diverged from serial numpy by "
                        f"{max_err:.3e} (> {DERIVE_CHECK_TOLERANCE:.0e}) "
                        f"at n={ranked.num_tuples}, workers={workers}"
                    )
                elapsed_ms = time_call(
                    lambda: compute_rank_probabilities(
                        ranked, k_eff, backend="parallel", workers=workers
                    ),
                    repeats=repeats,
                    time_budget_s=240.0,
                )
                if serial_ms is None:
                    serial_ms = elapsed_ms
                info = result.parallel_info or {}
                runs.append(
                    {
                        "workers": workers,
                        "parallel_ms": elapsed_ms,
                        "mode": info.get("mode"),
                        "fallback": info.get("fallback"),
                        "blocks": info.get("blocks"),
                        "speedup_vs_1worker": (
                            serial_ms / elapsed_ms if elapsed_ms > 0 else None
                        ),
                        "speedup_vs_numpy": (
                            numpy_ms / elapsed_ms if elapsed_ms > 0 else None
                        ),
                        "max_abs_error_vs_numpy": max_err,
                    }
                )
            points.append(
                {
                    "n": ranked.num_tuples,
                    "m": ranked.num_xtuples,
                    "k": k_eff,
                    "block_rows": _block_rows(),
                    "host_cpu_count": os.cpu_count(),
                    "numpy_ms": numpy_ms,
                    "workers": runs,
                }
            )
    finally:
        if block_rows is not None:
            if previous_rows is None:
                os.environ.pop("REPRO_BLOCK_ROWS", None)
            else:
                os.environ["REPRO_BLOCK_ROWS"] = previous_rows
        shutdown_pool()
    return points


def query_session_snapshot(
    size: int = 10_000, k: int = 100, repeats: int = 5
) -> Dict:
    """Cold vs warm full evaluation through a QuerySession."""
    ranked = _snapshot_ranked(size)

    def cold() -> None:
        QuerySession(ranked).evaluate(k)

    cold_ms = time_call(cold, repeats=repeats, time_budget_s=30.0)

    session = QuerySession(ranked)
    session.evaluate(k)  # warm the cache
    start = time.perf_counter()
    rounds = 0
    while time.perf_counter() - start < 0.5:
        session.evaluate(k)
        rounds += 1
    warm_ms = (time.perf_counter() - start) * 1000.0 / rounds
    return {
        "n": ranked.num_tuples,
        "k": k,
        "cold_eval_ms": cold_ms,
        "warm_eval_ms": warm_ms,
        "warm_is_answer_extraction_only": session.psr_misses == 1,
        "psr_cache_hits": session.psr_hits,
    }


def _replay_derive_phase(
    db: ProbabilisticDatabase,
    rounds_probes: Sequence[Sequence[Tuple[str, Optional[str], bool]]],
    k: int,
    seed_quality: Optional[float],
) -> Tuple[List[float], List[float], float]:
    """Re-run each changed round's derive/re-evaluate phase both ways.

    ``rounds_probes`` is the per-round list of successful probe
    outcomes ``(xid, revealed_tid, revealed_null)`` taken from a real
    adaptive run.  For every round the cold path rebuilds the cleaned
    snapshots through the public constructors, re-ranks and runs a
    fresh PSR + quality pass; the delta path threads the same probes
    through ``RankedDatabase.with_xtuple_*`` and delta-aware
    ``QuerySession.derive``.  Their qualities are cross-checked at
    every round -- disagreement beyond :data:`DERIVE_CHECK_TOLERANCE`
    raises, which is the snapshot's kernel-regression tripwire.
    """
    session = QuerySession(db)
    session.quality(k)
    cold_db = db
    cold_ms: List[float] = []
    delta_ms: List[float] = []
    max_err = 0.0
    for probes in rounds_probes:
        if not probes:
            continue
        start = time.perf_counter()
        round_db = session.db
        derived = session
        for xid, revealed_tid, revealed_null in probes:
            if revealed_null:
                new_ranked, delta = derived.ranked.with_xtuple_removed(xid)
            else:
                # Like the executor: a round's plan touches each x-tuple
                # once, so the round-start snapshot serves the lookups.
                new_ranked, delta = derived.ranked.with_xtuple_replaced(
                    xid, round_db.xtuple(xid).collapsed_to(revealed_tid)
                )
            derived = derived.derive(new_ranked, delta=delta)
        delta_quality = derived.quality(k).quality
        delta_ms.append((time.perf_counter() - start) * 1000.0)

        start = time.perf_counter()
        for xid, revealed_tid, revealed_null in probes:
            if revealed_null:
                cold_db = ProbabilisticDatabase(
                    [xt for xt in cold_db.xtuples if xt.xid != xid],
                    name=cold_db.name,
                )
            else:
                cold_db = cold_db.with_xtuple_replaced(
                    xid, cold_db.xtuple(xid).collapsed_to(revealed_tid)
                )
        cold_quality = compute_quality_tp(cold_db.ranked(), k).quality
        cold_ms.append((time.perf_counter() - start) * 1000.0)

        max_err = max(max_err, abs(cold_quality - delta_quality))
        if max_err > DERIVE_CHECK_TOLERANCE:
            raise RuntimeError(
                f"delta-derived quality diverged from the cold pass by "
                f"{max_err:.3e} (> {DERIVE_CHECK_TOLERANCE:.0e}) -- "
                f"incremental kernel regression"
            )
        session = derived
    if seed_quality is not None:
        final_err = abs(session.quality(k).quality - seed_quality)
        max_err = max(max_err, final_err)
        if final_err > DERIVE_CHECK_TOLERANCE:
            raise RuntimeError(
                f"replayed delta session diverged from the original "
                f"adaptive run by {final_err:.3e} "
                f"(> {DERIVE_CHECK_TOLERANCE:.0e})"
            )
    return cold_ms, delta_ms, max_err


def adaptive_cleaning_snapshot(
    sizes: Sequence[int] = ADAPTIVE_SIZES,
    k: int = ADAPTIVE_K,
    budget: int = ADAPTIVE_BUDGET,
    seed: int = PROBE_SEED,
) -> List[Dict]:
    """Delta-engine timings for adaptive cleaning, one point per size."""
    points: List[Dict] = []
    for size in sizes:
        db = generate_synthetic(num_xtuples=size // BARS, seed=DB_SEED)
        costs = generate_costs(db, seed=COST_SEED)
        sc = generate_sc_probabilities(db, seed=SC_SEED)
        k_eff = min(k, db.num_tuples)

        runs: Dict[bool, Dict] = {}
        results: Dict[bool, object] = {}
        for use_deltas in (False, True):
            session = QuerySession(db)
            problem = build_cleaning_problem(
                session.quality(k_eff), costs, sc, budget
            )
            start = time.perf_counter()
            result = clean_adaptively(
                db,
                problem,
                GreedyCleaner(),
                rng=random.Random(seed),
                session=session,
                use_deltas=use_deltas,
            )
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            rounds = max(1, len(result.rounds))
            runs[use_deltas] = {
                "total_ms": elapsed_ms,
                "round_ms": elapsed_ms / rounds,
                "rounds": len(result.rounds),
                "final_quality": result.final_quality,
                "psr_full_passes": result.session.psr_misses,
                "psr_patches": result.session.psr_patches,
            }
            results[use_deltas] = result

        delta_result = results[True]
        rounds_probes = [
            [
                (r.xid, r.revealed_tid, r.revealed_null)
                for r in round_.outcome.records
                if r.succeeded
            ]
            for round_ in delta_result.rounds
        ]
        # Several replays; later ones are the steady-state measurement
        # (the first pays one-time costs -- allocator warm-up, lazy
        # list materialization -- that a long-running service never
        # sees per round).  Per-round times take the elementwise
        # minimum across repeats, the standard anti-jitter estimator.
        cold_ms: List[float] = []
        delta_ms: List[float] = []
        max_err = 0.0
        for _ in range(3):
            cold_rep, delta_rep, err_rep = _replay_derive_phase(
                db, rounds_probes, k_eff, delta_result.final_quality
            )
            max_err = max(max_err, err_rep)
            if not cold_ms:
                cold_ms, delta_ms = cold_rep, delta_rep
            else:
                cold_ms = [min(x, y) for x, y in zip(cold_ms, cold_rep)]
                delta_ms = [min(x, y) for x, y in zip(delta_ms, delta_rep)]

        point = {
            "n": db.num_tuples,
            "m": db.num_xtuples,
            "k": k_eff,
            "budget": budget,
            "rounds": runs[True]["rounds"],
            "probes_succeeded": sum(len(p) for p in rounds_probes),
            "cold_total_ms": runs[False]["total_ms"],
            "delta_total_ms": runs[True]["total_ms"],
            "end_to_end_round_speedup": (
                runs[False]["round_ms"] / runs[True]["round_ms"]
                if runs[True]["round_ms"]
                else None
            ),
            "cold_derive_round_ms": statistics.fmean(cold_ms) if cold_ms else None,
            "delta_derive_round_ms": (
                statistics.fmean(delta_ms) if delta_ms else None
            ),
            #: The headline metric: per-round cost of deriving and
            #: re-evaluating the changed snapshot, delta path vs the
            #: cold-derive path, on the run's real probe trace.
            "round_speedup": (
                statistics.fmean(cold_ms) / statistics.fmean(delta_ms)
                if cold_ms and delta_ms and statistics.fmean(delta_ms) > 0
                else None
            ),
            "psr_full_passes_delta": runs[True]["psr_full_passes"],
            "psr_patches_delta": runs[True]["psr_patches"],
            "max_abs_quality_error": max_err,
        }
        points.append(point)
    return points


def _batch_specs(
    m: int,
    ks: Sequence[int] = BATCH_KS,
    num_tuples: "int | None" = None,
) -> List[QuerySpec]:
    """``m`` mixed-``k`` query specs cycling over ``ks`` (capped at n)."""
    specs = []
    for i in range(m):
        k = ks[i % len(ks)]
        if num_tuples is not None:
            k = min(k, num_tuples)
        specs.append(QuerySpec(k=k, threshold=0.1))
    return specs


def service_batch_snapshot(
    size: int = 10_000, m: int = BATCH_M, repeats: int = 3
) -> Dict:
    """Batch (one shared max-k pass) vs m independent session evaluations.

    Cross-checks every batch answer against its independently evaluated
    twin (tuple ids exactly, qualities within
    :data:`DERIVE_CHECK_TOLERANCE`) and raises on disagreement, so the
    CI smoke run gates the prefix-restriction sharing path.
    """
    ranked = _snapshot_ranked(size)
    specs = _batch_specs(m, num_tuples=ranked.num_tuples)
    batch = BatchSpec(items=tuple(specs))

    def run_batch() -> ServiceResult:
        service = TopKService()
        sid = service.pool.register(ranked)
        return service.batch(sid, batch)

    def run_independent() -> List[EvaluationReport]:
        return [QuerySession(ranked).evaluate(s.k, s.threshold) for s in specs]

    batch_ms = time_call(run_batch, repeats=repeats, time_budget_s=30.0)
    independent_ms = time_call(
        run_independent, repeats=repeats, time_budget_s=60.0
    )

    def check_members(
        got: Sequence[Tuple[str, float]],
        expected: Sequence[Tuple[str, float]],
        label: str,
        k: int,
    ) -> None:
        """Positional tid equality, except swapped equal-probability ties.

        The shared pass re-sums ``ρ`` rows in a different order than
        the kernels' own accumulation, so tuples whose top-k
        probabilities are equal to the last ulp may legitimately swap
        positions; anything beyond a 1e-12 probability gap is a real
        divergence and fails the run.
        """
        if len(got) != len(expected):
            raise RuntimeError(
                f"batch {label} answer has {len(got)} members vs "
                f"{len(expected)} independent at k={k}"
            )
        for (got_tid, got_p), (exp_tid, exp_p) in zip(got, expected):
            if abs(got_p - exp_p) > DERIVE_CHECK_TOLERANCE:
                raise RuntimeError(
                    f"batch {label} probability diverged at k={k}: "
                    f"{got_tid}={got_p!r} vs {exp_tid}={exp_p!r}"
                )
            if got_tid != exp_tid and abs(got_p - exp_p) > 1e-12:
                raise RuntimeError(
                    f"batch {label} selection diverged at k={k}: "
                    f"{got_tid} vs {exp_tid}"
                )

    result = run_batch()
    reports = run_independent()
    max_err = 0.0
    for item, report in zip(result.payload["items"], reports):
        check_members(
            item["payload"]["ptk"]["members"],
            list(report.ptk.members),
            "PT-k",
            report.k,
        )
        check_members(
            item["payload"]["global_topk"]["members"],
            list(report.global_topk.members),
            "Global-topk",
            report.k,
        )
        err = abs(item["payload"]["quality"] - report.quality_score)
        max_err = max(max_err, err)
        if err > DERIVE_CHECK_TOLERANCE:
            raise RuntimeError(
                f"batch quality diverged from the independent evaluation "
                f"by {err:.3e} (> {DERIVE_CHECK_TOLERANCE:.0e}) at "
                f"k={report.k} -- prefix-restriction regression"
            )
    return {
        "n": ranked.num_tuples,
        "m": m,
        "ks": sorted({s.k for s in specs}),
        "batch_ms": batch_ms,
        "independent_ms": independent_ms,
        "batch_throughput_x": (
            independent_ms / batch_ms if batch_ms > 0 else None
        ),
        "psr_passes_batch": result.counters["psr_misses"],
        "psr_prefills_batch": result.counters["psr_prefills"],
        "max_abs_quality_error": max_err,
    }


def pool_contention_snapshot(
    size: int = 10_000,
    threads: int = CONTENTION_THREADS,
    ops: int = CONTENTION_OPS,
    k: int = 100,
) -> Dict:
    """Warm-path lease throughput, single-threaded vs a thread group.

    All sessions are pre-warmed, so the measured work is answer
    extraction plus the pool's lease/LRU bookkeeping -- the overhead a
    concurrent server pays per request on the hot path.
    """
    ranked = _snapshot_ranked(size)
    k = min(k, ranked.num_tuples)
    pool = SessionPool(max_sessions=4)
    sid = pool.register(ranked)
    with pool.lease(sid) as session:
        session.evaluate(k)  # warm

    def one_op() -> None:
        with pool.lease(sid) as session:
            session.evaluate(k)

    start = time.perf_counter()
    for _ in range(ops):
        one_op()
    serial_s = time.perf_counter() - start

    def worker(count: int) -> None:
        for _ in range(count):
            one_op()

    per_thread = ops // threads
    group = [
        threading.Thread(target=worker, args=(per_thread,))
        for _ in range(threads)
    ]
    start = time.perf_counter()
    for t in group:
        t.start()
    for t in group:
        t.join()
    threaded_s = time.perf_counter() - start
    threaded_ops = per_thread * threads
    return {
        "n": ranked.num_tuples,
        "k": k,
        "threads": threads,
        "ops": ops,
        "serial_ops_per_s": ops / serial_s if serial_s > 0 else None,
        "threaded_ops_per_s": (
            threaded_ops / threaded_s if threaded_s > 0 else None
        ),
        "contention_overhead_x": (
            (threaded_s / threaded_ops) / (serial_s / ops)
            if serial_s > 0 and threaded_ops > 0
            else None
        ),
        "session_hits": pool.session_hits,
        "session_misses": pool.session_misses,
    }


def resilience_snapshot(
    size: int = RESILIENCE_SIZE,
    k: int = RESILIENCE_K,
    workers: int = RESILIENCE_WORKERS,
    block_rows: int = RESILIENCE_BLOCK_ROWS,
    repeats: int = 2,
) -> Dict:
    """Fault-recovery cost of the supervised parallel backend.

    Times one parallel PSR pass three ways on the same workload: fault
    free; recovering from an injected worker crash (a block's worker
    SIGKILLs itself mid-scan, the supervisor rebuilds the pool and
    retries the unfinished blocks); and after an unrecoverable fault
    plan exhausts the retry budget, which forces the in-process serial
    degradation tier.  Every answer -- including both faulted ones --
    is cross-checked against the serial numpy kernel within
    :data:`DERIVE_CHECK_TOLERANCE` and the run **fails** on
    disagreement, so the published recovery overheads can never come
    from a pass that healed to the wrong numbers.
    """
    import numpy as np

    from repro.core.parallel import shutdown_pool
    from repro.testing import FaultEvent, FaultPlan, use_faults

    previous_rows = os.environ.get("REPRO_BLOCK_ROWS")
    os.environ["REPRO_BLOCK_ROWS"] = str(block_rows)
    try:
        ranked = _parallel_ranked(size)
        k_eff = min(k, ranked.num_tuples)
        reference = compute_rank_probabilities(ranked, k_eff, backend="numpy")

        def checked_pass() -> Dict:
            result = compute_rank_probabilities(
                ranked, k_eff, backend="parallel", workers=workers
            )
            if result.cutoff != reference.cutoff:
                raise RuntimeError(
                    f"resilience pass cutoff {result.cutoff} != serial "
                    f"{reference.cutoff} at n={ranked.num_tuples}"
                )
            max_err = max(
                float(np.max(np.abs(result.rho_prefix - reference.rho_prefix))),
                float(
                    np.max(np.abs(result.topk_prefix - reference.topk_prefix))
                ),
            )
            if max_err > DERIVE_CHECK_TOLERANCE:
                raise RuntimeError(
                    f"resilience pass diverged from serial numpy by "
                    f"{max_err:.3e} (> {DERIVE_CHECK_TOLERANCE:.0e}) at "
                    f"n={ranked.num_tuples}"
                )
            info = dict(result.parallel_info or {})
            info["max_abs_error_vs_numpy"] = max_err
            return info

        # Fault-free baseline (also warms the worker pool, so the
        # faulted passes below measure recovery, not pool start-up).
        checked_pass()
        fault_free_ms = time_call(
            checked_pass, repeats=repeats, time_budget_s=60.0
        )
        baseline = checked_pass()

        # One worker crash: the pool breaks mid-pass, the supervisor
        # rebuilds it and retries the unfinished blocks.
        with use_faults(FaultPlan([FaultEvent(kind="kill", times=1)])):
            start = time.perf_counter()
            kill = checked_pass()
            kill_ms = (time.perf_counter() - start) * 1e3
        if kill["retries"] < 1 or kill["pool_restarts"] < 1:
            raise RuntimeError(
                f"kill fault did not exercise supervision: {kill}"
            )

        # An inexhaustible fault plan: every attempt fails, the retry
        # budget runs out and the pass degrades to the bit-identical
        # in-process serial tier.
        with use_faults(
            FaultPlan([FaultEvent(kind="attach", times=1_000_000)])
        ):
            start = time.perf_counter()
            degraded = checked_pass()
            degraded_ms = (time.perf_counter() - start) * 1e3
        if degraded["degraded"] is None:
            raise RuntimeError(
                f"inexhaustible fault plan did not degrade: {degraded}"
            )

        return {
            "n": ranked.num_tuples,
            "m": ranked.num_xtuples,
            "k": k_eff,
            "workers": workers,
            "block_rows": block_rows,
            "host_cpu_count": os.cpu_count(),
            "fault_free_ms": fault_free_ms,
            "mode": baseline.get("mode"),
            "blocks": baseline.get("blocks"),
            "kill_recovery_ms": kill_ms,
            "kill_retries": kill["retries"],
            "kill_pool_restarts": kill["pool_restarts"],
            "kill_degraded": kill["degraded"],
            "kill_overhead_x": (
                kill_ms / fault_free_ms if fault_free_ms > 0 else None
            ),
            "kill_max_abs_error": kill["max_abs_error_vs_numpy"],
            "degraded_tier_ms": degraded_ms,
            "degraded_tier": degraded["degraded"],
            "degraded_retries": degraded["retries"],
            "degraded_overhead_x": (
                degraded_ms / fault_free_ms if fault_free_ms > 0 else None
            ),
            "degraded_max_abs_error": degraded["max_abs_error_vs_numpy"],
        }
    finally:
        if previous_rows is None:
            os.environ.pop("REPRO_BLOCK_ROWS", None)
        else:
            os.environ["REPRO_BLOCK_ROWS"] = previous_rows
        shutdown_pool()


def perf_snapshot(quick: bool = False, smoke: bool = False) -> Dict:
    """The full snapshot document."""
    if smoke:
        psr = psr_snapshot(sizes=(500,), quick=quick)
        session = query_session_snapshot(size=500, k=50)
        adaptive = adaptive_cleaning_snapshot(
            sizes=(500,), k=50, budget=20
        )
        batch = service_batch_snapshot(size=500, m=8)
        contention = pool_contention_snapshot(size=500, ops=100, k=50)
        # Tiny blocks force a real multi-shard plan (and, with
        # REPRO_WORKERS >= 2, a real worker pool) even at n=2000.
        parallel = parallel_scaling_snapshot(
            sizes=(2_000,),
            k=50,
            worker_counts=(1, 2),
            repeats=1,
            block_rows=128,
        )
        resilience = resilience_snapshot(
            size=2_000, k=50, block_rows=128, repeats=1
        )
    else:
        psr = psr_snapshot(quick=quick)
        session = query_session_snapshot()
        adaptive = adaptive_cleaning_snapshot()
        batch = service_batch_snapshot()
        contention = pool_contention_snapshot()
        parallel = parallel_scaling_snapshot()
        resilience = resilience_snapshot()
    return {
        "schema": "repro-perf-snapshot/5",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "generator": "synthetic",
            "bars_per_xtuple": BARS,
            "completion": COMPLETION,
            "seed": DB_SEED,
        },
        "psr": psr,
        "query_session": session,
        "adaptive_cleaning": adaptive,
        "service_batch": batch,
        "pool_contention": contention,
        "parallel_scaling": parallel,
        "resilience": resilience,
    }


def write_perf_snapshot(
    path: Union[str, Path], quick: bool = False, smoke: bool = False
) -> Dict:
    """Compute the snapshot and write it to ``path`` as JSON."""
    snapshot = perf_snapshot(quick=quick, smoke=smoke)
    Path(path).write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    return snapshot


def format_snapshot(snapshot: Dict) -> str:
    """Human-readable rendering of the JSON document."""
    lines = ["# PSR pass (ms; numpy vs python backend)"]
    for point in snapshot["psr"]:
        python_ms = point.get("python_ms")
        python_text = f"{python_ms:9.1f}" if python_ms is not None else "        -"
        speedup = point.get("speedup")
        speedup_text = f"  ({speedup:.1f}x)" if speedup else ""
        lines.append(
            f"n={point['n']:>7}  k={point['k']:>3}: "
            f"python {python_text}  numpy {point['numpy_ms']:9.1f}"
            f"{speedup_text}"
        )
    qs = snapshot["query_session"]
    lines.append("# QuerySession (cold vs warm full evaluation)")
    lines.append(
        f"n={qs['n']}  k={qs['k']}: cold {qs['cold_eval_ms']:.1f} ms, "
        f"warm {qs['warm_eval_ms']:.3f} ms "
        f"(PSR cache hits: {qs['psr_cache_hits']})"
    )
    lines.append(
        "# Adaptive cleaning (incremental delta engine vs cold derive)"
    )

    def fmt(value: Optional[float], spec: str) -> str:
        return format(value, spec) if value is not None else "-"

    for point in snapshot.get("adaptive_cleaning", []):
        lines.append(
            f"n={point['n']:>7}  k={point['k']:>3}  C={point['budget']}: "
            f"derive/round cold {fmt(point['cold_derive_round_ms'], '.1f')} ms"
            f" vs delta {fmt(point['delta_derive_round_ms'], '.2f')} ms "
            f"({fmt(point['round_speedup'], '.1f')}x; end-to-end "
            f"{fmt(point['end_to_end_round_speedup'], '.1f')}x; "
            f"{point['psr_full_passes_delta']} full PSR pass(es), "
            f"{point['psr_patches_delta']} patches, "
            f"max quality err {point['max_abs_quality_error']:.1e})"
        )
    batch = snapshot.get("service_batch")
    if batch:
        lines.append("# Service batch (shared max-k pass vs independent sessions)")
        lines.append(
            f"n={batch['n']}  m={batch['m']}  ks={batch['ks']}: "
            f"batch {batch['batch_ms']:.1f} ms vs independent "
            f"{batch['independent_ms']:.1f} ms "
            f"({fmt(batch['batch_throughput_x'], '.1f')}x; "
            f"{batch['psr_passes_batch']} PSR pass(es), "
            f"{batch['psr_prefills_batch']} prefills, "
            f"max quality err {batch['max_abs_quality_error']:.1e})"
        )
    parallel = snapshot.get("parallel_scaling")
    if parallel:
        lines.append(
            "# Parallel PSR scaling (sharded backend vs serial numpy)"
        )
        for point in parallel:
            lines.append(
                f"n={point['n']:>8}  k={point['k']:>3}  "
                f"B={point['block_rows']}  "
                f"host_cores={point['host_cpu_count']}: "
                f"numpy {point['numpy_ms']:9.1f} ms"
            )
            for run in point["workers"]:
                note = (
                    f" [{run['fallback']}]" if run["fallback"] else ""
                )
                lines.append(
                    f"    workers={run['workers']}: "
                    f"{run['parallel_ms']:9.1f} ms  "
                    f"({fmt(run['speedup_vs_1worker'], '.2f')}x vs 1w, "
                    f"{fmt(run['speedup_vs_numpy'], '.2f')}x vs numpy, "
                    f"{run['blocks']} blocks, {run['mode']}{note}, "
                    f"max err {run['max_abs_error_vs_numpy']:.1e})"
                )
    contention = snapshot.get("pool_contention")
    if contention:
        lines.append("# SessionPool contention (warm lease throughput)")
        lines.append(
            f"n={contention['n']}  k={contention['k']}  "
            f"threads={contention['threads']}: "
            f"serial {fmt(contention['serial_ops_per_s'], '.0f')} ops/s vs "
            f"{contention['threads']}-thread "
            f"{fmt(contention['threaded_ops_per_s'], '.0f')} ops/s "
            f"(per-op overhead "
            f"{fmt(contention['contention_overhead_x'], '.2f')}x)"
        )
    resilience = snapshot.get("resilience")
    if resilience:
        lines.append(
            "# Resilience (supervised parallel pass under injected faults)"
        )
        lines.append(
            f"n={resilience['n']}  k={resilience['k']}  "
            f"workers={resilience['workers']}  "
            f"B={resilience['block_rows']}: "
            f"fault-free {resilience['fault_free_ms']:.1f} ms "
            f"({resilience['blocks']} blocks, {resilience['mode']})"
        )
        lines.append(
            f"    worker kill: {resilience['kill_recovery_ms']:.1f} ms "
            f"({fmt(resilience['kill_overhead_x'], '.1f')}x; "
            f"{resilience['kill_retries']} retries, "
            f"{resilience['kill_pool_restarts']} pool rebuild(s), "
            f"max err {resilience['kill_max_abs_error']:.1e})"
        )
        lines.append(
            f"    retry exhaustion -> {resilience['degraded_tier']} tier: "
            f"{resilience['degraded_tier_ms']:.1f} ms "
            f"({fmt(resilience['degraded_overhead_x'], '.1f')}x; "
            f"{resilience['degraded_retries']} retries, "
            f"max err {resilience['degraded_max_abs_error']:.1e})"
        )
    return "\n".join(lines)
