"""Machine-readable performance snapshots (``run_all.py --json``).

Emits a JSON document with the timings future PRs compare against:

* ``psr``: time per PSR pass for both backends at
  ``n ∈ {1k, 10k, 100k}`` tuples and ``k ∈ {15, 100}``, on an
  *incomplete* synthetic database (completion 0.85) so Lemma 2's early
  stop never truncates the scan -- every pass is a genuine O(kn)
  sweep.  Includes the numpy-over-python speedup per point.
* ``query_session``: cold-vs-warm evaluation through
  :class:`~repro.queries.engine.QuerySession` -- the warm numbers are
  pure answer extraction, demonstrating that repeated same-``k``
  evaluations never re-run PSR.

The pure-Python backend is skipped above ``PYTHON_BACKEND_MAX_TUPLES``
tuples when ``--quick`` is requested; the full snapshot runs it
everywhere.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.bench.harness import time_call
from repro.core.backend import BACKENDS
from repro.datasets.synthetic import generate_synthetic
from repro.queries.engine import QuerySession
from repro.queries.psr import compute_rank_probabilities

#: Snapshot grid: total tuple counts and top-k parameters.
SNAPSHOT_SIZES = (1_000, 10_000, 100_000)
SNAPSHOT_KS = (15, 100)

#: Bars per x-tuple in the snapshot database (n = m · bars).
BARS = 10

#: Completion probability of the snapshot database; < 1 disables the
#: Lemma 2 early stop so the scan covers all n tuples.
COMPLETION = 0.85

#: --quick skips the python backend above this size (it is ~10s per
#: pass at n = 100k; the numpy backend still covers the full grid).
PYTHON_BACKEND_MAX_TUPLES = 10_000

DB_SEED = 7


def _snapshot_ranked(num_tuples: int):
    db = generate_synthetic(
        num_xtuples=num_tuples // BARS,
        completion=COMPLETION,
        seed=DB_SEED,
    )
    return db.ranked()


def psr_snapshot(
    sizes=SNAPSHOT_SIZES,
    ks=SNAPSHOT_KS,
    repeats: int = 3,
    quick: bool = False,
) -> List[Dict]:
    """Per-point PSR pass timings for both backends."""
    points: List[Dict] = []
    for size in sizes:
        ranked = _snapshot_ranked(size)
        for k in ks:
            point: Dict = {"n": ranked.num_tuples, "k": k}
            for backend in BACKENDS:
                if (
                    backend == "python"
                    and quick
                    and ranked.num_tuples > PYTHON_BACKEND_MAX_TUPLES
                ):
                    point[f"{backend}_ms"] = None
                    continue
                point[f"{backend}_ms"] = time_call(
                    lambda: compute_rank_probabilities(ranked, k, backend=backend),
                    repeats=repeats,
                    time_budget_s=30.0,
                )
            if point.get("python_ms") and point.get("numpy_ms"):
                point["speedup"] = point["python_ms"] / point["numpy_ms"]
            points.append(point)
    return points


def query_session_snapshot(
    size: int = 10_000, k: int = 100, repeats: int = 5
) -> Dict:
    """Cold vs warm full evaluation through a QuerySession."""
    ranked = _snapshot_ranked(size)

    def cold():
        QuerySession(ranked).evaluate(k)

    cold_ms = time_call(cold, repeats=repeats, time_budget_s=30.0)

    session = QuerySession(ranked)
    session.evaluate(k)  # warm the cache
    start = time.perf_counter()
    rounds = 0
    while time.perf_counter() - start < 0.5:
        session.evaluate(k)
        rounds += 1
    warm_ms = (time.perf_counter() - start) * 1000.0 / rounds
    return {
        "n": ranked.num_tuples,
        "k": k,
        "cold_eval_ms": cold_ms,
        "warm_eval_ms": warm_ms,
        "warm_is_answer_extraction_only": session.psr_misses == 1,
        "psr_cache_hits": session.psr_hits,
    }


def perf_snapshot(quick: bool = False) -> Dict:
    """The full snapshot document."""
    return {
        "schema": "repro-perf-snapshot/1",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workload": {
            "generator": "synthetic",
            "bars_per_xtuple": BARS,
            "completion": COMPLETION,
            "seed": DB_SEED,
        },
        "psr": psr_snapshot(quick=quick),
        "query_session": query_session_snapshot(),
    }


def write_perf_snapshot(path, quick: bool = False) -> Dict:
    """Compute the snapshot and write it to ``path`` as JSON."""
    snapshot = perf_snapshot(quick=quick)
    Path(path).write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    return snapshot


def format_snapshot(snapshot: Dict) -> str:
    """Human-readable rendering of the JSON document."""
    lines = ["# PSR pass (ms; numpy vs python backend)"]
    for point in snapshot["psr"]:
        python_ms = point.get("python_ms")
        python_text = f"{python_ms:9.1f}" if python_ms is not None else "        -"
        speedup = point.get("speedup")
        speedup_text = f"  ({speedup:.1f}x)" if speedup else ""
        lines.append(
            f"n={point['n']:>7}  k={point['k']:>3}: "
            f"python {python_text}  numpy {point['numpy_ms']:9.1f}"
            f"{speedup_text}"
        )
    qs = snapshot["query_session"]
    lines.append("# QuerySession (cold vs warm full evaluation)")
    lines.append(
        f"n={qs['n']}  k={qs['k']}: cold {qs['cold_eval_ms']:.1f} ms, "
        f"warm {qs['warm_eval_ms']:.3f} ms "
        f"(PSR cache hits: {qs['psr_cache_hits']})"
    )
    return "\n".join(lines)
