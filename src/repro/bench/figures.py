"""One experiment function per table/figure of the paper's evaluation.

Each ``figNN`` function regenerates the corresponding figure's series
at the requested :class:`~repro.bench.harness.BenchScale` and returns a
:class:`~repro.bench.harness.Table` whose rows mirror the paper's axes.
The pytest benchmarks under ``benchmarks/`` and the standalone runner
``benchmarks/run_all.py`` are thin wrappers over these functions.

Expected shapes (what the paper's figures show, and what EXPERIMENTS.md
verifies against the output of these functions):

* 4(a,c)   quality falls as k grows; MOV sits above synthetic.
* 4(b)     G10 > G30 > G50 > G100 > uniform.
* 4(d,e,f) PW >> PWR >> TP; PWR explodes with size and k; TP stays flat.
* 5(a-d)   sharing cuts total time; the quality share shrinks with k.
* 6(a,f)   DP >= Greedy >> RandP >= RandU; improvement -> |S| as C grows.
* 6(b)     DP/Greedy benefit from wider sc-pdfs; randoms barely move.
* 6(c,g)   every planner improves with the average sc-probability.
* 6(d,e)   DP slowest by orders of magnitude; randoms cheapest.
"""

from __future__ import annotations

import statistics
from typing import Callable, List, Optional, Sequence

from repro.bench.harness import BenchScale, Table, time_call
from repro.bench import workloads
from repro.cleaning.base import Cleaner
from repro.cleaning.dp import DPCleaner
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.improvement import expected_improvement
from repro.cleaning.model import CleaningProblem
from repro.cleaning.random_cleaners import RandPCleaner, RandUCleaner
from repro.core.pw import compute_quality_pw
from repro.core.pwr import ResultLimitExceeded, compute_quality_pwr
from repro.core.tp import compute_quality_tp
from repro.datasets.paper import udb1, udb2
from repro.db.database import RankedDatabase
from repro.queries import global_topk, ptk, ukranks
from repro.queries.engine import evaluate, evaluate_without_sharing
from repro.queries.psr import compute_rank_probabilities

#: Random planners are averaged over this many seeds in the
#: effectiveness figures (the paper plots a single draw).
RANDOM_SEEDS = (0, 1, 2, 3, 4)

#: DP item-ladder pruning used only where the paper's exact sweep is
#: intractable in Python (budgets >= PRUNED_DP_FROM); bounded error,
#: documented in DESIGN.md.
DP_PRUNE_TOLERANCE = 1e-14
PRUNED_DP_FROM = 1_000


def _ks_for_quality(scale: BenchScale) -> List[int]:
    return [k for k in (1, 5, 10, 15, 20, 25, 30) if k <= scale.k_max]


def _ks_for_sharing(scale: BenchScale) -> List[int]:
    return [k for k in (15, 30, 50, 80, 100) if k <= scale.k_max]


def _budgets(scale: BenchScale) -> List[int]:
    return [c for c in (10, 100, 1_000, 10_000, 100_000) if c <= scale.budget_max]


def _dp_for_budget(budget: int) -> DPCleaner:
    if budget >= PRUNED_DP_FROM:
        return DPCleaner(prune_tolerance=DP_PRUNE_TOLERANCE)
    return DPCleaner()


def _mean_random_improvement(
    planner_cls: Callable[..., Cleaner],
    problem: CleaningProblem,
    seeds: Sequence[int] = RANDOM_SEEDS,
) -> float:
    return statistics.fmean(
        expected_improvement(problem, planner_cls(seed=s).plan(problem))
        for s in seeds
    )


# ----------------------------------------------------------------------
# Figures 2 and 3: the paper's worked example
# ----------------------------------------------------------------------
def fig2_fig3(scale: BenchScale) -> Table:
    """pw-result distributions of udb1/udb2 (Figures 2-3, Tables I-II)."""
    table = Table(
        experiment="fig2_3",
        title="pw-result distributions of udb1 and udb2 (k=2)",
        columns=["database", "pw-result", "probability", "quality"],
    )
    for factory in (udb1, udb2):
        db = factory()
        result = compute_quality_pwr(db.ranked(), 2, collect=True)
        for pw_result, probability in sorted(
            result.distribution.items(), key=lambda kv: -kv[1]
        ):
            table.add_row(
                db.name, "(" + ",".join(pw_result) + ")", probability, result.quality
            )
    table.notes = "paper: quality(udb1) = -2.55 with 7 results; quality(udb2) = -1.85 with 4"
    return table


# ----------------------------------------------------------------------
# Figure 4: quality scores and quality-computation time
# ----------------------------------------------------------------------
def fig4a(scale: BenchScale) -> Table:
    """Quality vs k on the default synthetic database (Figure 4(a))."""
    ranked = workloads.synthetic_ranked(scale.clean_m)
    table = Table(
        experiment="fig4a",
        title=f"quality S vs k (synthetic, m={scale.clean_m})",
        columns=["k", "S"],
        notes="paper shape: S decreases (more negative) as k grows",
    )
    for k in _ks_for_quality(scale):
        table.add_row(k, compute_quality_tp(ranked, k).quality)
    return table


def fig4b(scale: BenchScale) -> Table:
    """Quality vs uncertainty pdf (Figure 4(b))."""
    table = Table(
        experiment="fig4b",
        title=f"quality S vs uncertainty pdf (synthetic, m={scale.clean_m}, k=15)",
        columns=["pdf", "S"],
        notes="paper shape: G10 > G30 > G50 > G100 > uniform",
    )
    for label, sigma, uncertainty in (
        ("G10", 10.0, "gaussian"),
        ("G30", 30.0, "gaussian"),
        ("G50", 50.0, "gaussian"),
        ("G100", 100.0, "gaussian"),
        ("Uniform", 100.0, "uniform"),
    ):
        ranked = workloads.synthetic_ranked(scale.clean_m, sigma, uncertainty)
        k = min(15, scale.k_max)
        table.add_row(label, compute_quality_tp(ranked, k).quality)
    return table


def fig4c(scale: BenchScale) -> Table:
    """Quality vs k on MOV (Figure 4(c))."""
    ranked = workloads.mov_ranked(scale.mov_m)
    table = Table(
        experiment="fig4c",
        title=f"quality S vs k (MOV, m={scale.mov_m})",
        columns=["k", "S"],
        notes="paper shape: decreasing in k; higher than synthetic at equal m",
    )
    for k in _ks_for_quality(scale):
        table.add_row(k, compute_quality_tp(ranked, k).quality)
    return table


def _pwr_time_ms(
    ranked: RankedDatabase, k: int, scale: BenchScale
) -> Optional[float]:
    """PWR timing, or None when the result count exceeds the cap."""
    try:
        return time_call(
            lambda: compute_quality_pwr(
                ranked, k, max_results=scale.pwr_max_results
            ),
            repeats=scale.repeats,
        )
    except ResultLimitExceeded:
        return None


def fig4d(scale: BenchScale) -> Table:
    """Quality time vs database size, PW vs PWR vs TP, k=5 (Figure 4(d))."""
    k = 5
    table = Table(
        experiment="fig4d",
        title="quality computation time vs DB size (k=5)",
        columns=["tuples", "PW_ms", "PWR_ms", "TP_ms"],
        notes=(
            "paper shape: PW explodes first (authors: 36 min at 100 tuples), "
            "PWR next, TP flat; '-' = skipped/capped"
        ),
    )
    sizes = [20, 30, 40, 50, 100, 1_000, 10_000]
    sizes = [s for s in sizes if s <= scale.synth_m * 10]
    for size in sizes:
        ranked = workloads.synthetic_ranked(size // 10)
        pw_ms = None
        if ranked.db.num_possible_worlds() <= 100_000:
            pw_ms = time_call(
                lambda: compute_quality_pw(ranked, k), repeats=scale.repeats
            )
        pwr_ms = _pwr_time_ms(ranked, k, scale)
        tp_ms = time_call(
            lambda: compute_quality_tp(ranked, k), repeats=scale.repeats
        )
        table.add_row(size, pw_ms, pwr_ms, tp_ms)
    return table


def fig4e(scale: BenchScale) -> Table:
    """Quality time vs database size, PWR vs TP, k=15 (Figure 4(e))."""
    k = min(15, scale.k_max)
    table = Table(
        experiment="fig4e",
        title=f"quality computation time vs DB size (k={k})",
        columns=["tuples", "PWR_ms", "TP_ms"],
        notes="paper shape: PWR grows rapidly (capped early), TP near-linear and small",
    )
    sizes = [1_000, 10_000, scale.synth_m * 10]
    sizes = sorted({s for s in sizes if s <= scale.synth_m * 10})
    for size in sizes:
        ranked = workloads.synthetic_ranked(size // 10)
        table.add_row(
            size,
            _pwr_time_ms(ranked, k, scale),
            time_call(lambda: compute_quality_tp(ranked, k), repeats=scale.repeats),
        )
    return table


def fig4f(scale: BenchScale) -> Table:
    """Quality time vs k, PWR vs TP (Figure 4(f))."""
    ranked = workloads.synthetic_ranked(scale.synth_m)
    table = Table(
        experiment="fig4f",
        title=f"quality computation time vs k (synthetic, m={scale.synth_m})",
        columns=["k", "PWR_ms", "TP_ms"],
        notes="paper shape: PWR exponential in k (capped), TP linear in k",
    )
    for k in (1, 2, 5, 10, 100, 1_000):
        if k > scale.k_max and k > 10:
            continue
        table.add_row(
            k,
            _pwr_time_ms(ranked, k, scale),
            time_call(lambda: compute_quality_tp(ranked, k), repeats=scale.repeats),
        )
    return table


# ----------------------------------------------------------------------
# Figure 5: computation sharing between query and quality
# ----------------------------------------------------------------------
def fig5a(scale: BenchScale) -> Table:
    """Query+quality time, sharing vs non-sharing (Figure 5(a))."""
    ranked = workloads.synthetic_ranked(scale.synth_m)
    table = Table(
        experiment="fig5a",
        title=f"PT-k + quality: sharing vs non-sharing (m={scale.synth_m})",
        columns=["k", "non_sharing_ms", "sharing_ms", "sharing_fraction"],
        notes="paper: sharing reduces total time to ~52% at k=100",
    )
    for k in _ks_for_sharing(scale):
        non_sharing = time_call(
            lambda: evaluate_without_sharing(ranked, k), repeats=scale.repeats
        )
        sharing = time_call(lambda: evaluate(ranked, k), repeats=scale.repeats)
        table.add_row(k, non_sharing, sharing, sharing / non_sharing)
    return table


def _ptk_query_ms(ranked: RankedDatabase, k: int, repeats: int) -> float:
    def run() -> None:
        rank_probs = compute_rank_probabilities(ranked, k)
        ptk.answer_from_rank_probabilities(rank_probs, 0.1)

    return time_call(run, repeats=repeats)


def _quality_extra_ms(ranked: RankedDatabase, k: int, repeats: int) -> float:
    """Marginal quality cost when rank probabilities are shared."""
    rank_probs = compute_rank_probabilities(ranked, k)
    return time_call(
        lambda: compute_quality_tp(ranked, k, rank_probabilities=rank_probs),
        repeats=repeats,
    )


def _sharing_split_table(
    experiment: str, ranked: RankedDatabase, scale: BenchScale, label: str
) -> Table:
    table = Table(
        experiment=experiment,
        title=f"PT-k time vs extra quality time under sharing ({label})",
        columns=["k", "PTk_ms", "quality_extra_ms", "quality_share"],
        notes="paper: quality share of total falls as k grows (33% -> 6%)",
    )
    for k in _ks_for_sharing(scale):
        query_ms = _ptk_query_ms(ranked, k, scale.repeats)
        quality_ms = _quality_extra_ms(ranked, k, scale.repeats)
        table.add_row(
            k, query_ms, quality_ms, quality_ms / (query_ms + quality_ms)
        )
    return table


def fig5b(scale: BenchScale) -> Table:
    """PT-k time vs extra quality time, synthetic (Figure 5(b))."""
    return _sharing_split_table(
        "fig5b",
        workloads.synthetic_ranked(scale.synth_m),
        scale,
        f"synthetic, m={scale.synth_m}",
    )


def fig5c(scale: BenchScale) -> Table:
    """Evaluation time of the three semantics vs quality (Figure 5(c))."""
    ranked = workloads.synthetic_ranked(scale.synth_m)
    table = Table(
        experiment="fig5c",
        title=f"query evaluation time per semantics (m={scale.synth_m})",
        columns=["k", "UkRanks_ms", "GlobalTopk_ms", "PTk_ms", "quality_extra_ms"],
        notes="paper: all three queries cost similar; quality extra is a small slice",
    )

    def timed(answer: Callable, k: int) -> float:
        def run() -> None:
            rank_probs = compute_rank_probabilities(ranked, k)
            answer(rank_probs)

        return time_call(run, repeats=scale.repeats)

    for k in _ks_for_sharing(scale):
        table.add_row(
            k,
            timed(ukranks.answer_from_rank_probabilities, k),
            timed(global_topk.answer_from_rank_probabilities, k),
            timed(lambda rp: ptk.answer_from_rank_probabilities(rp, 0.1), k),
            _quality_extra_ms(ranked, k, scale.repeats),
        )
    return table


def fig5d(scale: BenchScale) -> Table:
    """Figure 5(b) on MOV (Figure 5(d))."""
    return _sharing_split_table(
        "fig5d",
        workloads.mov_ranked(scale.mov_m),
        scale,
        f"MOV, m={scale.mov_m}",
    )


# ----------------------------------------------------------------------
# Figure 6: cleaning effectiveness and efficiency
# ----------------------------------------------------------------------
def _improvement_rows(
    table: Table, problem: CleaningProblem, first_column_value: object
) -> None:
    dp_plan = _dp_for_budget(problem.budget).plan(problem)
    table.add_row(
        first_column_value,
        expected_improvement(problem, dp_plan),
        expected_improvement(problem, GreedyCleaner().plan(problem)),
        _mean_random_improvement(RandPCleaner, problem),
        _mean_random_improvement(RandUCleaner, problem),
    )


def fig6a(scale: BenchScale) -> Table:
    """Expected improvement vs budget, synthetic (Figure 6(a))."""
    k = min(15, scale.k_max)
    quality = workloads.synthetic_quality(scale.clean_m, k)
    table = Table(
        experiment="fig6a",
        title=f"improvement I vs budget C (synthetic, m={scale.clean_m}, k={k})",
        columns=["C", "DP", "Greedy", "RandP", "RandU"],
        notes=(
            f"|S| = {-quality.quality:.4f} bounds I; "
            "paper shape: DP >= Greedy >> RandP >= RandU, I -> |S|"
        ),
    )
    for budget in _budgets(scale):
        problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)
        _improvement_rows(table, problem, budget)
    return table


def fig6b(scale: BenchScale) -> Table:
    """Expected improvement vs sc-pdf (Figure 6(b))."""
    k = min(15, scale.k_max)
    budget = min(100, scale.budget_max)
    table = Table(
        experiment="fig6b",
        title=f"improvement I vs sc-pdf (synthetic, m={scale.clean_m}, C={budget})",
        columns=["sc_pdf", "DP", "Greedy", "RandP", "RandU"],
        notes="paper shape: DP/Greedy grow with sc-pdf variance; randoms barely move",
    )
    for label, kwargs in (
        ("normal(0.13)", dict(sc_distribution="normal", sc_sigma=0.13)),
        ("normal(0.167)", dict(sc_distribution="normal", sc_sigma=0.167)),
        ("normal(0.3)", dict(sc_distribution="normal", sc_sigma=0.3)),
        ("uniform", dict(sc_distribution="uniform")),
    ):
        problem = workloads.synthetic_cleaning_problem(
            scale.clean_m, k, budget, **kwargs
        )
        _improvement_rows(table, problem, label)
    return table


def _avg_sc_table(
    experiment: str,
    scale: BenchScale,
    problem_factory: Callable[..., CleaningProblem],
    m: int,
    label: str,
) -> Table:
    k = min(15, scale.k_max)
    budget = min(100, scale.budget_max)
    table = Table(
        experiment=experiment,
        title=f"improvement I vs average sc-probability ({label}, C={budget})",
        columns=["avg_sc", "DP", "Greedy", "RandP", "RandU"],
        notes="paper shape: every planner improves with the average sc-probability",
    )
    for low in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        problem = problem_factory(
            m, k, budget, sc_distribution="uniform", sc_low=low, sc_high=1.0
        )
        _improvement_rows(table, problem, (1.0 + low) / 2.0)
    return table


def fig6c(scale: BenchScale) -> Table:
    """Improvement vs average sc-probability, synthetic (Figure 6(c))."""
    return _avg_sc_table(
        "fig6c",
        scale,
        workloads.synthetic_cleaning_problem,
        scale.clean_m,
        f"synthetic, m={scale.clean_m}",
    )


def fig6d(scale: BenchScale) -> Table:
    """Planning time vs budget (Figure 6(d))."""
    k = min(15, scale.k_max)
    table = Table(
        experiment="fig6d",
        title=f"planning time vs budget C (synthetic, m={scale.clean_m}, k={k})",
        columns=["C", "DP_ms", "Greedy_ms", "RandP_ms", "RandU_ms"],
        notes=(
            "paper shape: DP orders of magnitude above heuristics; "
            f"DP prunes value-negligible items for C >= {PRUNED_DP_FROM}"
        ),
    )
    for budget in _budgets(scale):
        problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)
        dp = _dp_for_budget(budget)
        table.add_row(
            budget,
            time_call(lambda: dp.plan(problem), repeats=scale.repeats),
            time_call(lambda: GreedyCleaner().plan(problem), repeats=scale.repeats),
            time_call(lambda: RandPCleaner().plan(problem), repeats=scale.repeats),
            time_call(lambda: RandUCleaner().plan(problem), repeats=scale.repeats),
        )
    return table


def fig6e(scale: BenchScale) -> Table:
    """Planning time vs k (Figure 6(e))."""
    budget = min(100, scale.budget_max)
    table = Table(
        experiment="fig6e",
        title=f"planning time vs k (synthetic, m={scale.clean_m}, C={budget})",
        columns=["k", "num_candidates", "DP_ms", "Greedy_ms", "RandP_ms", "RandU_ms"],
        notes="paper shape: DP/Greedy grow mildly with k via |Z|; randoms flat",
    )
    for k in (5, 10, 15, 20, 25, 30):
        if k > scale.k_max:
            continue
        problem = workloads.synthetic_cleaning_problem(scale.clean_m, k, budget)
        table.add_row(
            k,
            len(problem.candidate_indices()),
            time_call(lambda: DPCleaner().plan(problem), repeats=scale.repeats),
            time_call(lambda: GreedyCleaner().plan(problem), repeats=scale.repeats),
            time_call(lambda: RandPCleaner().plan(problem), repeats=scale.repeats),
            time_call(lambda: RandUCleaner().plan(problem), repeats=scale.repeats),
        )
    return table


def fig6f(scale: BenchScale) -> Table:
    """Improvement vs budget on MOV (Figure 6(f))."""
    k = min(15, scale.k_max)
    quality = workloads.mov_quality(scale.mov_m, k)
    table = Table(
        experiment="fig6f",
        title=f"improvement I vs budget C (MOV, m={scale.mov_m}, k={k})",
        columns=["C", "DP", "Greedy", "RandP", "RandU"],
        notes=(
            f"|S| = {-quality.quality:.4f}; same ordering as synthetic, "
            "smaller magnitudes (MOV is less ambiguous)"
        ),
    )
    for budget in _budgets(scale):
        problem = workloads.mov_cleaning_problem(scale.mov_m, k, budget)
        _improvement_rows(table, problem, budget)
    return table


def fig6g(scale: BenchScale) -> Table:
    """Improvement vs average sc-probability on MOV (Figure 6(g))."""
    return _avg_sc_table(
        "fig6g",
        scale,
        workloads.mov_cleaning_problem,
        scale.mov_m,
        f"MOV, m={scale.mov_m}",
    )


#: Registry used by run_all.py and the smoke tests.
ALL_FIGURES = {
    "fig2_3": fig2_fig3,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig4d": fig4d,
    "fig4e": fig4e,
    "fig4f": fig4f,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig5c": fig5c,
    "fig5d": fig5d,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig6c": fig6c,
    "fig6d": fig6d,
    "fig6e": fig6e,
    "fig6f": fig6f,
    "fig6g": fig6g,
}
