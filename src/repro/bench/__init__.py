"""Benchmark harness: scales, workload caches, per-figure experiments.

Used by the pytest benchmarks under ``benchmarks/`` and by the
standalone ``benchmarks/run_all.py`` runner.  Scale selection is via
the ``REPRO_BENCH_SCALE`` environment variable
(``quick`` / ``default`` / ``full``).
"""

from repro.bench.harness import SCALES, BenchScale, Table, current_scale, time_call
from repro.bench.figures import ALL_FIGURES
from repro.bench.perf import perf_snapshot, write_perf_snapshot

__all__ = [
    "BenchScale",
    "SCALES",
    "current_scale",
    "Table",
    "time_call",
    "ALL_FIGURES",
    "perf_snapshot",
    "write_perf_snapshot",
]
