"""Benchmark harness: scales, timing, result tables.

Every figure of the paper's evaluation section has a function in
:mod:`repro.bench.figures` that regenerates its series and returns a
:class:`Table`.  This module holds the shared machinery:

* :class:`BenchScale` -- workload sizes per scale tier.  The authors
  ran C++ on an i5; pure Python cannot sweep to 10^6 tuples or budget
  10^5 in the same wall-clock, so the ``default`` tier trims sweep
  end-points while preserving every *shape* the paper reports.  Select
  with ``REPRO_BENCH_SCALE=quick|default|full``.
* :class:`Table` -- a printable, saveable experiment result.
* :func:`time_call` -- best-of-N wall-clock timing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Tuple, Union


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes for one benchmark tier."""

    name: str
    #: x-tuples in the synthetic database used by timing figures.
    synth_m: int
    #: x-tuples in the synthetic database used by quality/cleaning
    #: effectiveness figures (the paper's default is 5000).
    clean_m: int
    #: x-tuples in the MOV database (the paper's copy has 4999).
    mov_m: int
    #: Largest k in the k-sweeps (the paper sweeps to 100).
    k_max: int
    #: Largest cleaning budget in the C-sweeps (the paper sweeps to 1e5).
    budget_max: int
    #: PWR is abandoned past this many pw-results (reported as capped).
    pwr_max_results: int
    #: Timing repetitions (best-of).
    repeats: int


SCALES = {
    "quick": BenchScale(
        name="quick",
        synth_m=200,
        clean_m=500,
        mov_m=500,
        k_max=50,
        budget_max=1_000,
        pwr_max_results=50_000,
        repeats=1,
    ),
    "default": BenchScale(
        name="default",
        synth_m=1_000,
        clean_m=5_000,
        mov_m=4_999,
        k_max=100,
        budget_max=10_000,
        pwr_max_results=200_000,
        repeats=3,
    ),
    "full": BenchScale(
        name="full",
        synth_m=5_000,
        clean_m=5_000,
        mov_m=4_999,
        k_max=100,
        budget_max=100_000,
        pwr_max_results=1_000_000,
        repeats=3,
    ),
}


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default: "default")."""
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if name not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        )
    return SCALES[name]


def time_call(
    fn: Callable[[], object],
    repeats: int = 3,
    time_budget_s: float = 2.0,
) -> float:
    """Best-of-``repeats`` wall-clock duration of ``fn()`` in milliseconds.

    Repetition stops early once ``time_budget_s`` of total wall clock
    has been spent, so slow sweep points are measured once instead of
    stalling the whole figure.
    """
    best = float("inf")
    total = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        duration = time.perf_counter() - start
        best = min(best, duration)
        total += duration
        if total > time_budget_s:
            break
    return best * 1000.0


@dataclass
class Table:
    """One experiment's result series, printable in the paper's layout."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} entries for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> List:
        """All values of one column, by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    @staticmethod
    def _format_cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def format(self) -> str:
        """Render the table as aligned monospace text."""
        cells = [[self._format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(header), *(len(r[i]) for r in cells)) if cells else len(header)
            for i, header in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def save(self, directory: Union[str, Path]) -> Path:
        """Write the formatted table to ``directory/<experiment>.txt``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment}.txt"
        path.write_text(self.format() + "\n", encoding="utf-8")
        return path

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
