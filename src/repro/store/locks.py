"""Cross-process locking of a snapshot-store directory.

Two processes opening one store root used to race each other: both
would sweep temps, truncate the journal, and interleave segment and
journal writes with no mutual exclusion beyond per-process thread
locks.  :class:`StoreLock` closes that hole with an advisory
``fcntl.flock`` on ``<root>/store.lock``:

* **Exclusive** mode is the writer lock: recovery, ``persist``,
  ``journal_clean``, ``checkpoint`` and ``gc`` each hold it for the
  duration of the operation, so concurrent processes *interleave*
  whole operations instead of corrupting each other mid-write.
* **Shared** mode is the reader lock: a read-only open (status
  tooling) holds it across recovery reads, excluding writers without
  excluding other readers.
* Acquisition is a **bounded wait**: a non-blocking attempt first,
  then a poll loop capped by ``timeout_ms`` *and* the request's scoped
  deadline (:func:`repro.core.resilience.current_deadline`), whichever
  is tighter.  Expiry raises the typed
  :class:`~repro.exceptions.StoreLockedError` naming the recorded
  holder -- a fast, typed failure, never a silent queue.
* The **lock record** (:func:`repro.store.format.encode_lock_record`)
  written by exclusive holders carries PID + the host's boot nonce,
  and is cleared again on release (while the flock is still held), so
  a readable record always names a *current* holder: either a live
  process inside an exclusive operation, or one that crashed
  mid-operation and never released.  The kernel drops a dead holder's
  flock automatically, so the record is diagnostics, not correctness:
  :meth:`StoreLock.holder` reports whether the recorded PID is still
  alive *in this boot* (stale-lock detection), and
  :meth:`StoreLock.force_break` lets ``repro store unlock --force``
  clear a crashed holder's leftover record after an operator confirmed
  the holder is gone.

``fcntl`` locks are per open-file-description, so two
:class:`SnapshotStore` handles *in the same process* contend exactly
like two processes do -- which is what makes the contention tests
deterministic.  REP012 scopes all ``fcntl`` use to ``repro.store``;
every other layer goes through the store.

The lock participates in the serving stack's declared lock hierarchy
at :data:`~repro.core.lockcheck.RANK_STORE_FILE` (between the store's
thread lock and the pool registry) via the
:func:`~repro.core.lockcheck.check_acquirable` participation hooks, so
debug mode catches misordered acquisitions of the file lock exactly
like misordered mutexes.
"""

from __future__ import annotations

import errno
import fcntl
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from contextlib import contextmanager

from repro.core.lockcheck import (
    RANK_STORE_FILE,
    check_acquirable,
    note_acquired,
    note_released,
)
from repro.core.resilience import current_deadline
from repro.exceptions import StoreLockedError
from repro.store.format import decode_lock_record, encode_lock_record

#: File name of the advisory lock inside the store root.
LOCK_FILE_NAME = "store.lock"

#: Default bounded wait for the file lock, in milliseconds
#: (overridable per store and via ``REPRO_STORE_LOCK_TIMEOUT_MS``).
DEFAULT_LOCK_TIMEOUT_MS = 10_000.0

#: Poll interval of the bounded-wait loop, in seconds.  ``flock`` has
#: no native timed acquire; 5ms keeps the wait responsive without
#: burning a core.
_POLL_INTERVAL_S = 0.005

_BOOT_ID_PATH = "/proc/sys/kernel/random/boot_id"


def default_lock_timeout_ms() -> float:
    """The environment's lock timeout, or the built-in default."""
    raw = os.environ.get("REPRO_STORE_LOCK_TIMEOUT_MS", "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            return DEFAULT_LOCK_TIMEOUT_MS
        if value >= 0:
            return value
    return DEFAULT_LOCK_TIMEOUT_MS


def boot_nonce() -> str:
    """An identifier stable for this host boot, best effort.

    PIDs recycle across reboots; pairing the PID with the boot nonce
    lets stale-lock detection distinguish "that process is alive" from
    "a reboot recycled the PID".  Hosts without a readable boot id
    degrade to an empty nonce (holder liveness is then reported as
    unknown rather than guessed).
    """
    try:
        with open(_BOOT_ID_PATH, "r", encoding="utf-8") as handle:
            return handle.read().strip()
    except OSError:
        return ""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class StoreLock:
    """The advisory cross-process lock of one store root.

    One instance per :class:`~repro.store.SnapshotStore`; acquisitions
    are scoped (:meth:`exclusive` / :meth:`shared` context managers)
    and non-reentrant -- the store's own thread lock already serializes
    threads within a process, so at most one acquisition per store
    handle is ever in flight.
    """

    def __init__(
        self, root: Union[str, Path], timeout_ms: Optional[float] = None
    ) -> None:
        self.path = Path(root) / LOCK_FILE_NAME
        self.timeout_ms = (
            default_lock_timeout_ms() if timeout_ms is None else float(timeout_ms)
        )
        self._fd: Optional[int] = None
        self._wrote_record = False
        #: Acquisitions that could not take the lock on the first
        #: non-blocking attempt (the store mirrors this into its
        #: ``psr_store_lock_waits`` counter).
        self.waits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holder(self) -> Optional[Dict[str, Any]]:
        """The recorded exclusive holder, annotated with liveness.

        Returns ``None`` when no (readable) record exists -- the
        normal state between operations, since releases clear the
        record; a surviving record names a holder that is either
        mid-operation right now or crashed without releasing.  The
        ``"alive"`` field is ``True``/``False`` when this boot can
        tell, ``None`` when the record's boot nonce does not match
        this host's (or is absent) -- a different boot or host, where
        PID liveness means nothing.
        """
        try:
            data = self.path.read_bytes()
        except OSError:
            return None
        record = decode_lock_record(data)
        if record is None:
            return None
        pid = record.get("pid")
        nonce = record.get("boot")
        alive: Optional[bool] = None
        if isinstance(pid, int) and nonce and nonce == boot_nonce():
            alive = _pid_alive(pid)
        report = dict(record)
        report["alive"] = alive
        return report

    def held(self) -> bool:
        """Whether *this handle* currently holds the lock."""
        return self._fd is not None

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Hold the writer lock for the ``with`` body."""
        self._acquire(fcntl.LOCK_EX, "exclusive")
        try:
            yield
        finally:
            self._release()

    @contextmanager
    def shared(self) -> Iterator[None]:
        """Hold the reader lock for the ``with`` body."""
        self._acquire(fcntl.LOCK_SH, "shared")
        try:
            yield
        finally:
            self._release()

    def _acquire(self, operation: int, mode: str) -> None:
        assert self._fd is None, "StoreLock is not reentrant"
        check_acquirable(RANK_STORE_FILE, f"store-file.{self.path}", id(self))
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            waited = self._flock_bounded(fd, operation, mode)
        except BaseException:
            os.close(fd)
            raise
        if waited:
            self.waits += 1
        self._fd = fd
        note_acquired(RANK_STORE_FILE, f"store-file.{self.path}", id(self))
        if mode == "exclusive":
            self._write_record(fd, mode)
            self._wrote_record = True

    def _flock_bounded(self, fd: int, operation: int, mode: str) -> bool:
        """Bounded-wait flock; returns whether any waiting happened."""
        try:
            fcntl.flock(fd, operation | fcntl.LOCK_NB)
            return False
        except OSError as exc:
            if exc.errno not in (errno.EAGAIN, errno.EACCES):
                raise
        timeout_s = self.timeout_ms / 1000.0
        deadline = current_deadline()
        if deadline is not None:
            timeout_s = min(timeout_s, max(deadline.remaining_s(), 0.0))
        give_up = time.monotonic() + timeout_s
        while True:
            try:
                fcntl.flock(fd, operation | fcntl.LOCK_NB)
                return True
            except OSError as exc:
                if exc.errno not in (errno.EAGAIN, errno.EACCES):
                    raise
            now = time.monotonic()
            if now >= give_up:
                break
            time.sleep(min(_POLL_INTERVAL_S, give_up - now))
        holder = self.holder()
        if holder is None:
            detail = (
                "no exclusive holder recorded (held by shared readers, "
                "or the holder left no record)"
            )
        else:
            liveness = {True: "alive", False: "dead", None: "unknown"}[
                holder.get("alive")
            ]
            detail = f"held by pid {holder.get('pid')} ({liveness})"
        raise StoreLockedError(
            f"could not acquire the {mode} store lock {str(self.path)!r} "
            f"within {self.timeout_ms:.0f}ms; {detail}.  Wait and retry, "
            f"open the store read-only, or -- if the holder is gone -- "
            f"run 'repro store unlock --force'"
        )

    def _write_record(self, fd: int, mode: str) -> None:
        record = encode_lock_record(
            {"pid": os.getpid(), "boot": boot_nonce(), "mode": mode}
        )
        try:
            os.ftruncate(fd, 0)
            os.pwrite(fd, record, 0)
        except OSError:
            # The record is diagnostics only; never fail an acquisition
            # (the flock itself succeeded) over it.
            pass

    def _release(self) -> None:
        fd = self._fd
        assert fd is not None
        self._fd = None
        try:
            if self._wrote_record:
                # Clear the holder record while the flock is still
                # held, so a stale "held by pid X (alive)" never
                # outlives the hold it describes.  Best effort: the
                # record is diagnostics, the flock below must release
                # regardless.
                self._wrote_record = False
                try:
                    os.ftruncate(fd, 0)
                except OSError:
                    pass
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
            note_released(id(self))

    # ------------------------------------------------------------------
    # Operator intervention
    # ------------------------------------------------------------------
    def force_break(self) -> Dict[str, Any]:
        """Clear the holder record (``repro store unlock --force``).

        Releases clear the record themselves, so one that survives
        belongs to a holder that crashed mid-operation; the kernel
        already dropped its flock, leaving the stale *record* as the
        only thing to clean -- this truncates it.
        If the recorded holder is verifiably alive, the record is left
        in place -- breaking a live writer's lock record would only
        hide the contention -- and the report says so.  Returns a JSON
        report of what was found and done.
        """
        holder = self.holder()
        if holder is not None and holder.get("alive") is True:
            return {"broken": False, "holder": holder}
        try:
            with open(self.path, "wb"):
                pass
        except OSError:
            return {"broken": False, "holder": holder}
        return {"broken": True, "holder": holder}
