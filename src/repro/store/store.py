"""The crash-safe on-disk snapshot store.

:class:`SnapshotStore` owns one directory::

    <root>/
        segments/<snapshot-id>.seg   one verified segment per snapshot
        journal.wal                  write-ahead log of cleaning outcomes
        store.lock                   cross-process advisory lock file
        quarantine/                  segments that failed verification

and guarantees, under any crash at any point of its write protocols,
that the next open recovers either the complete pre-write state or the
complete post-write state -- never a torn hybrid, and never silently
wrong data.

**Segments** are written atomically: encode fully in memory, write to a
``.tmp-*`` sibling, fsync, rename over the final name, fsync the
directory.  A crash before the rename leaves only a temp file (swept on
open -> pre-state); after it, a fully durable segment (post-state).
Every decoded byte is checksummed (:mod:`repro.store.format`) and the
rebuilt ranked view is cross-checked column-by-column against the
stored bytes and the content hash, so corruption is *detected*, and
detected corruption is *quarantined* -- moved aside with a typed
:class:`~repro.exceptions.CorruptSnapshotError`, never served.

**The journal** records each executed cleaning (base snapshot, full
spec, outcome snapshot id and content hash) *before* the outcome
segment is written.  On open, a journaled outcome whose segment is
missing is *pending*: the serving layer
(:meth:`repro.api.service.TopKService._replay_journal`) re-executes the
spec -- cleaning is deterministic given the spec's seed -- and verifies
the regenerated content hash against the journaled one.  A torn tail
(crash mid-append) is truncated back out; the journal is the WAL, so
losing an un-fsynced tail record merely reverts to pre-state.

**Multi-process safety.**  Every operation that reads or writes the
directory holds the cross-process advisory lock
(:class:`repro.store.locks.StoreLock`): exclusive for recovery and
every mutation, shared for ``mode="readonly"`` opens.  Two processes
hammering one root therefore interleave *whole operations*; a process
that cannot get the lock within its bounded wait sheds with the typed
:class:`~repro.exceptions.StoreLockedError` instead of corrupting the
directory or queueing forever.  Because the lock is taken per
operation (not per handle lifetime), ``persist``, ``checkpoint`` and
``gc`` re-read the journal (and, for the latter two, the segment
directory) from disk under the lock rather than trusting this handle's
in-memory mirror -- another process may have written between our
operations; segment content-addressing makes ``persist`` naturally
idempotent across processes, and a tombstone a peer wrote is retired,
not raced.

**Checkpoint / compaction** (:meth:`SnapshotStore.checkpoint`) bounds
the journal: records whose outcome segment is durably committed and
verified are dropped, the survivors are rewritten through the same
atomic temp+fsync+rename discipline as segments, and a crash at any
step leaves the complete old journal or the complete new one.
:meth:`SnapshotStore.maybe_checkpoint` triggers it automatically past
``max_journal_records`` (or ``REPRO_JOURNAL_MAX_RECORDS``).

**Segment GC** (:meth:`SnapshotStore.gc`) applies a
:class:`RetentionPolicy` with a *two-phase delete*: phase one appends
a durable ``tombstone`` journal record (the segment is logically dead;
recovery stops loading it), phase two unlinks the file only after the
next successful checkpoint has made the tombstone durable.  A crash
between the phases leaves either the pre-GC state or a durable
tombstone whose file is swept by the next checkpoint -- never a
half-deleted store.  Re-persisting a tombstoned id *resurrects* it:
``persist`` retires the tombstone with an atomic journal rewrite (and
discards the dead file, which recovery skipped unverified) *before*
committing the new segment, so an acknowledged persist can never be
unlinked by a later checkpoint or skipped by recovery.

**Group commit** (``durability="batch"``) coalesces *journal* fsyncs:
appends mark the journal dirty and a single fsync covers every append
in a flush interval.  Reads (:meth:`journal_records`,
:meth:`pending_cleanings`, :meth:`status`), ``checkpoint`` and
``persist`` are flush barriers -- in particular the barrier in
``persist`` preserves the write-ahead ordering (the journal record is
durable before its outcome segment commits).  ``"strict"`` (alias
``"fsync"``, the default) keeps the one-fsync-per-append semantics
bit-identically.

Fault injection: every named step of the write / read protocols calls
:func:`repro.testing.faults.draw_disk_fault`, so the crash-atomicity
property above is *tested at every step*, not asserted.  With no plan
armed the hook is a single ``None`` check.  Injected
:class:`~repro.exceptions.SimulatedCrashError` deliberately skips all
cleanup (``except`` clauses here catch ``OSError`` only) -- a real
power cut runs no handlers either.  The lock context managers *do*
release the flock on the way out: that mirrors the kernel, which drops
a dead process's flock automatically.

Step names (patterns for :class:`~repro.testing.faults.FaultEvent`):
``segment:begin``, ``segment:payload``, ``segment:written``,
``segment:synced``, ``segment:renamed``, ``segment:committed``,
``journal:begin``, ``journal:payload``, ``journal:written``,
``journal:synced``, ``segment:read``, ``lock:acquire``,
``checkpoint:begin``, ``checkpoint:payload``, ``checkpoint:written``,
``checkpoint:synced``, ``checkpoint:renamed``,
``checkpoint:committed``, ``gc:tombstone``, ``gc:unlink``,
``resurrect:unlink``, ``resurrect:begin``, ``resurrect:payload``,
``resurrect:written``, ``resurrect:synced``, ``resurrect:renamed``,
``resurrect:committed``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.counters import STORE_COUNTERS
from repro.core.lockcheck import RANK_STORE, OrderedLock
from repro.db.database import CANONICAL_COLUMNS, RankedDatabase
from repro.db.io import database_from_dict, database_to_dict
from repro.db.ranking import ranking_descriptor, ranking_from_descriptor
from repro.exceptions import (
    CorruptSnapshotError,
    InvalidDatabaseError,
    SimulatedCrashError,
    StoreReadOnlyError,
    StoreWriteError,
)
from repro.store.format import (
    decode_journal,
    decode_segment,
    encode_journal,
    encode_journal_record,
    encode_segment,
)
from repro.store.locks import StoreLock
from repro.testing.faults import (
    draw_disk_fault,
    execute_disk_fault,
    flip_one_bit,
    torn_payload,
)

#: File-name suffix of snapshot segments.
SEGMENT_SUFFIX = ".seg"

#: Prefix of in-flight temp files (swept on open; the leak fixture
#: asserts none survive a test).
TMP_PREFIX = ".tmp-"

#: The write-ahead journal's file name inside the store root.
JOURNAL_NAME = "journal.wal"

#: Journal record schema version.
JOURNAL_SCHEMA = 1

#: Environment knob for the automatic checkpoint threshold (records).
JOURNAL_MAX_RECORDS_ENV = "REPRO_JOURNAL_MAX_RECORDS"

#: Default group-commit flush interval, in milliseconds.
DEFAULT_FLUSH_INTERVAL_MS = 50.0

_SEGMENTS_DIR = "segments"
_QUARANTINE_DIR = "quarantine"

#: Store roots opened by this process; the test suite's leak fixture
#: sweeps these for stranded temp files after every test.
_TRACKED_ROOTS: Set[Path] = set()


def tracked_store_roots() -> List[Path]:
    """Store roots opened in this process that still exist on disk."""
    return sorted(root for root in _TRACKED_ROOTS if root.is_dir())


def stranded_temp_files() -> List[Path]:
    """Leftover ``.tmp-*`` files across every tracked store root.

    A non-empty result outside a crash test means some write path
    leaked its temp file instead of renaming or removing it.
    """
    stranded: List[Path] = []
    for root in tracked_store_roots():
        for directory in (root, root / _SEGMENTS_DIR):
            if directory.is_dir():
                stranded.extend(sorted(directory.glob(TMP_PREFIX + "*")))
    return stranded


def default_max_journal_records() -> Optional[int]:
    """The environment's auto-checkpoint threshold, or ``None``.

    ``REPRO_JOURNAL_MAX_RECORDS`` must be a positive integer; anything
    else (including absence) disables automatic checkpointing -- an
    explicit :meth:`SnapshotStore.checkpoint` always works.
    """
    raw = os.environ.get(JOURNAL_MAX_RECORDS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _disk_step(step: str) -> Optional[Dict[str, Any]]:
    """Fire any armed fault at ``step``; returns data-kind directives.

    Raising kinds (``crash`` / ``enospc``) raise out of
    :func:`~repro.testing.faults.execute_disk_fault`; ``kill`` never
    returns and ``contend`` runs its second process to completion
    before returning.  Data-transforming directives (``torn`` /
    ``bitflip`` / ``shortread``) come back for the caller to apply to
    its bytes.
    """
    directive = draw_disk_fault(step)
    if directive is not None:
        execute_disk_fault(directive)
    return directive


def _apply_corruption(
    directive: Mapping[str, Any], data: bytes
) -> Tuple[bytes, bool]:
    """``(possibly corrupted bytes, crash after the write?)``."""
    kind = directive.get("kind")
    if kind == "torn":
        return torn_payload(data), True
    if kind == "bitflip":
        return flip_one_bit(data), False
    return data, False


@dataclass(frozen=True)
class RetentionPolicy:
    """How many segments :meth:`SnapshotStore.gc` should keep.

    ``keep_last_n`` keeps the N most recently written live segments
    (by file modification time; ``None`` keeps everything -- GC is a
    no-op).  ``pinned`` segments are never collected regardless of
    age.  Base and outcome segments of journal records that have not
    yet been checkpointed away, and anything the caller reports as in
    use, are always protected on top of this policy.
    """

    keep_last_n: Optional[int] = None
    pinned: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.keep_last_n is not None and self.keep_last_n < 0:
            raise ValueError(
                f"keep_last_n must be >= 0 or None, got {self.keep_last_n!r}"
            )
        object.__setattr__(self, "pinned", tuple(self.pinned))


@dataclass(frozen=True)
class RecoveryReport:
    """What one :class:`SnapshotStore` open found and repaired.

    Attributes
    ----------
    loaded:
        Snapshot ids whose segments verified and were adopted.
    quarantined:
        ``(file name, reason)`` per segment that failed verification.
        Exclusive opens move the file to ``quarantine/``; read-only
        opens only *detect* (the entry is reported, the file stays).
    swept_temp_files:
        In-flight temp files from a previous crash that were removed
        (always zero for read-only opens, which never repair).
    journal_records:
        Clean journal records parsed (pending or not).
    journal_truncated_bytes / journal_truncate_reason:
        Size and cause of the torn journal tail that was truncated
        away (zero / empty when the journal was clean; read-only opens
        report the torn tail without truncating the file).
    tombstoned_segments:
        Segment files skipped because a journal tombstone marks them
        logically deleted (two-phase GC awaiting its unlink).
    """

    loaded: Tuple[str, ...]
    quarantined: Tuple[Tuple[str, str], ...]
    swept_temp_files: int
    journal_records: int
    journal_truncated_bytes: int
    journal_truncate_reason: str
    tombstoned_segments: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON encoding (the CLI status envelope shape)."""
        return {
            "loaded": list(self.loaded),
            "quarantined": [list(entry) for entry in self.quarantined],
            "swept_temp_files": self.swept_temp_files,
            "journal_records": self.journal_records,
            "journal_truncated_bytes": self.journal_truncated_bytes,
            "journal_truncate_reason": self.journal_truncate_reason,
            "tombstoned_segments": self.tombstoned_segments,
        }


class SnapshotStore:
    """Durable, content-hash-addressed storage of ranked snapshots.

    Opening the store *is* recovery: the constructor takes the
    cross-process lock, sweeps temp files, truncates any torn journal
    tail, verifies every segment (quarantining failures), and leaves
    the verified snapshots in :meth:`snapshots` and the findings in
    :attr:`recovery`.  Journal records whose outcome segment is
    missing surface through :meth:`pending_cleanings` for the serving
    layer to re-execute.

    Parameters
    ----------
    root:
        The store directory (created if absent).
    durability:
        ``"strict"`` / ``"fsync"`` (default) syncs file and directory
        at every commit point -- the crash-safe mode.  ``"batch"``
        keeps segment commits strict but group-commits journal fsyncs
        (see the module docstring).  ``"none"`` skips fsyncs: atomic
        renames still give all-or-nothing *files*, but a power cut may
        revert to pre-state; meant for tests and throwaway runs.
    mode:
        ``"exclusive"`` (default) is the writer mode.  ``"readonly"``
        takes the shared lock, never repairs or mutates (status
        tooling next to a live writer); mutations raise
        :class:`~repro.exceptions.StoreReadOnlyError`.
    lock_timeout_ms:
        Bounded wait for the cross-process lock (default:
        ``REPRO_STORE_LOCK_TIMEOUT_MS`` or 10s).  Scoped request
        deadlines tighten it further.
    max_journal_records:
        Auto-checkpoint threshold for :meth:`maybe_checkpoint`
        (default: ``REPRO_JOURNAL_MAX_RECORDS``, else disabled).
    flush_interval_ms:
        Group-commit coalescing window for ``durability="batch"``.

    Operational counters (``psr_store_writes`` segments committed,
    ``psr_store_replays`` journal records re-executed,
    ``psr_store_quarantined`` files quarantined,
    ``psr_store_compactions`` journal checkpoints,
    ``psr_store_gc_unlinks`` segment files reclaimed,
    ``psr_store_lock_waits`` contended lock acquisitions,
    ``psr_store_group_flushes`` coalesced journal fsyncs) live on the
    store -- one per directory, shared by all sessions served over it
    -- and are declared in :data:`repro.core.counters.STORE_COUNTERS`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        durability: str = "fsync",
        mode: str = "exclusive",
        lock_timeout_ms: Optional[float] = None,
        max_journal_records: Optional[int] = None,
        flush_interval_ms: float = DEFAULT_FLUSH_INTERVAL_MS,
    ) -> None:
        if durability == "strict":
            durability = "fsync"
        if durability not in ("fsync", "none", "batch"):
            raise ValueError(
                f"durability must be 'strict', 'fsync', 'batch' or "
                f"'none', got {durability!r}"
            )
        if mode not in ("exclusive", "readonly"):
            raise ValueError(
                f"mode must be 'exclusive' or 'readonly', got {mode!r}"
            )
        self.root = Path(root)
        self.durability = durability
        self.mode = mode
        self.flush_interval_ms = float(flush_interval_ms)
        self.max_journal_records = (
            default_max_journal_records()
            if max_journal_records is None
            else max_journal_records
        )
        self._segments_dir = self.root / _SEGMENTS_DIR
        self._quarantine_dir = self.root / _QUARANTINE_DIR
        self._journal_path = self.root / JOURNAL_NAME
        self._lock = OrderedLock(f"store.{self.root.name}", RANK_STORE)
        self.psr_store_writes = 0
        self.psr_store_replays = 0
        self.psr_store_quarantined = 0
        self.psr_store_compactions = 0
        self.psr_store_gc_unlinks = 0
        self.psr_store_lock_waits = 0
        self.psr_store_group_flushes = 0
        #: Journal fsyncs issued by this handle (strict mode pays one
        #: per append; batch mode one per coalesced flush).  Not a
        #: ``psr_`` counter: it is a physical-I/O gauge for the
        #: group-commit tests, not a service-envelope metric.
        self.journal_fsyncs = 0
        self._journal_dirty = False
        self._last_journal_flush = time.monotonic()
        self._snapshots: Dict[str, RankedDatabase] = {}
        self._journal: List[Dict[str, Any]] = []
        self._segments_dir.mkdir(parents=True, exist_ok=True)
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        self._file_lock = StoreLock(self.root, timeout_ms=lock_timeout_ms)
        _TRACKED_ROOTS.add(self.root)
        with self._lock:
            if mode == "readonly":
                with self._shared():
                    self.recovery = self._recover()
            else:
                with self._exclusive():
                    self.recovery = self._recover()

    # ------------------------------------------------------------------
    # Cross-process locking
    # ------------------------------------------------------------------
    @contextmanager
    def _exclusive(self) -> Iterator[None]:
        """Hold the cross-process writer lock for one operation.

        Caller holds the thread lock (rank order: RANK_STORE before
        RANK_STORE_FILE).  Fires the ``lock:acquire`` fault step first
        so contention chaos can run a second process exactly here.
        """
        _disk_step("lock:acquire")
        with self._file_lock.exclusive():
            self.psr_store_lock_waits = self._file_lock.waits
            yield

    @contextmanager
    def _shared(self) -> Iterator[None]:
        """Hold the cross-process reader lock for one operation."""
        _disk_step("lock:acquire")
        with self._file_lock.shared():
            self.psr_store_lock_waits = self._file_lock.waits
            yield

    def _require_writer(self, operation: str) -> None:
        if self.mode == "readonly":
            raise StoreReadOnlyError(
                f"store {str(self.root)!r} is open read-only; "
                f"{operation} needs mode='exclusive'"
            )

    def lock_holder(self) -> Optional[Dict[str, Any]]:
        """The recorded cross-process lock holder (see ``StoreLock``)."""
        return self._file_lock.holder()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshots(self) -> Dict[str, RankedDatabase]:
        """Verified snapshot views by id (a copy; safe to mutate)."""
        with self._lock:
            return dict(self._snapshots)

    def has_segment(self, snapshot_id: str) -> bool:
        """Whether a verified segment for this snapshot is on disk."""
        with self._lock:
            return snapshot_id in self._snapshots

    def journal_records(self) -> List[Dict[str, Any]]:
        """Every clean journal record, in append order (copies).

        A flush barrier in batch mode: what this returns is durable.
        """
        with self._lock:
            self._flush_journal()
            return [dict(r) for r in self._journal]

    def pending_cleanings(self) -> List[Dict[str, Any]]:
        """Journaled cleanings whose outcome segment is missing.

        These are the writes a crash interrupted after the journal
        append but before the segment commit; the serving layer
        re-executes them deterministically at open.  Tombstoned
        outcomes are excluded -- a logically deleted segment owes
        nobody a replay.
        """
        with self._lock:
            self._flush_journal()
            tombstoned = _tombstone_ids(self._journal)
            return [
                dict(r)
                for r in self._journal
                if r.get("kind", "clean") == "clean"
                and r.get("outcome") not in self._snapshots
                and r.get("outcome") not in tombstoned
            ]

    def counters(self) -> Dict[str, int]:
        """The store's operational counters, in registry order."""
        return {name: getattr(self, name) for name in STORE_COUNTERS}

    def status(self) -> Dict[str, Any]:
        """One JSON-serializable health summary of the store.

        Everything an operator needs after an incident: what is
        durable, what the journal still owes (records *and* bytes),
        segment count and bytes, tombstones awaiting their unlink, the
        recorded cross-process lock holder, what recovery moved to
        ``quarantine/``, and the counters -- the payload behind
        ``repro store status``.  A flush barrier in batch mode.
        """
        with self._lock:
            self._flush_journal()
            snapshot_ids = sorted(self._snapshots)
            journal = len(self._journal)
            tombstoned = _tombstone_ids(self._journal)
            tombstones = len(tombstoned)
            pending = [
                r.get("outcome")
                for r in self._journal
                if r.get("kind", "clean") == "clean"
                and r.get("outcome") not in self._snapshots
                and r.get("outcome") not in tombstoned
            ]
        try:
            journal_bytes = self._journal_path.stat().st_size
        except OSError:
            journal_bytes = 0
        segment_files = 0
        segment_bytes = 0
        for path in self._segments_dir.glob("*" + SEGMENT_SUFFIX):
            try:
                segment_bytes += path.stat().st_size
            except OSError:
                continue
            segment_files += 1
        quarantined = sorted(
            p.name for p in self._quarantine_dir.iterdir() if p.is_file()
        )
        return {
            "root": str(self.root),
            "durability": self.durability,
            "mode": self.mode,
            "snapshots": snapshot_ids,
            "journal_records": journal,
            "journal_bytes": journal_bytes,
            "segment_files": segment_files,
            "segment_bytes": segment_bytes,
            "tombstones": tombstones,
            "pending_cleanings": pending,
            "quarantined_files": quarantined,
            "lock_holder": self.lock_holder(),
            "counters": self.counters(),
            "recovery": self.recovery.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SnapshotStore {str(self.root)!r} [{self.mode}]: "
            f"{len(self._snapshots)} segments, "
            f"{len(self._journal)} journal records>"
        )

    # ------------------------------------------------------------------
    # Recovery (runs in the constructor, under the file lock)
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveryReport:
        repair = self.mode == "exclusive"
        swept = 0
        if repair:
            for directory in (self.root, self._segments_dir):
                for tmp in sorted(directory.glob(TMP_PREFIX + "*")):
                    tmp.unlink()
                    swept += 1

        truncated_bytes = 0
        truncate_reason = ""
        if self._journal_path.exists():
            data = self._journal_path.read_bytes()
            records, clean_length, truncate_reason = decode_journal(data)
            if clean_length < len(data):
                truncated_bytes = len(data) - clean_length
                if repair:
                    with open(self._journal_path, "r+b") as f:
                        f.truncate(clean_length)
                        self._fsync_file(f)
                    self._fsync_dir(self.root)
            self._journal = records

        tombstoned = _tombstone_ids(self._journal)
        loaded: List[str] = []
        quarantined: List[Tuple[str, str]] = []
        skipped_tombstoned = 0
        for path in sorted(self._segments_dir.glob("*" + SEGMENT_SUFFIX)):
            if path.name[: -len(SEGMENT_SUFFIX)] in tombstoned:
                skipped_tombstoned += 1
                continue
            try:
                snapshot_id, ranked = self._load_segment(path)
                if snapshot_id != path.name[: -len(SEGMENT_SUFFIX)]:
                    raise CorruptSnapshotError(
                        f"segment corrupt: header names snapshot "
                        f"{snapshot_id!r} but the file is {path.name!r}"
                    )
            except (CorruptSnapshotError, OSError) as exc:
                quarantined.append((path.name, str(exc)))
                if repair:
                    self._quarantine_file(path)
                continue
            self._snapshots[snapshot_id] = ranked
            loaded.append(snapshot_id)
        return RecoveryReport(
            loaded=tuple(loaded),
            quarantined=tuple(quarantined),
            swept_temp_files=swept,
            journal_records=len(self._journal),
            journal_truncated_bytes=truncated_bytes,
            journal_truncate_reason=truncate_reason,
            tombstoned_segments=skipped_tombstoned,
        )

    def _load_segment(self, path: Path) -> Tuple[str, RankedDatabase]:
        """Decode, verify, and rebuild one segment -- or raise.

        Verification is belt *and* suspenders: the codec checks
        framing, per-column CRCs and the whole-file digest; this layer
        then rebuilds the database from the structure JSON, recomputes
        its content hash against the header's, re-ranks it cold, and
        compares every canonical column bitwise against the stored
        bytes.  A segment that passes cannot silently disagree with
        the view a fresh construction would produce.
        """
        directive = _disk_step("segment:read")
        data = path.read_bytes()
        if directive is not None:
            kind = directive.get("kind")
            if kind == "shortread":
                data = data[: len(data) // 2]
            elif kind == "bitflip":
                data = flip_one_bit(data)
        header, structure, columns = decode_segment(data)
        try:
            db = database_from_dict(structure)
        except (InvalidDatabaseError, ValueError, KeyError, TypeError) as exc:
            raise CorruptSnapshotError(
                f"segment corrupt: structure does not decode ({exc})"
            ) from None
        if db.content_hash() != header.get("content_hash"):
            raise CorruptSnapshotError(
                "segment corrupt: content hash of the decoded database "
                "does not match the header"
            )
        try:
            ranking = ranking_from_descriptor(header.get("ranking"))
        except ValueError as exc:
            raise CorruptSnapshotError(
                f"segment corrupt: {exc}"
            ) from None
        ranked = RankedDatabase(db, ranking)
        for column in CANONICAL_COLUMNS:
            blob = columns.get(column)
            if blob is None:
                raise CorruptSnapshotError(
                    f"segment corrupt: column {column!r} is missing"
                )
            if np.ascontiguousarray(getattr(ranked, column)).tobytes() != blob:
                raise CorruptSnapshotError(
                    f"segment corrupt: column {column!r} does not match "
                    f"the re-ranked view"
                )
        snapshot_id = header.get("snapshot_id")
        if not isinstance(snapshot_id, str) or not snapshot_id:
            raise CorruptSnapshotError(
                f"segment corrupt: bad snapshot id {snapshot_id!r}"
            )
        return snapshot_id, ranked

    def _quarantine_file(self, path: Path) -> str:
        """Move a failing file into ``quarantine/``; returns its name."""
        destination = self._quarantine_dir / path.name
        counter = 0
        while destination.exists():
            counter += 1
            destination = self._quarantine_dir / f"{path.name}.{counter}"
        os.replace(path, destination)
        self._fsync_dir(self._quarantine_dir)
        self._fsync_dir(path.parent)
        self.psr_store_quarantined += 1
        return destination.name

    def quarantine_segment(self, snapshot_id: str, reason: str) -> None:
        """Evict a loaded snapshot whose segment proved untrustworthy.

        Used by adopters (the session pool) that detect an
        inconsistency the store's own verification cannot see, e.g. a
        snapshot id derivation mismatch.  The segment moves to
        ``quarantine/`` and the snapshot disappears from
        :meth:`snapshots`; ``reason`` travels in the raised error.

        Raises :class:`~repro.exceptions.CorruptSnapshotError` -- the
        caller decides whether to swallow it (skip the snapshot) or
        propagate.
        """
        with self._lock:
            self._require_writer("quarantine_segment")
            with self._exclusive():
                self._snapshots.pop(snapshot_id, None)
                path = self._segment_path(snapshot_id)
                if path.exists():
                    self._quarantine_file(path)
        raise CorruptSnapshotError(
            f"segment for snapshot {snapshot_id!r} quarantined: {reason}"
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def persist(self, snapshot_id: str, ranked: RankedDatabase) -> bool:
        """Durably write one snapshot segment; idempotent by id.

        Returns ``False`` (writing nothing) when the segment already
        exists -- including when *another process* committed it
        between our operations: segments are content-addressed, so a
        same-id file is the same bytes, and this handle simply adopts
        it.  A *tombstoned* id is the exception: its journal tombstone
        (from :meth:`gc`, possibly another process's) is first retired
        by an atomic journal rewrite, and any file it left behind is
        discarded rather than adopted -- recovery skipped it
        unverified and the next checkpoint was about to unlink it.
        Only then does the segment commit, so a ``True`` return is an
        acknowledged durable write that no later checkpoint can sweep
        and no recovery will skip.  Any ``OSError`` on the write path
        -- disk full,
        permissions -- cleans up the temp file and re-raises as
        :class:`~repro.exceptions.StoreWriteError`; injected
        :class:`~repro.exceptions.SimulatedCrashError` propagates with
        no cleanup at all, leaving the on-disk state a crash would.
        The in-memory index is updated only after the commit point, so
        a failed persist is invisible both on disk and in memory.

        A group-commit flush barrier runs first, preserving the
        write-ahead ordering: the journal record that promised this
        outcome is durable before its segment becomes visible.
        """
        self._require_writer("persist")
        descriptor = ranking_descriptor(ranked.ranking)
        if descriptor is None:
            raise StoreWriteError(
                f"ranking {ranked.ranking!r} has no serializable "
                f"descriptor; durable snapshots require a factory "
                f"ranking (by_value / by_key / by_sum_of_keys)"
            )
        with self._lock:
            self._require_writer("persist")
            if snapshot_id in self._snapshots:
                return False
            with self._exclusive():
                self._flush_journal()
                final = self._segment_path(snapshot_id)
                # Re-read the journal from disk: a tombstone for this
                # id (ours or another process's) decides whether an
                # existing file is adoptable or dead.
                records = self._read_journal_from_disk()
                self._journal = records
                if snapshot_id in _tombstone_ids(records):
                    self._retire_tombstone(snapshot_id, records, final)
                elif final.exists():
                    self._snapshots[snapshot_id] = ranked
                    return False
                _disk_step("segment:begin")
                columns = {
                    name: (
                        getattr(ranked, name).dtype.str,
                        np.ascontiguousarray(getattr(ranked, name)).tobytes(),
                    )
                    for name in CANONICAL_COLUMNS
                }
                payload = encode_segment(
                    snapshot_id=snapshot_id,
                    content_hash=ranked.db.content_hash(),
                    name=ranked.db.name,
                    ranking=descriptor,
                    structure=database_to_dict(ranked.db),
                    columns=columns,
                )
                crash_after = False
                directive = _disk_step("segment:payload")
                if directive is not None:
                    payload, crash_after = _apply_corruption(
                        directive, payload
                    )
                tmp = self._segments_dir / (TMP_PREFIX + snapshot_id)
                try:
                    with open(tmp, "wb") as f:
                        f.write(payload)
                        _disk_step("segment:written")
                        self._fsync_file(f)
                    _disk_step("segment:synced")
                    os.replace(tmp, final)
                except OSError as exc:
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
                    raise StoreWriteError(
                        f"could not persist segment {snapshot_id!r}: {exc}"
                    ) from exc
                _disk_step("segment:renamed")
                self._fsync_dir(self._segments_dir)
                if crash_after:
                    # A torn write models data that never hit the
                    # platter even though the rename did: the truncated
                    # segment is durable and the "process" dies here.
                    raise SimulatedCrashError(
                        f"injected torn write of segment {snapshot_id!r}"
                    )
                _disk_step("segment:committed")
                self._snapshots[snapshot_id] = ranked
                self.psr_store_writes += 1
                return True

    def journal_clean(
        self,
        base_snapshot_id: str,
        spec_payload: Mapping[str, Any],
        outcome_snapshot_id: str,
        outcome_hash: str,
    ) -> Dict[str, Any]:
        """Append one cleaning outcome to the write-ahead journal.

        Called *before* the outcome segment is persisted: once this
        returns (and, in batch mode, once the next flush barrier
        passes), a crash at any later point is recoverable by
        re-executing ``spec_payload`` against the base snapshot and
        checking the regenerated content hash against
        ``outcome_hash``.  A crash *during* the append leaves a torn
        tail the next open truncates away -- the cleaning then simply
        never happened durably (pre-state), which is correct because
        the caller had not yet acknowledged it.

        Past the ``max_journal_records`` threshold the journal is
        checkpointed automatically (:meth:`maybe_checkpoint`).
        """
        record = {
            "schema": JOURNAL_SCHEMA,
            "kind": "clean",
            "base": base_snapshot_id,
            "outcome": outcome_snapshot_id,
            "outcome_hash": outcome_hash,
            "spec": dict(spec_payload),
        }
        with self._lock:
            self._require_writer("journal_clean")
            with self._exclusive():
                _disk_step("journal:begin")
                self._append_journal_frame(record, fire_steps=True)
                self._journal.append(record)
        self.maybe_checkpoint()
        return dict(record)

    def note_replayed(self) -> None:
        """Count one journal record successfully re-executed at open."""
        with self._lock:
            self.psr_store_replays += 1

    # ------------------------------------------------------------------
    # Checkpoint / compaction
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Compact the journal and finish any pending two-phase GC.

        Under the exclusive lock, re-reads the journal *from disk*
        (another process may have appended), drops ``clean`` records
        whose outcome segment is durably committed and verifies, drops
        ``tombstone`` records whose file is already gone, and rewrites
        the survivors atomically (temp + fsync + rename + dir fsync)
        -- a crash at any step leaves the complete old journal or the
        complete new one.  After the rewrite commits, tombstoned
        segment files still on disk are unlinked (phase two of
        :meth:`gc`); those tombstones drop out at the *next*
        checkpoint once their file is observed gone.

        Returns a report: ``compacted`` (whether a rewrite happened),
        ``records_before`` / ``records_after`` / ``dropped``,
        ``unlinked`` segment ids, and the journal's byte size.
        """
        with self._lock:
            self._require_writer("checkpoint")
            with self._exclusive():
                return self._checkpoint_locked()

    def maybe_checkpoint(self) -> Optional[Dict[str, Any]]:
        """Checkpoint when the journal exceeds its record threshold.

        A no-op (returning ``None``) when ``max_journal_records`` is
        unset or the journal is still under it.
        """
        threshold = self.max_journal_records
        if threshold is None:
            return None
        with self._lock:
            over = len(self._journal) >= threshold
        if not over:
            return None
        return self.checkpoint()

    def _checkpoint_locked(self) -> Dict[str, Any]:
        self._flush_journal()
        records = self._read_journal_from_disk()
        surviving: List[Dict[str, Any]] = []
        dropped = 0
        for record in records:
            kind = record.get("kind", "clean")
            if kind == "clean":
                if self._segment_verified(record.get("outcome")):
                    dropped += 1
                else:
                    surviving.append(record)
            elif kind == "tombstone":
                segment = record.get("segment")
                if (
                    isinstance(segment, str)
                    and self._segment_path(segment).exists()
                ):
                    surviving.append(record)
                else:
                    dropped += 1
            else:
                # Unknown kinds (a future schema) are preserved, never
                # silently dropped.
                surviving.append(record)
        compacted = dropped > 0
        if compacted:
            self._rewrite_journal(surviving, "checkpoint")
            self.psr_store_compactions += 1
        self._journal = surviving
        # Phase two of the two-phase delete: every surviving tombstone
        # is durable in the journal that just committed (or already
        # was), so its file is now safe to unlink.
        unlinked: List[str] = []
        for record in surviving:
            if record.get("kind") != "tombstone":
                continue
            segment = record.get("segment")
            if not isinstance(segment, str):
                continue
            path = self._segment_path(segment)
            if not path.exists():
                continue
            _disk_step("gc:unlink")
            try:
                path.unlink()
            except OSError:
                continue
            self.psr_store_gc_unlinks += 1
            unlinked.append(segment)
        if unlinked:
            self._fsync_dir(self._segments_dir)
        try:
            journal_bytes = self._journal_path.stat().st_size
        except OSError:
            journal_bytes = 0
        return {
            "compacted": compacted,
            "records_before": len(records),
            "records_after": len(surviving),
            "dropped": dropped,
            "unlinked": unlinked,
            "journal_bytes": journal_bytes,
        }

    def _rewrite_journal(
        self, records: List[Dict[str, Any]], step_prefix: str
    ) -> None:
        """Atomically replace the journal with ``records``.

        Same discipline as segments -- temp, fsync, rename over the
        final name, fsync the directory -- so a crash at any
        ``<step_prefix>:*`` fault step leaves the complete old journal
        or the complete new one; the rename is the commit point.
        Caller holds both locks and has flushed any buffered appends.
        """
        _disk_step(step_prefix + ":begin")
        payload = encode_journal(records)
        _disk_step(step_prefix + ":payload")
        tmp = self.root / (TMP_PREFIX + JOURNAL_NAME)
        try:
            with open(tmp, "wb") as f:
                f.write(payload)
                _disk_step(step_prefix + ":written")
                if self.durability != "none":
                    self._journal_fsync(f)
            _disk_step(step_prefix + ":synced")
            os.replace(tmp, self._journal_path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise StoreWriteError(
                f"could not rewrite the journal: {exc}"
            ) from exc
        _disk_step(step_prefix + ":renamed")
        self._fsync_dir(self.root)
        _disk_step(step_prefix + ":committed")
        self._journal_dirty = False

    def _retire_tombstone(
        self, snapshot_id: str, records: List[Dict[str, Any]], final: Path
    ) -> None:
        """Durably resurrect a tombstoned id so it can be re-persisted.

        Without this, ``persist`` after :meth:`gc` would silently lose
        an acknowledged write: the surviving tombstone makes recovery
        skip the id, and the next checkpoint -- seeing tombstone plus
        file -- would unlink the freshly written segment.  A file the
        tombstone left behind (phase two has not run yet) is not
        adoptable either: recovery skipped it *unverified*, so it is
        dead bytes and is removed first.

        Crash-safety: removing the file reaches exactly the state
        phase two of GC produces (durable tombstone, file gone), and
        the journal rewrite is atomic, so a crash at any step leaves
        either that state or a tombstone-free journal with no file --
        both pre-states in which this persist was never acknowledged
        and a retry converges.  Only after both steps does the caller
        write the new segment.
        """
        _disk_step("resurrect:unlink")
        if final.exists():
            try:
                final.unlink()
            except OSError as exc:
                raise StoreWriteError(
                    f"could not discard the tombstoned segment file of "
                    f"{snapshot_id!r}: {exc}"
                ) from exc
            self._fsync_dir(self._segments_dir)
        surviving = [
            record
            for record in records
            if not (
                record.get("kind") == "tombstone"
                and record.get("segment") == snapshot_id
            )
        ]
        self._rewrite_journal(surviving, "resurrect")
        self._journal = surviving

    def _segment_verified(self, snapshot_id: Any) -> bool:
        """Whether the segment file is committed and decodes cleanly."""
        if not isinstance(snapshot_id, str) or not snapshot_id:
            return False
        try:
            data = self._segment_path(snapshot_id).read_bytes()
        except OSError:
            return False
        try:
            header, _, _ = decode_segment(data)
        except CorruptSnapshotError:
            return False
        return header.get("snapshot_id") == snapshot_id

    # ------------------------------------------------------------------
    # Segment GC (phase one: tombstones)
    # ------------------------------------------------------------------
    def gc(
        self,
        policy: Optional[RetentionPolicy] = None,
        in_use: Union[Iterable[str], Callable[[], Iterable[str]]] = (),
    ) -> Dict[str, Any]:
        """Tombstone live segments beyond the retention policy.

        Phase one of the two-phase delete: each victim gets a durable
        ``tombstone`` journal record and drops from :meth:`snapshots`;
        the file is unlinked only by the *next* successful
        :meth:`checkpoint` (which also retires the tombstone once the
        file is gone).  Protected and never collected: ``in_use`` ids
        (the caller's leased / cached sessions), the policy's
        ``pinned`` ids, and every base or outcome named by a journal
        record that has not been checkpointed away (replay must stay
        possible).  Candidates are ordered by file modification time;
        the newest ``keep_last_n`` survive.

        ``in_use`` may be a callable instead of an id collection; it
        is then evaluated *under the store's exclusive lock*, at the
        moment victims are chosen.  Callers whose in-use set can grow
        concurrently (the session pool's lease path) pass a callback
        so an id leased after the GC call started is still protected,
        instead of a pre-snapshotted set that races the sweep.

        Returns a report of ``tombstoned``, ``live`` (survivors) and
        ``protected`` ids.  A ``None`` policy (or ``keep_last_n``
        ``None``) is a no-op.
        """
        with self._lock:
            self._require_writer("gc")
            with self._exclusive():
                resolved = in_use() if callable(in_use) else in_use
                return self._gc_locked(policy, frozenset(resolved))

    def _gc_locked(
        self, policy: Optional[RetentionPolicy], in_use: frozenset
    ) -> Dict[str, Any]:
        self._flush_journal()
        records = self._read_journal_from_disk()
        self._journal = records
        tombstoned = _tombstone_ids(records)
        protected: Set[str] = set(in_use)
        if policy is not None:
            protected.update(policy.pinned)
        for record in records:
            if record.get("kind", "clean") == "clean":
                for key in ("base", "outcome"):
                    value = record.get(key)
                    if isinstance(value, str):
                        protected.add(value)
        entries: List[Tuple[float, str]] = []
        for path in sorted(self._segments_dir.glob("*" + SEGMENT_SUFFIX)):
            segment_id = path.name[: -len(SEGMENT_SUFFIX)]
            if segment_id in tombstoned:
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, segment_id))
        entries.sort()
        live = [segment_id for _, segment_id in entries]
        keep_n = policy.keep_last_n if policy is not None else None
        if keep_n is None:
            victims: List[str] = []
        else:
            newest = set(live[len(live) - keep_n :]) if keep_n > 0 else set()
            victims = [
                segment_id
                for segment_id in live
                if segment_id not in newest and segment_id not in protected
            ]
        for segment_id in victims:
            _disk_step("gc:tombstone")
            record = {
                "schema": JOURNAL_SCHEMA,
                "kind": "tombstone",
                "segment": segment_id,
            }
            self._append_journal_frame(record, fire_steps=False)
            self._journal.append(record)
            self._snapshots.pop(segment_id, None)
        return {
            "tombstoned": victims,
            "live": [s for s in live if s not in victims],
            "protected": sorted(protected & set(live)),
        }

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _append_journal_frame(
        self, record: Mapping[str, Any], fire_steps: bool
    ) -> None:
        """Append one framed record; caller holds both locks.

        ``fire_steps`` enables the ``journal:*`` fault steps (the
        cleaning-append path); the tombstone path fires its own
        ``gc:tombstone`` step instead.  An ``OSError`` mid-append
        rolls the partial frame back out so the journal stays a clean
        prefix of verified records.
        """
        frame = encode_journal_record(record)
        crash_after = False
        if fire_steps:
            directive = _disk_step("journal:payload")
            if directive is not None:
                frame, crash_after = _apply_corruption(directive, frame)
        try:
            f = open(self._journal_path, "ab")
        except OSError as exc:
            raise StoreWriteError(
                f"could not open journal for append: {exc}"
            ) from exc
        with f:
            start = f.tell()
            try:
                f.write(frame)
                f.flush()
                if fire_steps:
                    _disk_step("journal:written")
                self._journal_sync_policy(f)
            except OSError as exc:
                try:
                    f.truncate(start)
                    self._fsync_file(f)
                except OSError:
                    pass
                raise StoreWriteError(
                    f"could not append journal record: {exc}"
                ) from exc
        if fire_steps:
            _disk_step("journal:synced")
        if crash_after:
            raise SimulatedCrashError(
                "injected torn append to the cleaning journal"
            )

    def _journal_sync_policy(self, f: Any) -> None:
        """Apply this store's durability mode to one journal append."""
        if self.durability == "fsync":
            self._journal_fsync(f)
        elif self.durability == "batch":
            self._journal_dirty = True
            now = time.monotonic()
            elapsed_ms = (now - self._last_journal_flush) * 1000.0
            if elapsed_ms >= self.flush_interval_ms:
                self._journal_fsync(f)
                self._journal_dirty = False
                self._last_journal_flush = now
                self.psr_store_group_flushes += 1

    def _flush_journal(self) -> None:
        """Group-commit barrier: make every buffered append durable."""
        if self.durability != "batch" or not self._journal_dirty:
            return
        try:
            with open(self._journal_path, "ab") as f:
                self._journal_fsync(f)
        except OSError as exc:
            raise StoreWriteError(
                f"could not flush the journal: {exc}"
            ) from exc
        self._journal_dirty = False
        self._last_journal_flush = time.monotonic()
        self.psr_store_group_flushes += 1

    def _journal_fsync(self, f: Any) -> None:
        os.fsync(f.fileno())
        self.journal_fsyncs += 1

    def _read_journal_from_disk(self) -> List[Dict[str, Any]]:
        """The clean prefix of the on-disk journal, fresh.

        ``checkpoint`` and ``gc`` trust this, not the in-memory
        mirror: between per-operation locks another process may have
        appended records this handle never saw.
        """
        try:
            data = self._journal_path.read_bytes()
        except OSError:
            return []
        records, _, _ = decode_journal(data)
        return records

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _segment_path(self, snapshot_id: str) -> Path:
        return self._segments_dir / (snapshot_id + SEGMENT_SUFFIX)

    def _fsync_file(self, f: Any) -> None:
        if self.durability != "none":
            os.fsync(f.fileno())

    def _fsync_dir(self, path: Path) -> None:
        if self.durability == "none":
            return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def _tombstone_ids(records: Iterable[Mapping[str, Any]]) -> Set[str]:
    """Segment ids named by tombstone records (logically deleted)."""
    return {
        record["segment"]
        for record in records
        if record.get("kind") == "tombstone"
        and isinstance(record.get("segment"), str)
    }
