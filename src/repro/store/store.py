"""The crash-safe on-disk snapshot store.

:class:`SnapshotStore` owns one directory::

    <root>/
        segments/<snapshot-id>.seg   one verified segment per snapshot
        journal.wal                  write-ahead log of cleaning outcomes
        quarantine/                  segments that failed verification

and guarantees, under any crash at any point of its write protocols,
that the next open recovers either the complete pre-write state or the
complete post-write state -- never a torn hybrid, and never silently
wrong data.

**Segments** are written atomically: encode fully in memory, write to a
``.tmp-*`` sibling, fsync, rename over the final name, fsync the
directory.  A crash before the rename leaves only a temp file (swept on
open -> pre-state); after it, a fully durable segment (post-state).
Every decoded byte is checksummed (:mod:`repro.store.format`) and the
rebuilt ranked view is cross-checked column-by-column against the
stored bytes and the content hash, so corruption is *detected*, and
detected corruption is *quarantined* -- moved aside with a typed
:class:`~repro.exceptions.CorruptSnapshotError`, never served.

**The journal** records each executed cleaning (base snapshot, full
spec, outcome snapshot id and content hash) *before* the outcome
segment is written.  On open, a journaled outcome whose segment is
missing is *pending*: the serving layer
(:meth:`repro.api.service.TopKService._replay_journal`) re-executes the
spec -- cleaning is deterministic given the spec's seed -- and verifies
the regenerated content hash against the journaled one.  A torn tail
(crash mid-append) is truncated back out; the journal is the WAL, so
losing an un-fsynced tail record merely reverts to pre-state.

Fault injection: every named step of the write / read protocols calls
:func:`repro.testing.faults.draw_disk_fault`, so the crash-atomicity
property above is *tested at every step*, not asserted.  With no plan
armed the hook is a single ``None`` check.  Injected
:class:`~repro.exceptions.SimulatedCrashError` deliberately skips all
cleanup (``except`` clauses here catch ``OSError`` only) -- a real
power cut runs no handlers either.

Step names (patterns for :class:`~repro.testing.faults.FaultEvent`):
``segment:begin``, ``segment:payload``, ``segment:written``,
``segment:synced``, ``segment:renamed``, ``segment:committed``,
``journal:begin``, ``journal:payload``, ``journal:written``,
``journal:synced``, ``segment:read``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, Union

import numpy as np

from repro.core.counters import STORE_COUNTERS
from repro.core.lockcheck import RANK_STORE, OrderedLock
from repro.db.database import CANONICAL_COLUMNS, RankedDatabase
from repro.db.io import database_from_dict, database_to_dict
from repro.db.ranking import ranking_descriptor, ranking_from_descriptor
from repro.exceptions import (
    CorruptSnapshotError,
    InvalidDatabaseError,
    SimulatedCrashError,
    StoreWriteError,
)
from repro.store.format import (
    decode_journal,
    decode_segment,
    encode_journal_record,
    encode_segment,
)
from repro.testing.faults import (
    draw_disk_fault,
    execute_disk_fault,
    flip_one_bit,
    torn_payload,
)

#: File-name suffix of snapshot segments.
SEGMENT_SUFFIX = ".seg"

#: Prefix of in-flight temp files (swept on open; the leak fixture
#: asserts none survive a test).
TMP_PREFIX = ".tmp-"

#: The write-ahead journal's file name inside the store root.
JOURNAL_NAME = "journal.wal"

#: Journal record schema version.
JOURNAL_SCHEMA = 1

_SEGMENTS_DIR = "segments"
_QUARANTINE_DIR = "quarantine"

#: Store roots opened by this process; the test suite's leak fixture
#: sweeps these for stranded temp files after every test.
_TRACKED_ROOTS: Set[Path] = set()


def tracked_store_roots() -> List[Path]:
    """Store roots opened in this process that still exist on disk."""
    return sorted(root for root in _TRACKED_ROOTS if root.is_dir())


def stranded_temp_files() -> List[Path]:
    """Leftover ``.tmp-*`` files across every tracked store root.

    A non-empty result outside a crash test means some write path
    leaked its temp file instead of renaming or removing it.
    """
    stranded: List[Path] = []
    for root in tracked_store_roots():
        for directory in (root, root / _SEGMENTS_DIR):
            if directory.is_dir():
                stranded.extend(sorted(directory.glob(TMP_PREFIX + "*")))
    return stranded


def _disk_step(step: str) -> Optional[Dict[str, Any]]:
    """Fire any armed fault at ``step``; returns data-kind directives.

    Raising kinds (``crash`` / ``enospc``) raise out of
    :func:`~repro.testing.faults.execute_disk_fault`; ``kill`` never
    returns.  Data-transforming directives (``torn`` / ``bitflip`` /
    ``shortread``) come back for the caller to apply to its bytes.
    """
    directive = draw_disk_fault(step)
    if directive is not None:
        execute_disk_fault(directive)
    return directive


def _apply_corruption(
    directive: Mapping[str, Any], data: bytes
) -> Tuple[bytes, bool]:
    """``(possibly corrupted bytes, crash after the write?)``."""
    kind = directive.get("kind")
    if kind == "torn":
        return torn_payload(data), True
    if kind == "bitflip":
        return flip_one_bit(data), False
    return data, False


@dataclass(frozen=True)
class RecoveryReport:
    """What one :class:`SnapshotStore` open found and repaired.

    Attributes
    ----------
    loaded:
        Snapshot ids whose segments verified and were adopted.
    quarantined:
        ``(file name, reason)`` per segment moved to ``quarantine/``.
    swept_temp_files:
        In-flight temp files from a previous crash that were removed.
    journal_records:
        Clean journal records parsed (pending or not).
    journal_truncated_bytes / journal_truncate_reason:
        Size and cause of the torn journal tail that was truncated
        away (zero / empty when the journal was clean).
    """

    loaded: Tuple[str, ...]
    quarantined: Tuple[Tuple[str, str], ...]
    swept_temp_files: int
    journal_records: int
    journal_truncated_bytes: int
    journal_truncate_reason: str

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON encoding (the CLI status envelope shape)."""
        return {
            "loaded": list(self.loaded),
            "quarantined": [list(entry) for entry in self.quarantined],
            "swept_temp_files": self.swept_temp_files,
            "journal_records": self.journal_records,
            "journal_truncated_bytes": self.journal_truncated_bytes,
            "journal_truncate_reason": self.journal_truncate_reason,
        }


class SnapshotStore:
    """Durable, content-hash-addressed storage of ranked snapshots.

    Opening the store *is* recovery: the constructor sweeps temp
    files, truncates any torn journal tail, verifies every segment
    (quarantining failures), and leaves the verified snapshots in
    :meth:`snapshots` and the findings in :attr:`recovery`.  Journal
    records whose outcome segment is missing surface through
    :meth:`pending_cleanings` for the serving layer to re-execute.

    Parameters
    ----------
    root:
        The store directory (created if absent).
    durability:
        ``"fsync"`` (default) syncs file and directory at every
        commit point -- the crash-safe mode.  ``"none"`` skips
        fsyncs: atomic renames still give all-or-nothing *files*, but
        a power cut may revert to pre-state; meant for tests and
        throwaway runs.

    Operational counters (``psr_store_writes`` segments committed,
    ``psr_store_replays`` journal records re-executed,
    ``psr_store_quarantined`` files quarantined) live on the store --
    one per directory, shared by all sessions served over it -- and are
    declared in :data:`repro.core.counters.STORE_COUNTERS`.
    """

    def __init__(
        self, root: Union[str, Path], durability: str = "fsync"
    ) -> None:
        if durability not in ("fsync", "none"):
            raise ValueError(
                f"durability must be 'fsync' or 'none', got {durability!r}"
            )
        self.root = Path(root)
        self.durability = durability
        self._segments_dir = self.root / _SEGMENTS_DIR
        self._quarantine_dir = self.root / _QUARANTINE_DIR
        self._journal_path = self.root / JOURNAL_NAME
        self._lock = OrderedLock(f"store.{self.root.name}", RANK_STORE)
        self.psr_store_writes = 0
        self.psr_store_replays = 0
        self.psr_store_quarantined = 0
        self._snapshots: Dict[str, RankedDatabase] = {}
        self._journal: List[Dict[str, Any]] = []
        self._segments_dir.mkdir(parents=True, exist_ok=True)
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        _TRACKED_ROOTS.add(self.root)
        self.recovery = self._recover()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshots(self) -> Dict[str, RankedDatabase]:
        """Verified snapshot views by id (a copy; safe to mutate)."""
        with self._lock:
            return dict(self._snapshots)

    def has_segment(self, snapshot_id: str) -> bool:
        """Whether a verified segment for this snapshot is on disk."""
        with self._lock:
            return snapshot_id in self._snapshots

    def journal_records(self) -> List[Dict[str, Any]]:
        """Every clean journal record, in append order (copies)."""
        with self._lock:
            return [dict(r) for r in self._journal]

    def pending_cleanings(self) -> List[Dict[str, Any]]:
        """Journaled cleanings whose outcome segment is missing.

        These are the writes a crash interrupted after the journal
        append but before the segment commit; the serving layer
        re-executes them deterministically at open.
        """
        with self._lock:
            return [
                dict(r)
                for r in self._journal
                if r.get("outcome") not in self._snapshots
            ]

    def counters(self) -> Dict[str, int]:
        """The store's operational counters, in registry order."""
        return {name: getattr(self, name) for name in STORE_COUNTERS}

    def status(self) -> Dict[str, Any]:
        """One JSON-serializable health summary of the store.

        Everything an operator needs after an incident: what is
        durable, what the journal still owes, what recovery moved to
        ``quarantine/``, and the counters -- the payload behind
        ``repro store``.
        """
        with self._lock:
            snapshot_ids = sorted(self._snapshots)
            journal = len(self._journal)
            pending = [
                r.get("outcome")
                for r in self._journal
                if r.get("outcome") not in self._snapshots
            ]
        quarantined = sorted(
            p.name for p in self._quarantine_dir.iterdir() if p.is_file()
        )
        return {
            "root": str(self.root),
            "durability": self.durability,
            "snapshots": snapshot_ids,
            "journal_records": journal,
            "pending_cleanings": pending,
            "quarantined_files": quarantined,
            "counters": self.counters(),
            "recovery": self.recovery.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SnapshotStore {str(self.root)!r}: "
            f"{len(self._snapshots)} segments, "
            f"{len(self._journal)} journal records>"
        )

    # ------------------------------------------------------------------
    # Recovery (runs in the constructor)
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveryReport:
        swept = 0
        for directory in (self.root, self._segments_dir):
            for tmp in sorted(directory.glob(TMP_PREFIX + "*")):
                tmp.unlink()
                swept += 1

        truncated_bytes = 0
        truncate_reason = ""
        if self._journal_path.exists():
            data = self._journal_path.read_bytes()
            records, clean_length, truncate_reason = decode_journal(data)
            if clean_length < len(data):
                truncated_bytes = len(data) - clean_length
                with open(self._journal_path, "r+b") as f:
                    f.truncate(clean_length)
                    self._fsync_file(f)
                self._fsync_dir(self.root)
            self._journal = records

        loaded: List[str] = []
        quarantined: List[Tuple[str, str]] = []
        for path in sorted(self._segments_dir.glob("*" + SEGMENT_SUFFIX)):
            try:
                snapshot_id, ranked = self._load_segment(path)
                if snapshot_id != path.name[: -len(SEGMENT_SUFFIX)]:
                    raise CorruptSnapshotError(
                        f"segment corrupt: header names snapshot "
                        f"{snapshot_id!r} but the file is {path.name!r}"
                    )
            except (CorruptSnapshotError, OSError) as exc:
                quarantined.append((path.name, str(exc)))
                self._quarantine_file(path)
                continue
            self._snapshots[snapshot_id] = ranked
            loaded.append(snapshot_id)
        return RecoveryReport(
            loaded=tuple(loaded),
            quarantined=tuple(quarantined),
            swept_temp_files=swept,
            journal_records=len(self._journal),
            journal_truncated_bytes=truncated_bytes,
            journal_truncate_reason=truncate_reason,
        )

    def _load_segment(self, path: Path) -> Tuple[str, RankedDatabase]:
        """Decode, verify, and rebuild one segment -- or raise.

        Verification is belt *and* suspenders: the codec checks
        framing, per-column CRCs and the whole-file digest; this layer
        then rebuilds the database from the structure JSON, recomputes
        its content hash against the header's, re-ranks it cold, and
        compares every canonical column bitwise against the stored
        bytes.  A segment that passes cannot silently disagree with
        the view a fresh construction would produce.
        """
        directive = _disk_step("segment:read")
        data = path.read_bytes()
        if directive is not None:
            kind = directive.get("kind")
            if kind == "shortread":
                data = data[: len(data) // 2]
            elif kind == "bitflip":
                data = flip_one_bit(data)
        header, structure, columns = decode_segment(data)
        try:
            db = database_from_dict(structure)
        except (InvalidDatabaseError, ValueError, KeyError, TypeError) as exc:
            raise CorruptSnapshotError(
                f"segment corrupt: structure does not decode ({exc})"
            ) from None
        if db.content_hash() != header.get("content_hash"):
            raise CorruptSnapshotError(
                "segment corrupt: content hash of the decoded database "
                "does not match the header"
            )
        try:
            ranking = ranking_from_descriptor(header.get("ranking"))
        except ValueError as exc:
            raise CorruptSnapshotError(
                f"segment corrupt: {exc}"
            ) from None
        ranked = RankedDatabase(db, ranking)
        for column in CANONICAL_COLUMNS:
            blob = columns.get(column)
            if blob is None:
                raise CorruptSnapshotError(
                    f"segment corrupt: column {column!r} is missing"
                )
            if np.ascontiguousarray(getattr(ranked, column)).tobytes() != blob:
                raise CorruptSnapshotError(
                    f"segment corrupt: column {column!r} does not match "
                    f"the re-ranked view"
                )
        snapshot_id = header.get("snapshot_id")
        if not isinstance(snapshot_id, str) or not snapshot_id:
            raise CorruptSnapshotError(
                f"segment corrupt: bad snapshot id {snapshot_id!r}"
            )
        return snapshot_id, ranked

    def _quarantine_file(self, path: Path) -> str:
        """Move a failing file into ``quarantine/``; returns its name."""
        destination = self._quarantine_dir / path.name
        counter = 0
        while destination.exists():
            counter += 1
            destination = self._quarantine_dir / f"{path.name}.{counter}"
        os.replace(path, destination)
        self._fsync_dir(self._quarantine_dir)
        self._fsync_dir(path.parent)
        self.psr_store_quarantined += 1
        return destination.name

    def quarantine_segment(self, snapshot_id: str, reason: str) -> None:
        """Evict a loaded snapshot whose segment proved untrustworthy.

        Used by adopters (the session pool) that detect an
        inconsistency the store's own verification cannot see, e.g. a
        snapshot id derivation mismatch.  The segment moves to
        ``quarantine/`` and the snapshot disappears from
        :meth:`snapshots`; ``reason`` travels in the raised error.

        Raises :class:`~repro.exceptions.CorruptSnapshotError` -- the
        caller decides whether to swallow it (skip the snapshot) or
        propagate.
        """
        with self._lock:
            self._snapshots.pop(snapshot_id, None)
            path = self._segment_path(snapshot_id)
            if path.exists():
                self._quarantine_file(path)
        raise CorruptSnapshotError(
            f"segment for snapshot {snapshot_id!r} quarantined: {reason}"
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def persist(self, snapshot_id: str, ranked: RankedDatabase) -> bool:
        """Durably write one snapshot segment; idempotent by id.

        Returns ``False`` (writing nothing) when the segment already
        exists.  Any ``OSError`` on the write path -- disk full,
        permissions -- cleans up the temp file and re-raises as
        :class:`~repro.exceptions.StoreWriteError`; injected
        :class:`~repro.exceptions.SimulatedCrashError` propagates with
        no cleanup at all, leaving the on-disk state a crash would.
        The in-memory index is updated only after the commit point, so
        a failed persist is invisible both on disk and in memory.
        """
        descriptor = ranking_descriptor(ranked.ranking)
        if descriptor is None:
            raise StoreWriteError(
                f"ranking {ranked.ranking!r} has no serializable "
                f"descriptor; durable snapshots require a factory "
                f"ranking (by_value / by_key / by_sum_of_keys)"
            )
        with self._lock:
            if snapshot_id in self._snapshots:
                return False
            _disk_step("segment:begin")
            columns = {
                name: (
                    getattr(ranked, name).dtype.str,
                    np.ascontiguousarray(getattr(ranked, name)).tobytes(),
                )
                for name in CANONICAL_COLUMNS
            }
            payload = encode_segment(
                snapshot_id=snapshot_id,
                content_hash=ranked.db.content_hash(),
                name=ranked.db.name,
                ranking=descriptor,
                structure=database_to_dict(ranked.db),
                columns=columns,
            )
            crash_after = False
            directive = _disk_step("segment:payload")
            if directive is not None:
                payload, crash_after = _apply_corruption(directive, payload)
            final = self._segment_path(snapshot_id)
            tmp = self._segments_dir / (TMP_PREFIX + snapshot_id)
            try:
                with open(tmp, "wb") as f:
                    f.write(payload)
                    _disk_step("segment:written")
                    self._fsync_file(f)
                _disk_step("segment:synced")
                os.replace(tmp, final)
            except OSError as exc:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise StoreWriteError(
                    f"could not persist segment {snapshot_id!r}: {exc}"
                ) from exc
            _disk_step("segment:renamed")
            self._fsync_dir(self._segments_dir)
            if crash_after:
                # A torn write models data that never hit the platter
                # even though the rename did: the truncated segment is
                # durable and the "process" dies here.
                raise SimulatedCrashError(
                    f"injected torn write of segment {snapshot_id!r}"
                )
            _disk_step("segment:committed")
            self._snapshots[snapshot_id] = ranked
            self.psr_store_writes += 1
            return True

    def journal_clean(
        self,
        base_snapshot_id: str,
        spec_payload: Mapping[str, Any],
        outcome_snapshot_id: str,
        outcome_hash: str,
    ) -> Dict[str, Any]:
        """Append one cleaning outcome to the write-ahead journal.

        Called *before* the outcome segment is persisted: once this
        returns, a crash at any later point is recoverable by
        re-executing ``spec_payload`` against the base snapshot and
        checking the regenerated content hash against
        ``outcome_hash``.  A crash *during* the append leaves a torn
        tail the next open truncates away -- the cleaning then simply
        never happened durably (pre-state), which is correct because
        the caller had not yet acknowledged it.
        """
        record = {
            "schema": JOURNAL_SCHEMA,
            "kind": "clean",
            "base": base_snapshot_id,
            "outcome": outcome_snapshot_id,
            "outcome_hash": outcome_hash,
            "spec": dict(spec_payload),
        }
        with self._lock:
            _disk_step("journal:begin")
            frame = encode_journal_record(record)
            crash_after = False
            directive = _disk_step("journal:payload")
            if directive is not None:
                frame, crash_after = _apply_corruption(directive, frame)
            try:
                f = open(self._journal_path, "ab")
            except OSError as exc:
                raise StoreWriteError(
                    f"could not open journal for append: {exc}"
                ) from exc
            with f:
                start = f.tell()
                try:
                    f.write(frame)
                    f.flush()
                    _disk_step("journal:written")
                    self._fsync_file(f)
                except OSError as exc:
                    # Roll the partial frame back out so the failed
                    # append is invisible -- the journal stays a clean
                    # prefix of verified records.
                    try:
                        f.truncate(start)
                        self._fsync_file(f)
                    except OSError:
                        pass
                    raise StoreWriteError(
                        f"could not append journal record: {exc}"
                    ) from exc
            _disk_step("journal:synced")
            if crash_after:
                raise SimulatedCrashError(
                    "injected torn append to the cleaning journal"
                )
            self._journal.append(record)
            return dict(record)

    def note_replayed(self) -> None:
        """Count one journal record successfully re-executed at open."""
        with self._lock:
            self.psr_store_replays += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _segment_path(self, snapshot_id: str) -> Path:
        return self._segments_dir / (snapshot_id + SEGMENT_SUFFIX)

    def _fsync_file(self, f: Any) -> None:
        if self.durability == "fsync":
            os.fsync(f.fileno())

    def _fsync_dir(self, path: Path) -> None:
        if self.durability != "fsync":
            return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
