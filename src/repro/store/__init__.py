"""Durable, crash-safe persistence of snapshots (``repro.store``).

The serving layer's snapshots live in memory
(:class:`~repro.api.pool.SessionPool`); this package gives them a disk
identity that survives process death.  Layering: ``repro.store`` sits
between the data layer and the serving layer -- it imports
:mod:`repro.db` (and the fault harness) and is imported by
:mod:`repro.api`; it never imports the serving layer back.

* :mod:`repro.store.format` -- the pure byte codec: checksummed
  segment frames and length-prefixed journal records.
* :mod:`repro.store.store` -- :class:`SnapshotStore`: atomic segment
  writes, the write-ahead cleaning journal, and recovery-on-open with
  quarantine of anything that fails verification.

See the README's "Durability & crash recovery" section for the
operational story.
"""

from repro.store.format import MAGIC, SCHEMA_VERSION
from repro.store.store import (
    JOURNAL_NAME,
    SEGMENT_SUFFIX,
    TMP_PREFIX,
    RecoveryReport,
    SnapshotStore,
    stranded_temp_files,
    tracked_store_roots,
)

__all__ = [
    "JOURNAL_NAME",
    "MAGIC",
    "SCHEMA_VERSION",
    "SEGMENT_SUFFIX",
    "TMP_PREFIX",
    "RecoveryReport",
    "SnapshotStore",
    "stranded_temp_files",
    "tracked_store_roots",
]
