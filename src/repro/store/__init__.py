"""Durable, crash-safe persistence of snapshots (``repro.store``).

The serving layer's snapshots live in memory
(:class:`~repro.api.pool.SessionPool`); this package gives them a disk
identity that survives process death.  Layering: ``repro.store`` sits
between the data layer and the serving layer -- it imports
:mod:`repro.db` (and the fault harness) and is imported by
:mod:`repro.api`; it never imports the serving layer back.

* :mod:`repro.store.format` -- the pure byte codec: checksummed
  segment frames, length-prefixed journal records, and the lock-file
  holder record.
* :mod:`repro.store.locks` -- :class:`StoreLock`: the cross-process
  advisory ``fcntl.flock`` on the store root (bounded wait, stale-
  holder detection, ``unlock --force``).  All ``fcntl`` use in the
  codebase lives here (lint rule REP012).
* :mod:`repro.store.store` -- :class:`SnapshotStore`: atomic segment
  writes, the write-ahead cleaning journal, journal checkpoint /
  compaction, retention-policy GC with two-phase deletes, group
  commit, and recovery-on-open with quarantine of anything that fails
  verification.

See the README's "Durability & crash recovery" section for the
operational story.
"""

from repro.store.format import MAGIC, SCHEMA_VERSION
from repro.store.locks import (
    DEFAULT_LOCK_TIMEOUT_MS,
    LOCK_FILE_NAME,
    StoreLock,
)
from repro.store.store import (
    JOURNAL_MAX_RECORDS_ENV,
    JOURNAL_NAME,
    SEGMENT_SUFFIX,
    TMP_PREFIX,
    RecoveryReport,
    RetentionPolicy,
    SnapshotStore,
    stranded_temp_files,
    tracked_store_roots,
)

__all__ = [
    "DEFAULT_LOCK_TIMEOUT_MS",
    "JOURNAL_MAX_RECORDS_ENV",
    "JOURNAL_NAME",
    "LOCK_FILE_NAME",
    "MAGIC",
    "SCHEMA_VERSION",
    "SEGMENT_SUFFIX",
    "TMP_PREFIX",
    "RecoveryReport",
    "RetentionPolicy",
    "SnapshotStore",
    "StoreLock",
    "stranded_temp_files",
    "tracked_store_roots",
]
