"""Byte-level encoding of snapshot segments and journal records.

Everything in this module is pure ``bytes -> objects`` (and back): no
file handles, no fsync, no fault hooks -- those live in
:mod:`repro.store.store`.  Keeping the codec side-effect free makes the
corruption tests trivial (flip a bit in the encoded bytes, decode, get
:class:`~repro.exceptions.CorruptSnapshotError`) and keeps the decoder
honest: every code path out of :func:`decode_segment` either returns a
fully verified payload or raises the typed error.

Segment layout (all integers big-endian)::

    offset 0   magic            b"RPROSEG1"
    offset 8   header length    u32
    offset 12  header JSON      schema version, snapshot id, content
                                hash, ranking descriptor, structure
                                framing, per-column (dtype, byte
                                length, crc32)
    ...        structure JSON   database_to_dict() payload
    ...        column bytes     the ranked view's canonical arrays,
                                raw, concatenated in header order
    tail       SHA-256 digest   over every preceding byte (32 bytes)

Two layers of verification are deliberate: the per-column CRCs localize
*which* column a flipped bit landed in (diagnostics), while the
whole-file digest catches anything the CRCs structurally cannot --
header tampering, spliced files, truncation landing on a frame
boundary.

Journal records are framed ``u32 length | u32 crc32 | JSON payload``.
A record is only as durable as its frame: the reader accepts the
longest clean prefix of frames and reports where (and why) it stopped,
which is exactly the truncate-the-torn-tail semantics the write-ahead
log needs.

Journal record kinds (the ``"kind"`` field of the JSON payload):

``"clean"``
    An executed cleaning outcome -- base snapshot, full spec, outcome
    id and content hash -- appended *before* the outcome segment is
    written (the write-ahead contract).
``"tombstone"``
    Phase one of the two-phase segment delete: the named segment is
    logically dead (retention/GC chose it) but its file may still be
    on disk.  Recovery skips loading tombstoned segments; the unlink
    happens only after the *next* successful journal checkpoint has
    made the tombstone durable, so a crash anywhere in between leaves
    either a durable tombstone (file ignored, swept later) or the
    pre-GC state -- never a half-deleted store.

**Lock records** are the single JSON line inside ``store.lock``:
holder PID, the host's boot nonce, the mode, plus a CRC over the
payload so a torn write is detected, not misread.  The record is
advisory bookkeeping *about* the flock holder -- the kernel lock
itself, not this record, is the mutual exclusion -- which is why
:func:`decode_lock_record` returns ``None`` on any damage instead of
raising: a broken record only costs diagnostics.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import CorruptSnapshotError

#: First eight bytes of every segment file.
MAGIC = b"RPROSEG1"

#: Bumped on any incompatible layout change; the decoder refuses
#: versions it does not know rather than guessing.
SCHEMA_VERSION = 1

_U32 = struct.Struct(">I")
_DIGEST_BYTES = 32


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _canonical_json(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------


def encode_segment(
    snapshot_id: str,
    content_hash: str,
    name: str,
    ranking: Mapping[str, Any],
    structure: Mapping[str, Any],
    columns: Mapping[str, Tuple[str, bytes]],
) -> bytes:
    """Encode one snapshot segment.

    ``columns`` maps column name to ``(dtype_str, raw_bytes)``; the
    header records their order, dtypes, lengths and CRCs so the decoder
    can slice and verify them without trusting anything but the magic.
    """
    column_meta: List[Dict[str, Any]] = []
    column_blobs: List[bytes] = []
    for column_name, (dtype, blob) in columns.items():
        column_meta.append(
            {
                "name": column_name,
                "dtype": dtype,
                "length": len(blob),
                "crc32": _crc(blob),
            }
        )
        column_blobs.append(blob)
    structure_json = _canonical_json(structure)
    header = {
        "schema": SCHEMA_VERSION,
        "snapshot_id": snapshot_id,
        "content_hash": content_hash,
        "name": name,
        "ranking": dict(ranking),
        "structure_length": len(structure_json),
        "structure_crc32": _crc(structure_json),
        "columns": column_meta,
    }
    header_json = _canonical_json(header)
    body = b"".join(
        [MAGIC, _U32.pack(len(header_json)), header_json, structure_json]
        + column_blobs
    )
    return body + hashlib.sha256(body).digest()


def decode_segment(
    data: bytes,
) -> Tuple[Dict[str, Any], Dict[str, Any], Dict[str, bytes]]:
    """Decode and fully verify one segment's bytes.

    Returns ``(header, structure, columns)`` where ``columns`` maps
    column name to its raw bytes.  Raises
    :class:`~repro.exceptions.CorruptSnapshotError` on *any*
    verification failure -- bad magic, unknown schema, truncation,
    column CRC mismatch, whole-file digest mismatch -- never a partial
    or guessed payload.
    """

    def corrupt(reason: str) -> CorruptSnapshotError:
        return CorruptSnapshotError(f"segment corrupt: {reason}")

    if len(data) < len(MAGIC) + _U32.size + _DIGEST_BYTES:
        raise corrupt(f"file too short ({len(data)} bytes)")
    if data[: len(MAGIC)] != MAGIC:
        raise corrupt(f"bad magic {data[: len(MAGIC)]!r}")
    body, digest = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
    if hashlib.sha256(body).digest() != digest:
        raise corrupt("whole-file digest mismatch")

    offset = len(MAGIC)
    (header_length,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    if offset + header_length > len(body):
        raise corrupt("header frame overruns file")
    try:
        header = json.loads(body[offset : offset + header_length])
    except json.JSONDecodeError as exc:
        raise corrupt(f"header is not valid JSON ({exc})") from None
    offset += header_length
    if not isinstance(header, dict):
        raise corrupt("header is not an object")
    if header.get("schema") != SCHEMA_VERSION:
        raise corrupt(
            f"unknown schema version {header.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )

    structure_length = header.get("structure_length")
    if not isinstance(structure_length, int) or structure_length < 0:
        raise corrupt(f"bad structure length {structure_length!r}")
    if offset + structure_length > len(body):
        raise corrupt("structure frame overruns file")
    structure_json = body[offset : offset + structure_length]
    offset += structure_length
    if _crc(structure_json) != header.get("structure_crc32"):
        raise corrupt("structure CRC mismatch")
    try:
        structure = json.loads(structure_json)
    except json.JSONDecodeError as exc:
        raise corrupt(f"structure is not valid JSON ({exc})") from None

    column_meta = header.get("columns")
    if not isinstance(column_meta, list):
        raise corrupt("header lacks a column table")
    columns: Dict[str, bytes] = {}
    for meta in column_meta:
        if not isinstance(meta, dict) or not isinstance(
            meta.get("length"), int
        ):
            raise corrupt(f"bad column entry {meta!r}")
        length = meta["length"]
        if length < 0 or offset + length > len(body):
            raise corrupt(
                f"column {meta.get('name')!r} overruns file"
            )
        blob = body[offset : offset + length]
        offset += length
        if _crc(blob) != meta.get("crc32"):
            raise corrupt(f"column {meta.get('name')!r} CRC mismatch")
        columns[meta.get("name")] = blob
    if offset != len(body):
        raise corrupt(f"{len(body) - offset} trailing bytes after columns")
    return header, structure, columns


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


def encode_journal_record(payload: Mapping[str, Any]) -> bytes:
    """Frame one journal record: ``u32 length | u32 crc | JSON``."""
    blob = _canonical_json(payload)
    return _U32.pack(len(blob)) + _U32.pack(_crc(blob)) + blob


def encode_journal(records: Sequence[Mapping[str, Any]]) -> bytes:
    """Encode a whole journal: the concatenated frames of ``records``.

    The checkpoint/compaction path rewrites the journal through this
    (encode the surviving records fully in memory, write to a temp
    sibling, fsync, rename) so the same atomic-replacement discipline
    that protects segments protects the compacted journal: a crash at
    any point leaves the complete old journal or the complete new one.
    """
    return b"".join(encode_journal_record(record) for record in records)


def decode_journal(
    data: bytes,
) -> Tuple[List[Dict[str, Any]], int, str]:
    """Parse the longest clean prefix of journal frames.

    Returns ``(records, clean_length, stop_reason)``:
    ``clean_length`` is the byte offset up to which every frame
    verified (the length recovery truncates the file back to) and
    ``stop_reason`` is ``""`` when the whole file parsed, else a
    human-readable description of the first bad frame.  A torn or
    bit-flipped tail therefore costs exactly the broken record and
    nothing before it.
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    frame_header = _U32.size * 2
    while offset < len(data):
        if offset + frame_header > len(data):
            return records, offset, "torn frame header"
        (length,) = _U32.unpack_from(data, offset)
        (crc,) = _U32.unpack_from(data, offset + _U32.size)
        start = offset + frame_header
        if start + length > len(data):
            return records, offset, "torn record payload"
        blob = data[start : start + length]
        if _crc(blob) != crc:
            return records, offset, "record CRC mismatch"
        try:
            record = json.loads(blob)
        except json.JSONDecodeError:
            return records, offset, "record is not valid JSON"
        if not isinstance(record, dict):
            return records, offset, "record is not an object"
        records.append(record)
        offset = start + length
    return records, offset, ""


# ---------------------------------------------------------------------------
# Lock records
# ---------------------------------------------------------------------------

#: Lock-record schema version (inside the JSON payload).
LOCK_SCHEMA = 1


def encode_lock_record(payload: Mapping[str, Any]) -> bytes:
    """Encode the lock file's holder record: ``u32 crc | JSON | \\n``.

    ``payload`` carries the holder's identity (pid, boot nonce, mode);
    the schema version is stamped here so decoders can refuse layouts
    they do not know.
    """
    body = dict(payload)
    body["schema"] = LOCK_SCHEMA
    blob = _canonical_json(body)
    return _U32.pack(_crc(blob)) + blob + b"\n"


def decode_lock_record(data: bytes) -> Optional[Dict[str, Any]]:
    """Decode a lock file's bytes; ``None`` on any damage.

    Unlike segments and journal frames, a broken lock record is
    *benign* -- the flock, not the record, is the mutual exclusion --
    so damage degrades to "holder unknown" rather than an error.
    """
    if len(data) < _U32.size + 1 or not data.endswith(b"\n"):
        return None
    (crc,) = _U32.unpack_from(data, 0)
    blob = data[_U32.size : -1]
    if _crc(blob) != crc:
        return None
    try:
        record = json.loads(blob)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or record.get("schema") != LOCK_SCHEMA:
        return None
    return record
