"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidDatabaseError(ReproError):
    """The probabilistic database violates the x-tuple model invariants.

    Raised when tuple identifiers collide, an existential probability is
    outside ``(0, 1]``, or the probabilities inside one x-tuple sum to
    more than one.
    """


class InvalidQueryError(ReproError):
    """A query parameter is malformed (e.g. ``k < 1`` or a threshold
    outside ``[0, 1]``)."""


class InvalidCleaningProblemError(ReproError):
    """A cleaning problem is malformed (negative budget, non-positive
    cost, sc-probability outside ``[0, 1]``, or unknown x-tuple ids)."""


class InfeasibleTargetError(ReproError):
    """An inverse-cleaning target cannot be reached with any plan.

    Raised by :func:`repro.cleaning.inverse.min_cost_plan` when the
    requested expected-quality target exceeds what cleaning every
    x-tuple infinitely often could deliver.
    """
