"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidDatabaseError(ReproError):
    """The probabilistic database violates the x-tuple model invariants.

    Raised when tuple identifiers collide, an existential probability is
    outside ``(0, 1]``, or the probabilities inside one x-tuple sum to
    more than one.
    """


class InvalidQueryError(ReproError):
    """A query parameter is malformed (e.g. ``k < 1`` or a threshold
    outside ``[0, 1]``)."""


class InvalidCleaningProblemError(ReproError):
    """A cleaning problem is malformed (negative budget, non-positive
    cost, sc-probability outside ``[0, 1]``, or unknown x-tuple ids)."""


class InfeasibleTargetError(ReproError):
    """An inverse-cleaning target cannot be reached with any plan.

    Raised by :func:`repro.cleaning.inverse.min_cost_plan` when the
    requested expected-quality target exceeds what cleaning every
    x-tuple infinitely often could deliver.
    """


class InvalidSpecError(ReproError):
    """A declarative request spec (:mod:`repro.api.specs`) is malformed.

    Raised eagerly at spec construction / deserialization time -- a
    spec that constructs cleanly is guaranteed to be wire-ready
    (``to_dict``/``from_dict`` round-trips through JSON).
    """


class UnknownXTupleError(InvalidCleaningProblemError):
    """A cleaning spec names (or omits) an x-tuple the snapshot lacks.

    Carries the offending identifier and the field it appeared in, so
    service callers get ``"costs is missing x-tuple 'S3'"`` instead of
    a bare :class:`KeyError` bubbling out of a mapping lookup.
    """

    def __init__(self, field: str, xid: str, reason: str = "is missing") -> None:
        self.field = field
        self.xid = xid
        super().__init__(f"{field} {reason} x-tuple {xid!r}")


class UnknownSnapshotError(ReproError):
    """A snapshot id was not registered with the
    :class:`~repro.api.pool.SessionPool` being addressed."""


class ResilienceError(ReproError):
    """Base class for the serving-resilience errors.

    These are *operational* failures -- the request was well-formed but
    could not (or should not) be completed -- as opposed to the
    validation errors above.  They serialize through the CLI's JSON
    error envelope so clients see a typed error, never a traceback.
    """


class DeadlineExceededError(ResilienceError):
    """A request's ``deadline_ms`` budget ran out.

    Raised at admission when the deadline has already passed (the
    request is shed before consuming any PSR work), after queueing for
    a session lease, and at every supervision wait inside the parallel
    backend -- so a doomed request stops burning pool capacity the
    moment its budget is gone.
    """


class ServiceOverloadedError(ResilienceError):
    """The pool's admission gate shed this request.

    Raised by :meth:`repro.api.pool.SessionPool.lease` when
    ``max_in_flight`` requests are already being served and none
    finished within the bounded admission wait.  Clients should back
    off and retry; the server sheds instead of queueing unboundedly.
    """


class RetryExhaustedError(ResilienceError):
    """A supervised operation failed on every allowed attempt.

    Internal to the parallel backend's worker supervision: exhaustion
    normally *degrades* (pool -> in-process shards -> NumPy kernel)
    rather than surfacing, so callers only see this when every
    degradation tier failed too.
    """


class FaultInjectedError(ResilienceError):
    """An injected fault from :mod:`repro.testing.faults` fired.

    Only ever raised when a :class:`~repro.testing.faults.FaultPlan`
    is active; production code paths never construct one.  Lives in
    the shared taxonomy because worker processes must be able to
    unpickle it without importing the testing package's machinery.
    """


class LockOrderError(ReproError):
    """A lock acquisition violated the declared lock hierarchy.

    Only raised in debug mode (:mod:`repro.core.lockcheck`, enabled via
    ``REPRO_DEBUG_LOCKS=1``): a thread tried to take a lock whose rank
    is not strictly greater than every lock it already holds -- the
    shape that deadlocks in production the day two such threads
    interleave.  Production runs never pay the tracking cost and never
    see this error.
    """

