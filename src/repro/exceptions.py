"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidDatabaseError(ReproError):
    """The probabilistic database violates the x-tuple model invariants.

    Raised when tuple identifiers collide, an existential probability is
    outside ``(0, 1]``, or the probabilities inside one x-tuple sum to
    more than one.
    """


class InvalidQueryError(ReproError):
    """A query parameter is malformed (e.g. ``k < 1`` or a threshold
    outside ``[0, 1]``)."""


class InvalidCleaningProblemError(ReproError):
    """A cleaning problem is malformed (negative budget, non-positive
    cost, sc-probability outside ``[0, 1]``, or unknown x-tuple ids)."""


class InfeasibleTargetError(ReproError):
    """An inverse-cleaning target cannot be reached with any plan.

    Raised by :func:`repro.cleaning.inverse.min_cost_plan` when the
    requested expected-quality target exceeds what cleaning every
    x-tuple infinitely often could deliver.
    """


class InvalidSpecError(ReproError):
    """A declarative request spec (:mod:`repro.api.specs`) is malformed.

    Raised eagerly at spec construction / deserialization time -- a
    spec that constructs cleanly is guaranteed to be wire-ready
    (``to_dict``/``from_dict`` round-trips through JSON).
    """


class UnknownXTupleError(InvalidCleaningProblemError):
    """A cleaning spec names (or omits) an x-tuple the snapshot lacks.

    Carries the offending identifier and the field it appeared in, so
    service callers get ``"costs is missing x-tuple 'S3'"`` instead of
    a bare :class:`KeyError` bubbling out of a mapping lookup.
    """

    def __init__(self, field: str, xid: str, reason: str = "is missing") -> None:
        self.field = field
        self.xid = xid
        super().__init__(f"{field} {reason} x-tuple {xid!r}")


class InvalidDataError(InvalidDatabaseError):
    """External input (JSON/CSV ingest) is malformed.

    Raised by :mod:`repro.db.io` *before* any tuple object is
    constructed, naming the offending row / x-tuple: NaN, infinite,
    non-positive or ``> 1`` probabilities, duplicate tuple ids,
    duplicate x-tuple ids, and empty x-tuples are rejected at the
    ingest boundary instead of propagating into the kernels.  Derives
    from :class:`InvalidDatabaseError` so existing handlers keep
    working; the narrower type marks the failure as *input* data, not
    library state.
    """


class UnknownSnapshotError(ReproError):
    """A snapshot id was not registered with the
    :class:`~repro.api.pool.SessionPool` being addressed."""


class StoreError(ReproError):
    """Base class for durable snapshot-store failures.

    Raised by :mod:`repro.store`: the crash-safe, content-hash-
    addressed on-disk store under the serving layer.  Store errors are
    operational -- the request was well-formed but the durable layer
    could not honour it -- and serialize through the CLI's JSON error
    envelope like the resilience errors.
    """


class StoreWriteError(StoreError):
    """A durable write (segment or journal append) failed.

    Raised when the disk rejects a write -- ``ENOSPC``, permissions,
    I/O errors.  The store's write protocol guarantees the failed
    write left no partial visible state: temp files are removed, a
    partially appended journal record is truncated back out, and the
    :class:`~repro.api.pool.SessionPool` never publishes an in-memory
    entry whose durable write failed -- memory and disk cannot
    disagree.
    """


class CorruptSnapshotError(StoreError):
    """A stored snapshot segment failed verification.

    Raised when a segment's framing, checksums, whole-file digest, or
    content hash do not verify -- a torn write that survived a crash,
    a flipped bit, a truncated file.  Recovery-on-open moves the file
    into ``quarantine/`` and drops the snapshot from the registry
    instead of serving it; this error is never swallowed into a
    silently-wrong answer.
    """


class StoreLockedError(StoreError):
    """Another process holds the store's cross-process lock.

    Raised when acquiring the advisory ``fcntl.flock`` lock on a store
    root (:mod:`repro.store.locks`) did not succeed within the bounded
    wait -- the request's scoped deadline or the store's configured
    ``lock_timeout_ms``, whichever is tighter.  The caller observes a
    typed, fast failure instead of corrupting the directory or
    queueing unboundedly behind a foreign writer; the error message
    names the recorded holder (PID and liveness) so an operator can
    decide between waiting, opening read-only, and
    ``repro store unlock --force``.
    """


class StoreReadOnlyError(StoreError):
    """A mutation was attempted on a read-only store handle.

    Raised by :class:`~repro.store.SnapshotStore` opened with
    ``mode="readonly"`` (a shared-lock reader: status tooling, a
    process that lost the writer election) when ``persist``,
    ``journal_clean``, ``checkpoint`` or ``gc`` is called.  Read-only
    handles never repair, never sweep and never append -- they cannot
    corrupt a directory another process is writing.
    """


class JournalReplayError(StoreError):
    """A write-ahead journal record could not be replayed.

    Raised at store open when a journaled cleaning outcome has no
    surviving segment and re-executing the journaled spec is
    impossible (its base snapshot was lost or quarantined) or
    divergent (the re-executed outcome's content hash does not match
    the journaled hash).  Either way the durable history is
    inconsistent and the operator must intervene; opening proceeds no
    further rather than serving a state that contradicts the journal.
    """


class ResilienceError(ReproError):
    """Base class for the serving-resilience errors.

    These are *operational* failures -- the request was well-formed but
    could not (or should not) be completed -- as opposed to the
    validation errors above.  They serialize through the CLI's JSON
    error envelope so clients see a typed error, never a traceback.
    """


class DeadlineExceededError(ResilienceError):
    """A request's ``deadline_ms`` budget ran out.

    Raised at admission when the deadline has already passed (the
    request is shed before consuming any PSR work), after queueing for
    a session lease, and at every supervision wait inside the parallel
    backend -- so a doomed request stops burning pool capacity the
    moment its budget is gone.
    """


class ServiceOverloadedError(ResilienceError):
    """The pool's admission gate shed this request.

    Raised by :meth:`repro.api.pool.SessionPool.lease` when
    ``max_in_flight`` requests are already being served and none
    finished within the bounded admission wait.  Clients should back
    off and retry; the server sheds instead of queueing unboundedly.
    """


class RetryExhaustedError(ResilienceError):
    """A supervised operation failed on every allowed attempt.

    Internal to the parallel backend's worker supervision: exhaustion
    normally *degrades* (pool -> in-process shards -> NumPy kernel)
    rather than surfacing, so callers only see this when every
    degradation tier failed too.
    """


class FaultInjectedError(ResilienceError):
    """An injected fault from :mod:`repro.testing.faults` fired.

    Only ever raised when a :class:`~repro.testing.faults.FaultPlan`
    is active; production code paths never construct one.  Lives in
    the shared taxonomy because worker processes must be able to
    unpickle it without importing the testing package's machinery.
    """


class SimulatedCrashError(FaultInjectedError):
    """An injected process crash at a disk write step.

    The in-process stand-in for SIGKILL used by the store's
    crash-atomicity sweep: raised by the disk-fault harness at a named
    write step (:mod:`repro.testing.faults`, kinds ``"crash"`` /
    ``"torn"``), it must propagate out of the store *without any
    cleanup running* -- a real crash runs no ``except`` blocks -- so
    the on-disk state the next open recovers from is exactly what a
    power cut would leave.  Store code therefore never catches it:
    error-path cleanup handlers catch ``OSError``/:class:`StoreError`
    only.
    """


class LockOrderError(ReproError):
    """A lock acquisition violated the declared lock hierarchy.

    Only raised in debug mode (:mod:`repro.core.lockcheck`, enabled via
    ``REPRO_DEBUG_LOCKS=1``): a thread tried to take a lock whose rank
    is not strictly greater than every lock it already holds -- the
    shape that deadlocks in production the day two such threads
    interleave.  Production runs never pay the tracking cost and never
    see this error.
    """

