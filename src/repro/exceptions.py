"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidDatabaseError(ReproError):
    """The probabilistic database violates the x-tuple model invariants.

    Raised when tuple identifiers collide, an existential probability is
    outside ``(0, 1]``, or the probabilities inside one x-tuple sum to
    more than one.
    """


class InvalidQueryError(ReproError):
    """A query parameter is malformed (e.g. ``k < 1`` or a threshold
    outside ``[0, 1]``)."""


class InvalidCleaningProblemError(ReproError):
    """A cleaning problem is malformed (negative budget, non-positive
    cost, sc-probability outside ``[0, 1]``, or unknown x-tuple ids)."""


class InfeasibleTargetError(ReproError):
    """An inverse-cleaning target cannot be reached with any plan.

    Raised by :func:`repro.cleaning.inverse.min_cost_plan` when the
    requested expected-quality target exceeds what cleaning every
    x-tuple infinitely often could deliver.
    """


class InvalidSpecError(ReproError):
    """A declarative request spec (:mod:`repro.api.specs`) is malformed.

    Raised eagerly at spec construction / deserialization time -- a
    spec that constructs cleanly is guaranteed to be wire-ready
    (``to_dict``/``from_dict`` round-trips through JSON).
    """


class UnknownXTupleError(InvalidCleaningProblemError):
    """A cleaning spec names (or omits) an x-tuple the snapshot lacks.

    Carries the offending identifier and the field it appeared in, so
    service callers get ``"costs is missing x-tuple 'S3'"`` instead of
    a bare :class:`KeyError` bubbling out of a mapping lookup.
    """

    def __init__(self, field: str, xid: str, reason: str = "is missing") -> None:
        self.field = field
        self.xid = xid
        super().__init__(f"{field} {reason} x-tuple {xid!r}")


class UnknownSnapshotError(ReproError):
    """A snapshot id was not registered with the
    :class:`~repro.api.pool.SessionPool` being addressed."""
