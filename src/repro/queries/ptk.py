"""PT-k: probabilistic threshold top-k (Hua et al., SIGMOD 2008).

Returns every tuple whose top-k probability is at least a user
threshold ``T``.  On Table I with ``k = 2`` and ``T = 0.4`` the answer
is ``{t1, t2, t5}`` -- the paper's running example.
"""

from __future__ import annotations

import numpy as np

from repro.db.database import RankedDatabase
from repro.exceptions import InvalidQueryError
from repro.queries.answers import PTkAnswer
from repro.queries.psr import RankProbabilities, compute_rank_probabilities


def require_valid_threshold(threshold: float) -> None:
    """Validate a PT-k threshold (must lie in ``[0, 1]``)."""
    if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
        raise InvalidQueryError(f"threshold must be a number, got {threshold!r}")
    if not 0.0 <= threshold <= 1.0:
        raise InvalidQueryError(
            f"threshold must lie in [0, 1], got {threshold!r}"
        )


def answer_from_rank_probabilities(
    rank_probs: RankProbabilities, threshold: float
) -> PTkAnswer:
    """Aggregate a PT-k answer out of precomputed rank probabilities.

    One vectorized threshold pass over the columnar top-k probability
    vector, exactly as Section IV-C describes (members stay in rank
    order).
    """
    require_valid_threshold(threshold)
    topk = rank_probs.topk_prefix
    order = rank_probs.ranked.order
    if threshold > 0.0:
        positions = np.nonzero(topk >= threshold)[0]
    else:
        positions = np.nonzero(topk > 0.0)[0]
    members = tuple((order[i].tid, float(topk[i])) for i in positions)
    return PTkAnswer(k=rank_probs.k, threshold=threshold, members=members)


def evaluate(ranked: RankedDatabase, k: int, threshold: float) -> PTkAnswer:
    """Answer a PT-k query from scratch (runs PSR internally)."""
    return answer_from_rank_probabilities(
        compute_rank_probabilities(ranked, k), threshold
    )
