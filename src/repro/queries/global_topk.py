"""Global-topk: the k tuples with the highest top-k probabilities
(Zhang & Chomicki, ICDE Workshops 2008).

Tuples are ordered by top-k probability, descending; equal
probabilities are broken by the ranking order (the higher-ranked tuple
wins), which keeps the answer deterministic and matches the original
semantics' tie-breaking convention.
"""

from __future__ import annotations

import numpy as np

from repro.db.database import RankedDatabase
from repro.queries.answers import GlobalTopkAnswer
from repro.queries.psr import RankProbabilities, compute_rank_probabilities


def answer_from_rank_probabilities(
    rank_probs: RankProbabilities,
) -> GlobalTopkAnswer:
    """Aggregate a Global-topk answer out of precomputed rank probabilities."""
    ranked = rank_probs.ranked
    k = rank_probs.k
    topk = rank_probs.topk_prefix
    positions = np.nonzero(topk > 0.0)[0]
    # Sort by probability descending, then by rank position ascending
    # (lexsort's last key dominates; positions are already ascending,
    # and the sort is stable over them).
    order = np.lexsort((positions, -topk[positions]))[:k]
    members = tuple(
        (ranked.order[i].tid, float(topk[i])) for i in positions[order]
    )
    return GlobalTopkAnswer(k=k, members=members)


def evaluate(ranked: RankedDatabase, k: int) -> GlobalTopkAnswer:
    """Answer a Global-topk query from scratch (runs PSR internally)."""
    return answer_from_rank_probabilities(compute_rank_probabilities(ranked, k))
