"""Shared query + quality evaluation (paper Section IV-C, Figure 1(b)).

All three query semantics and the TP quality algorithm consume the same
rank-probability information, so the expensive PSR pass should run once
per (database, ranking, k) and be reused everywhere.  This module
provides that in two shapes:

* :class:`QuerySession` -- a stateful handle over one ranked view that
  **memoizes** PSR output per ``k`` (and derived answers / quality /
  cleaning inputs).  Repeated evaluations at the same ``k`` cost only
  answer extraction, never another O(kn) scan.  The iterative cleaning
  loops thread sessions through so candidate evaluations stop
  rebuilding rank probabilities from scratch.
* :func:`evaluate` -- the one-shot functional form: runs PSR exactly
  once and derives everything from it; the paper measures the saving
  in Figure 5 (total time down to ~52% of the non-sharing pipeline at
  ``k = 100``, with the quality overhead shrinking from 33% at
  ``k = 15`` to 6% at ``k = 100``).

:func:`evaluate_without_sharing` is the deliberately naive baseline
that re-runs PSR for the quality step, used by the Figure 5
benchmarks.

Sharing semantics of :class:`QuerySession`
------------------------------------------
A session is bound to one immutable database snapshot and one ranking.
Cached state is only valid under the repository-wide convention that
databases are never mutated in place (cleaning produces *new*
databases via ``with_xtuple_replaced``).  To follow a database through
cleaning, call :meth:`QuerySession.derive` with the cleaned snapshot:
it returns a fresh session sharing the ranking/backend configuration
-- or the *same* session (cache intact) when the snapshot is
identical, which is what makes failed-probe rounds of adaptive
cleaning O(answer-extraction).  When the snapshot was derived through
``RankedDatabase.with_xtuple_replaced`` / ``with_xtuple_removed``,
pass the resulting :class:`~repro.db.database.RankDelta` as
``derive(..., delta=...)`` and the new session *patches* its memoized
PSR state and quality instead of starting cold -- the incremental
path the cleaning executor threads per successful probe.  Sessions are
not thread-safe; share them within one evaluation pipeline, not
across threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.backend import resolve_backend
from repro.core.counters import SESSION_COUNTERS
from repro.core.tp import (
    SUPPORT_TOLERANCE,
    TPQualityResult,
    compute_quality_tp,
    patch_quality_tp,
    short_result_probability,
)
from repro.exceptions import InvalidQueryError
from repro.db.database import ProbabilisticDatabase, RankDelta, RankedDatabase
from repro.db.ranking import RankingFunction

if TYPE_CHECKING:  # deferred: repro.cleaning imports repro.queries
    from repro.cleaning.model import CleaningProblem
from repro.queries import global_topk, ptk, ukranks
from repro.queries.answers import GlobalTopkAnswer, PTkAnswer, UkRanksAnswer
from repro.queries.psr import (
    RankProbabilities,
    apply_rank_delta,
    compute_rank_probabilities,
)


@dataclass(frozen=True)
class EvaluationReport:
    """Everything one PSR pass buys: answers, quality, cleaning inputs."""

    k: int
    rank_probabilities: RankProbabilities
    ukranks: UkRanksAnswer
    ptk: PTkAnswer
    global_topk: GlobalTopkAnswer
    quality: TPQualityResult

    @property
    def quality_score(self) -> float:
        return self.quality.quality

    def g_by_xtuple(self) -> List[float]:
        """Per-x-tuple quality contributions ``g(l, D)`` (Theorem 2)."""
        return self.quality.g_by_xtuple()


class QuerySession:
    """A cached evaluation session over one ranked database view.

    Owns the ranked view and memoizes :class:`RankProbabilities` per
    ``k``; all three query semantics, the TP quality and the cleaning
    inputs are served from that cache.  See the module docstring for
    the sharing semantics (immutability assumption, :meth:`derive`).

    Parameters
    ----------
    db:
        The database, or an already-ranked view of it.
    ranking:
        Ranking function for raw databases; defaults to by-value.
        Ignored (must be None) when ``db`` is already ranked.
    backend:
        Kernel selection for this session (``"numpy"`` / ``"python"`` /
        ``"parallel"``); defaults to the process-wide backend at call
        time.
    workers:
        Process-pool size for the parallel backend's PSR passes;
        ``None`` defers to :func:`repro.core.parallel.resolve_workers`
        at call time.  Ignored by the serial backends.
    """

    def __init__(
        self,
        db: Union[ProbabilisticDatabase, RankedDatabase],
        ranking: Optional[RankingFunction] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        if isinstance(db, RankedDatabase):
            if ranking is not None and ranking is not db.ranking:
                raise ValueError(
                    "cannot override the ranking of an already-ranked database"
                )
            self.ranked = db
        else:
            self.ranked = db.ranked(ranking)
        if backend is not None:
            resolve_backend(backend)  # validate eagerly
        self.backend = backend
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._rank_probabilities: Dict[int, RankProbabilities] = {}
        self._quality: Dict[int, TPQualityResult] = {}
        self._ukranks: Dict[int, UkRanksAnswer] = {}
        self._global_topk: Dict[int, GlobalTopkAnswer] = {}
        self._ptk: Dict[Tuple[int, float], PTkAnswer] = {}
        #: (hits, misses) of the PSR cache -- the expensive resource.
        #: Counters are cumulative along a ``derive`` chain: a session
        #: derived from this one starts from these totals, so the final
        #: session of a cleaning run reports the whole run's cost.
        self.psr_hits = 0
        self.psr_misses = 0
        #: Cached PSR results carried across a delta derivation by
        #: incremental patching (one count per cached ``k``).
        self.psr_patches = 0
        #: ``derive`` calls that started a cold session / patched one.
        self.cold_derives = 0
        self.delta_derives = 0
        #: Smaller-``k`` cache entries seeded from a larger pass by
        #: :meth:`prefill` (the batch-sharing primitive).
        self.psr_prefills = 0
        #: PSR passes the parallel backend executed (pool or in-process
        #: fallback), and how many of those fell back to the in-process
        #: serial path -- zero under the serial backends.
        self.psr_parallel_passes = 0
        self.psr_parallel_fallbacks = 0
        #: Resilience counters of the parallel backend: supervised
        #: retries, worker-pool rebuilds, and passes that degraded past
        #: the pool (to the in-process shards or the NumPy kernel)
        #: after retry exhaustion -- all zero on a healthy run.
        self.psr_retries = 0
        self.psr_pool_restarts = 0
        self.psr_degraded = 0

    @property
    def db(self) -> ProbabilisticDatabase:
        return self.ranked.db

    def _adopt_counters(self, parent: "QuerySession") -> None:
        # Driven by the registry so a counter added there (and in
        # __init__) can never be silently dropped across a derive.
        for name in SESSION_COUNTERS:
            setattr(self, name, getattr(parent, name))

    def derive(
        self,
        db: Union[ProbabilisticDatabase, RankedDatabase],
        delta: Optional[RankDelta] = None,
    ) -> "QuerySession":
        """A session over ``db`` with this session's configuration.

        Returns ``self`` (cache and all) when ``db`` is this session's
        own snapshot -- the no-op transition of a cleaning round where
        every probe failed.

        With a :class:`~repro.db.database.RankDelta` (produced by
        ``RankedDatabase.with_xtuple_replaced`` / ``with_xtuple_removed``
        against this session's ranked view), the derived session does
        not start cold: every memoized :class:`RankProbabilities` is
        patched through :func:`~repro.queries.psr.apply_rank_delta`
        (O(k · affected-window) instead of a fresh O(kn) pass) and the
        quality / ``g(l, D)`` arrays are rebuilt from the patched PSR
        output.  Counters (``psr_hits`` / ``psr_misses`` /
        ``psr_patches`` / ``cold_derives`` / ``delta_derives``) carry
        over cumulatively so the end of a cleaning run reports how many
        full passes the whole run cost.
        """
        if db is self.ranked.db or db is self.ranked:
            return self
        if delta is None:
            ranking = (
                None if isinstance(db, RankedDatabase) else self.ranked.ranking
            )
            derived = QuerySession(
                db, ranking=ranking, backend=self.backend, workers=self.workers
            )
            derived._adopt_counters(self)
            derived.cold_derives += 1
            return derived
        if delta.old_ranked is not self.ranked:
            raise ValueError(
                "delta was not derived from this session's ranked view"
            )
        if db is not delta.new_ranked and db is not delta.new_ranked.db:
            raise ValueError("delta does not lead to the requested database")
        derived = QuerySession(
            delta.new_ranked, backend=self.backend, workers=self.workers
        )
        derived._adopt_counters(self)
        derived.delta_derives += 1
        for k, rank_probs in self._rank_probabilities.items():
            patched = apply_rank_delta(rank_probs, delta, backend=self.backend)
            derived._rank_probabilities[k] = patched
            derived.psr_patches += 1
            cached_quality = self._quality.get(k)
            if cached_quality is not None:
                # Weights are row-local (own-sibling masses only), so
                # the quality patches by splicing the swapped rows out
                # of the weight vector -- O(n) memcpy plus one dot.
                patched_quality = patch_quality_tp(
                    cached_quality, patched, delta, backend=self.backend
                )
                if patched_quality is not None:
                    derived._quality[k] = patched_quality
        # Whatever was not patched (answers, the rare unsupported
        # quality case) rebuilds lazily from the patched PSR output on
        # first use.
        return derived

    def prefill(self, ks: Iterable[int]) -> int:
        """Serve several ``k`` values from **one** PSR pass at ``max(ks)``.

        Runs (or reuses) the pass at the largest requested ``k`` and
        seeds the cache for every smaller ``k`` with a column-restricted
        view of it (:meth:`RankProbabilities.restricted_to` -- rank
        probabilities do not depend on ``k``, so the prefix is exact).
        Afterwards ``rank_probabilities(k)`` is a cache hit for every
        requested ``k``; this is the sharing primitive behind
        :meth:`repro.api.service.TopKService.batch`.

        Returns the number of cache entries seeded (``psr_prefills``
        accumulates the same count across the session's lifetime).
        """
        distinct = sorted({int(k) for k in ks})
        if not distinct:
            return 0
        k_max = distinct[-1]
        rank_probs = self.rank_probabilities(k_max)
        seeded = 0
        for k in distinct[:-1]:
            if k not in self._rank_probabilities:
                self._rank_probabilities[k] = rank_probs.restricted_to(k)
                seeded += 1
        self.psr_prefills += seeded
        return seeded

    # ------------------------------------------------------------------
    # Cached primitives
    # ------------------------------------------------------------------
    def rank_probabilities(self, k: int) -> RankProbabilities:
        """The memoized PSR pass for this view at ``k``."""
        cached = self._rank_probabilities.get(k)
        if cached is not None:
            self.psr_hits += 1
            return cached
        self.psr_misses += 1
        computed = compute_rank_probabilities(
            self.ranked, k, backend=self.backend, workers=self.workers
        )
        info = computed.parallel_info
        if info is not None:
            self.psr_parallel_passes += 1
            if info.get("fallback") is not None:
                self.psr_parallel_fallbacks += 1
            self.psr_retries += int(info.get("retries", 0))
            self.psr_pool_restarts += int(info.get("pool_restarts", 0))
            if info.get("degraded") is not None:
                self.psr_degraded += 1
        self._rank_probabilities[k] = computed
        return computed

    def quality(self, k: int, check_support: bool = False) -> TPQualityResult:
        """The memoized TP quality at ``k`` (shares the PSR pass).

        ``check_support`` verifies Theorem 1's full-length-result
        assumption even when the quality itself is served from cache
        (delta derivations pre-seed the cache, so the check must not
        depend on a cache miss).
        """
        cached = self._quality.get(k)
        if cached is not None:
            if check_support:
                shortfall = short_result_probability(self.ranked, k)
                if shortfall > SUPPORT_TOLERANCE:
                    raise InvalidQueryError(
                        f"possible worlds yield fewer than k={k} real tuples "
                        f"with probability {shortfall:.3g}; Theorem 1 (TP) "
                        f"does not apply -- use PWR or PW instead"
                    )
            return cached
        result = compute_quality_tp(
            self.ranked,
            k,
            rank_probabilities=self.rank_probabilities(k),
            check_support=check_support,
            backend=self.backend,
        )
        self._quality[k] = result
        return result

    # ------------------------------------------------------------------
    # Query semantics (all served from the PSR cache)
    # ------------------------------------------------------------------
    def ukranks(self, k: int) -> UkRanksAnswer:
        """U-kRanks answer at ``k``."""
        cached = self._ukranks.get(k)
        if cached is None:
            cached = ukranks.answer_from_rank_probabilities(
                self.rank_probabilities(k)
            )
            self._ukranks[k] = cached
        return cached

    def ptk(self, k: int, threshold: float = 0.1) -> PTkAnswer:
        """PT-k answer at ``k`` with threshold ``T``."""
        key = (k, threshold)
        cached = self._ptk.get(key)
        if cached is None:
            cached = ptk.answer_from_rank_probabilities(
                self.rank_probabilities(k), threshold
            )
            self._ptk[key] = cached
        return cached

    def global_topk(self, k: int) -> GlobalTopkAnswer:
        """Global-topk answer at ``k``."""
        cached = self._global_topk.get(k)
        if cached is None:
            cached = global_topk.answer_from_rank_probabilities(
                self.rank_probabilities(k)
            )
            self._global_topk[k] = cached
        return cached

    def g_by_xtuple(self, k: int) -> List[float]:
        """Per-x-tuple quality contributions ``g(l, D)`` at ``k``."""
        return self.quality(k).g_by_xtuple()

    def evaluate(self, k: int, threshold: float = 0.1) -> EvaluationReport:
        """All three semantics plus quality, from one (cached) PSR pass."""
        return EvaluationReport(
            k=k,
            rank_probabilities=self.rank_probabilities(k),
            ukranks=self.ukranks(k),
            ptk=self.ptk(k, threshold),
            global_topk=self.global_topk(k),
            quality=self.quality(k),
        )

    def cleaning_problem(
        self,
        k: int,
        costs: Union[Dict[str, int], Iterable[int]],
        sc_probabilities: Union[Dict[str, float], Iterable[float]],
        budget: int,
    ) -> "CleaningProblem":
        """A :class:`~repro.cleaning.model.CleaningProblem` built on
        this session's cached quality at ``k``."""
        from repro.cleaning.model import build_cleaning_problem

        return build_cleaning_problem(
            self.quality(k), costs, sc_probabilities, budget
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ks = sorted(self._rank_probabilities)
        return (
            f"<QuerySession over {self.ranked.db!r}: cached k={ks}, "
            f"psr hits/misses {self.psr_hits}/{self.psr_misses}>"
        )


def evaluate(
    db: Union[ProbabilisticDatabase, RankedDatabase],
    k: int,
    threshold: float = 0.1,
    ranking: Optional[RankingFunction] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> EvaluationReport:
    """Evaluate all three top-k semantics *and* the quality, sharing PSR.

    Parameters
    ----------
    db:
        The database (or an already-ranked view of it).
    k:
        Top-k parameter.
    threshold:
        PT-k threshold ``T`` (the paper's default is 0.1).
    ranking:
        Ranking function for raw databases; defaults to by-value.
    backend:
        Kernel selection; defaults to the process-wide backend.
    workers:
        Pool size for the parallel backend; serial backends ignore it.
    """
    return QuerySession(
        db, ranking=ranking, backend=backend, workers=workers
    ).evaluate(k, threshold)


def evaluate_without_sharing(
    db: Union[ProbabilisticDatabase, RankedDatabase],
    k: int,
    threshold: float = 0.1,
    ranking: Optional[RankingFunction] = None,
    backend: Optional[str] = None,
) -> EvaluationReport:
    """The non-sharing baseline of Figure 5(a).

    Answers the queries from one PSR pass, then *recomputes* PSR inside
    the quality step, exactly like a user who runs a query library and a
    quality library back to back.
    """
    ranked = db if isinstance(db, RankedDatabase) else db.ranked(ranking)
    rank_probs = compute_rank_probabilities(ranked, k, backend=backend)
    return EvaluationReport(
        k=k,
        rank_probabilities=rank_probs,
        ukranks=ukranks.answer_from_rank_probabilities(rank_probs),
        ptk=ptk.answer_from_rank_probabilities(rank_probs, threshold),
        global_topk=global_topk.answer_from_rank_probabilities(rank_probs),
        quality=compute_quality_tp(ranked, k, backend=backend),  # fresh PSR
    )
