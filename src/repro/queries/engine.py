"""Shared query + quality evaluation (paper Section IV-C, Figure 1(b)).

All three query semantics and the TP quality algorithm consume the same
rank-probability information.  :func:`evaluate` therefore runs PSR
exactly once and derives everything from it; the paper measures the
saving in Figure 5 (total time down to ~52% of the non-sharing pipeline
at ``k = 100``, with the quality overhead shrinking from 33% at
``k = 15`` to 6% at ``k = 100``).

:func:`evaluate_without_sharing` is the deliberately naive baseline that
re-runs PSR for the quality step, used by the Figure 5 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.tp import TPQualityResult, compute_quality_tp
from repro.db.database import ProbabilisticDatabase, RankedDatabase
from repro.db.ranking import RankingFunction
from repro.queries import global_topk, ptk, ukranks
from repro.queries.answers import GlobalTopkAnswer, PTkAnswer, UkRanksAnswer
from repro.queries.psr import RankProbabilities, compute_rank_probabilities


@dataclass(frozen=True)
class EvaluationReport:
    """Everything one PSR pass buys: answers, quality, cleaning inputs."""

    k: int
    rank_probabilities: RankProbabilities
    ukranks: UkRanksAnswer
    ptk: PTkAnswer
    global_topk: GlobalTopkAnswer
    quality: TPQualityResult

    @property
    def quality_score(self) -> float:
        return self.quality.quality

    def g_by_xtuple(self) -> List[float]:
        """Per-x-tuple quality contributions ``g(l, D)`` (Theorem 2)."""
        return self.quality.g_by_xtuple()


def evaluate(
    db: Union[ProbabilisticDatabase, RankedDatabase],
    k: int,
    threshold: float = 0.1,
    ranking: Optional[RankingFunction] = None,
) -> EvaluationReport:
    """Evaluate all three top-k semantics *and* the quality, sharing PSR.

    Parameters
    ----------
    db:
        The database (or an already-ranked view of it).
    k:
        Top-k parameter.
    threshold:
        PT-k threshold ``T`` (the paper's default is 0.1).
    ranking:
        Ranking function for raw databases; defaults to by-value.
    """
    ranked = db if isinstance(db, RankedDatabase) else db.ranked(ranking)
    rank_probs = compute_rank_probabilities(ranked, k)
    return EvaluationReport(
        k=k,
        rank_probabilities=rank_probs,
        ukranks=ukranks.answer_from_rank_probabilities(rank_probs),
        ptk=ptk.answer_from_rank_probabilities(rank_probs, threshold),
        global_topk=global_topk.answer_from_rank_probabilities(rank_probs),
        quality=compute_quality_tp(ranked, k, rank_probabilities=rank_probs),
    )


def evaluate_without_sharing(
    db: Union[ProbabilisticDatabase, RankedDatabase],
    k: int,
    threshold: float = 0.1,
    ranking: Optional[RankingFunction] = None,
) -> EvaluationReport:
    """The non-sharing baseline of Figure 5(a).

    Answers the queries from one PSR pass, then *recomputes* PSR inside
    the quality step, exactly like a user who runs a query library and a
    quality library back to back.
    """
    ranked = db if isinstance(db, RankedDatabase) else db.ranked(ranking)
    rank_probs = compute_rank_probabilities(ranked, k)
    return EvaluationReport(
        k=k,
        rank_probabilities=rank_probs,
        ukranks=ukranks.answer_from_rank_probabilities(rank_probs),
        ptk=ptk.answer_from_rank_probabilities(rank_probs, threshold),
        global_topk=global_topk.answer_from_rank_probabilities(rank_probs),
        quality=compute_quality_tp(ranked, k),  # fresh PSR pass
    )
