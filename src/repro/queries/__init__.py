"""Probabilistic top-k queries (paper Sections III-B and IV-C).

* :mod:`repro.queries.psr` -- rank/top-k probabilities in ``O(kn)``;
* :mod:`repro.queries.ukranks`, :mod:`repro.queries.ptk`,
  :mod:`repro.queries.global_topk` -- the three semantics the paper
  targets; :mod:`repro.queries.utopk` as an extension;
* :mod:`repro.queries.engine` -- one-pass shared evaluation of all
  answers plus the quality score;
* :mod:`repro.queries.brute_force` -- exponential oracles for testing
  and the PW baseline.
"""

from repro.queries.answers import (
    GlobalTopkAnswer,
    PTkAnswer,
    RankWinner,
    UkRanksAnswer,
    UTopkAnswer,
)
from repro.queries.engine import (
    EvaluationReport,
    QuerySession,
    evaluate,
    evaluate_without_sharing,
)
from repro.queries.psr import (
    RankProbabilities,
    apply_rank_delta,
    compute_rank_probabilities,
)
from repro.queries.range_query import (
    RangeAnswer,
    RangeQualityResult,
    answer_range_query,
    build_range_cleaning_problem,
    compute_quality_range,
)

__all__ = [
    "RankProbabilities",
    "apply_rank_delta",
    "compute_rank_probabilities",
    "EvaluationReport",
    "QuerySession",
    "evaluate",
    "evaluate_without_sharing",
    "UkRanksAnswer",
    "PTkAnswer",
    "GlobalTopkAnswer",
    "UTopkAnswer",
    "RankWinner",
    "RangeAnswer",
    "RangeQualityResult",
    "answer_range_query",
    "compute_quality_range",
    "build_range_cleaning_problem",
]
