"""U-kRanks: per-rank most probable tuples (Soliman et al., ICDE 2007).

For each rank ``h`` in ``1..k``, the answer is the tuple whose rank-h
probability ``ρ_i(h)`` is the largest.  Ties are broken in favour of the
higher-ranked tuple, keeping the answer deterministic.
"""

from __future__ import annotations

from repro.db.database import RankedDatabase
from repro.queries.answers import RankWinner, UkRanksAnswer
from repro.queries.psr import RankProbabilities, compute_rank_probabilities

#: Rank probabilities at or below this are treated as zero when picking
#: winners.  The dynamic program's factor removals can leave O(1e-17)
#: noise on ranks that are provably unoccupied (e.g. rank m+1 on a
#: complete database with m x-tuples); a "winner" at such a rank would
#: be meaningless.
ZERO_TOLERANCE = 1e-12


def answer_from_rank_probabilities(
    rank_probs: RankProbabilities,
) -> UkRanksAnswer:
    """Aggregate a U-kRanks answer out of precomputed rank probabilities.

    This is the sharing entry point of Section IV-C: the same
    :class:`RankProbabilities` can also feed PT-k, Global-topk and the
    TP quality computation.  One ``argmax`` per rank over the columnar
    ρ matrix; ``argmax`` returns the first maximum, which matches the
    higher-ranked-tuple tie-break.
    """
    k = rank_probs.k
    ranked = rank_probs.ranked
    winners = []
    if rank_probs.cutoff:
        rho = rank_probs.rho_prefix
        best_rows = rho.argmax(axis=0)
        best_values = rho[best_rows, range(k)]
        for h in range(1, k + 1):
            p = float(best_values[h - 1])
            if p > ZERO_TOLERANCE:
                winners.append(
                    RankWinner(
                        rank=h,
                        tid=ranked.order[int(best_rows[h - 1])].tid,
                        probability=p,
                    )
                )
    return UkRanksAnswer(k=k, winners=tuple(winners))


def evaluate(ranked: RankedDatabase, k: int) -> UkRanksAnswer:
    """Answer a U-kRanks query from scratch (runs PSR internally)."""
    return answer_from_rank_probabilities(compute_rank_probabilities(ranked, k))
