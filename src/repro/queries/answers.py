"""Answer types for the probabilistic top-k query semantics.

Each semantics aggregates the pw-result distribution differently
(Section III-B), but all three are derivable from rank-probability
information, which is what makes computation sharing (Section IV-C)
possible.  The answer objects below keep both the selected tuples and
the probabilities that justified the selection, so downstream code
(e.g. reporting, cleaning diagnostics) never needs to recompute them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class RankWinner:
    """U-kRanks component: the most probable tuple at one rank."""

    rank: int
    tid: str
    probability: float


@dataclass(frozen=True)
class UkRanksAnswer:
    """Answer of a U-kRanks query: one winner per rank ``1..k``.

    A rank with no candidate (every tuple has zero probability at that
    rank, possible when worlds can run short of real tuples) is omitted.
    The same tuple may win several ranks -- a known quirk of the
    semantics (Soliman et al., ICDE 2007).
    """

    k: int
    winners: Tuple[RankWinner, ...]

    def winner_at(self, rank: int) -> RankWinner:
        """The winner recorded for one rank (KeyError when vacant)."""
        for w in self.winners:
            if w.rank == rank:
                return w
        raise KeyError(f"no winner recorded for rank {rank}")

    @property
    def tids(self) -> List[str]:
        """Winning tuple ids by rank (duplicates possible)."""
        return [w.tid for w in self.winners]


@dataclass(frozen=True)
class PTkAnswer:
    """Answer of a PT-k query: tuples with top-k probability >= threshold.

    ``members`` are ordered by rank (highest first), each with its top-k
    probability.
    """

    k: int
    threshold: float
    members: Tuple[Tuple[str, float], ...]

    @property
    def tids(self) -> List[str]:
        return [tid for tid, _ in self.members]

    def __contains__(self, tid: str) -> bool:
        return any(member == tid for member, _ in self.members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class GlobalTopkAnswer:
    """Answer of a Global-topk query: the k tuples with the highest
    top-k probabilities, ties broken by the ranking order (higher-ranked
    tuple wins, Zhang & Chomicki's convention)."""

    k: int
    members: Tuple[Tuple[str, float], ...]

    @property
    def tids(self) -> List[str]:
        return [tid for tid, _ in self.members]

    def __contains__(self, tid: str) -> bool:
        return any(member == tid for member, _ in self.members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class UTopkAnswer:
    """Answer of a U-Topk query: the most probable whole pw-result.

    Provided as an extension (the paper defers U-Topk to future work);
    computed from the PWR machinery, which enumerates pw-results
    without expanding possible worlds.
    """

    k: int
    result: Tuple[str, ...]
    probability: float
