"""Columnar NumPy kernel for the PSR scan.

The scalar reference kernel (:mod:`repro.queries.psr`) interleaves
three O(k) inner loops per tuple: divide the current x-tuple's factor
out of the Poisson-binomial vector, emit the ρ row, fold the enlarged
factor back in.  Running those loops as per-tuple NumPy calls does not
pay -- at ``k = 100`` a single array op costs about as much as the
whole scalar loop.  This kernel restructures the computation around a
closed/open factorization of the Poisson-binomial product instead:

* ``closed_dp`` -- the capped product over factors of **closed**
  x-tuples (all members scanned).  Closed factors never change again,
  so this vector is add-only and numerically trivial.
* ``p_open`` -- the product over factors of **open** x-tuples
  (straddling the scan position), kept as a small *uncapped* Python
  list of coefficients.  Because the full polynomial is available, a
  factor can be divided out *exactly* in whichever recurrence
  direction is stable (forward for ``q <= 1/2``, backward from the top
  coefficient for ``q > 1/2``) -- the instability that forces the
  reference kernel into from-scratch rebuilds never arises.

The exclusion vector of tuple ``t_i`` (x-tuple ``τ_l``) is then

    dp_excl_i = closed_dp ⊛ (p_open / factor(q_i))   truncated to k,

one short convolution per tuple.  These convolutions are **batched**:
``closed_dp`` only changes when an x-tuple closes, so all exclusion
rows between two close events share one base and are emitted as a
single ``(rows × L) @ (L × k)`` matmul against a strided Toeplitz view
of ``closed_dp``.  The scan's per-tuple work is therefore a handful of
scalar list operations of length ``|open|``; all O(k) work runs at
array speed in per-epoch batches.

ρ rows are the exclusion rows scaled by ``e_i`` and shifted by the
saturation count (grouped by shift value); top-k probabilities are row
sums.  Saturation and Lemma 2's early stop behave exactly as in the
reference kernel.  Worst-case cost is O(n·(k + |open|)) -- strictly
better than the reference kernel's O(n·|open|·k) rebuild regime on
workloads with wide rank overlap.

The scan is **resumable**: :class:`_NumpyScanState` carries everything
the loop needs, the full pass snapshots it every
:data:`~repro.queries.psr.CHECKPOINT_INTERVAL` rows, and
:func:`_delta_window_numpy` restores the nearest snapshot to re-emit
only the rank window an x-tuple swap actually moved (the incremental
path behind :func:`repro.queries.psr.apply_rank_delta`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.db.database import SATURATION_EPSILON, RankDelta, RankedDatabase
from repro.queries.deterministic import require_valid_k
from repro.queries.psr import (
    CHECKPOINT_INTERVAL,
    DECONVOLUTION_LIMIT,
    RankProbabilities,
    ScanCheckpoint,
    nearest_checkpoint,
    resume_window_state,
)

#: The open polynomial is rebuilt from the open masses after this many
#: divisions, bounding floating-point drift from long divide/multiply
#: chains (each division is stable, but errors accumulate additively).
#: Wide-overlap workloads (dozens of open x-tuples, e.g. the n = 100k
#: synthetic database at k = 100) drift past 1e-2 with a lax interval;
#: 32 keeps the kernel within ~1e-12 of the scalar reference at no
#: measurable wall-clock cost, since a rebuild is just |open| short
#: convolutions.
REBUILD_INTERVAL = 32


def _multiply_factor(poly: List[float], q: float) -> List[float]:
    """``poly · (1-q+q·z)`` (full, uncapped product)."""
    one_minus = 1.0 - q
    out = [0.0] * (len(poly) + 1)
    for s, c in enumerate(poly):
        out[s] += c * one_minus
        out[s + 1] += c * q
    return out


def _divide_factor(poly: List[float], q: float) -> List[float]:
    """``poly / (1-q+q·z)`` exactly, in the stable recurrence direction.

    Forward (low-to-high) amplifies error by ``q/(1-q)`` per step, so
    it serves ``q <= 1/2``; backward (high-to-low) damps by ``(1-q)/q``
    and serves ``q > 1/2`` -- possible because the polynomial is
    uncapped, so its true top coefficient is available.
    """
    size = len(poly) - 1
    out = [0.0] * size
    if q <= DECONVOLUTION_LIMIT:
        one_minus = 1.0 - q
        prev = 0.0
        for s in range(size):
            prev = (poly[s] - q * prev) / one_minus
            if prev < 0.0:  # round-off guard; true coefficients are >= 0
                prev = 0.0
            out[s] = prev
        return out
    one_minus = 1.0 - q
    prev = poly[size] / q
    out[size - 1] = prev
    for s in range(size - 1, 0, -1):
        prev = (poly[s] - one_minus * prev) / q
        if prev < 0.0:
            prev = 0.0
        out[s - 1] = prev
    return out


def _open_product(open_masses: Dict[int, float], skip: int) -> List[float]:
    """Product over open, non-saturated factors except ``skip``."""
    poly = [1.0]
    for l, q in open_masses.items():
        if l != skip and q < 1.0 - SATURATION_EPSILON:
            poly = _multiply_factor(poly, q)
    return poly


class _NumpyScanState:
    """Mutable scan state of the columnar kernel (resumable mid-stream)."""

    __slots__ = (
        "row",
        "shift",
        "open_masses",
        "p_open",
        "closed_dp",
        "remaining",
        "divisions",
    )

    def __init__(
        self,
        row: int,
        shift: int,
        open_masses: Dict[int, float],
        p_open: Optional[np.ndarray],
        closed_dp: np.ndarray,
        remaining: List[int],
    ) -> None:
        self.row = row
        self.shift = shift
        self.open_masses = open_masses
        self.p_open = p_open
        self.closed_dp = closed_dp
        self.remaining = remaining
        self.divisions = 0


def _numpy_state(
    ranked: RankedDatabase,
    k: int,
    checkpoint: Optional[ScanCheckpoint],
    defer_product: bool = False,
) -> _NumpyScanState:
    """Scan state at a checkpoint (or the initial state for ``None``).

    ``defer_product`` skips building the open polynomial -- the
    fast-forward path maintains only the factor state and rebuilds the
    product once it reaches the window.
    """
    if checkpoint is None:
        row, shift = 0, 0
        closed_dp = np.zeros(k)
        closed_dp[0] = 1.0
        open_masses: Dict[int, float] = {}
    else:
        row, shift = checkpoint.row, checkpoint.shift
        closed_dp = checkpoint.closed_dp.copy()
        open_masses = dict(checkpoint.open_masses)
    remaining = np.bincount(
        ranked.xtuple_indices_array[row:], minlength=ranked.num_xtuples
    ).tolist()
    p_open = None if defer_product else _open_product(open_masses, -1)
    return _NumpyScanState(
        row, shift, open_masses, p_open, closed_dp, remaining
    )


class _RowEmitter:
    """Batched exclusion-row emission for one scanned row range.

    Collects the per-tuple exclusion polynomials between two close
    events and emits them as a single Toeplitz matmul against the
    shared ``closed_dp`` base; :meth:`finalize` turns the exclusion
    rows into the shift-grouped ρ matrix and top-k vector.
    """

    def __init__(self, start: int, count: int, k: int) -> None:
        self.start = start
        self.k = k
        # np.empty keeps the allocation lazy: complete databases cut
        # off after ~k x-tuples and never touch most rows.  Live rows
        # and shifts are recorded as plain lists -- per-row ndarray
        # scalar writes cost more than the whole batched emission.
        self.exclusions = np.empty((count, k))
        self.live_rows: List[int] = []
        self.live_shifts: List[int] = []
        self.pending_rows: List[int] = []
        self.pending_polys: List[List[float]] = []

    def record(self, row: int, shift: int, p_excl: List[float]) -> None:
        r = row - self.start
        self.live_rows.append(r)
        self.live_shifts.append(shift)
        self.pending_rows.append(r)
        self.pending_polys.append(p_excl)

    def flush(self, closed_dp: np.ndarray) -> None:
        """Emit pending rows: one matmul against a Toeplitz view."""
        if not self.pending_rows:
            return
        k = self.k
        width = min(max(len(p) for p in self.pending_polys), k)
        matrix = np.array(
            [
                p[:width] + [0.0] * (width - len(p))
                for p in self.pending_polys
            ]
        )
        # toeplitz[j, s] = closed_dp[s - j]: row j of the product is
        # the base shifted right by j.
        buffer = np.concatenate((np.zeros(width - 1), closed_dp))
        toeplitz = np.lib.stride_tricks.as_strided(
            buffer[width - 1 :],
            shape=(width, k),
            strides=(-buffer.strides[0], buffer.strides[0]),
        )
        self.exclusions[self.pending_rows] = matrix @ toeplitz
        self.pending_rows.clear()
        self.pending_polys.clear()

    def finalize(
        self, existential_full: np.ndarray, end: int
    ) -> Tuple["_WindowRho", np.ndarray]:
        """ρ rows (lazy) and top-k sums for rows [start, end).

        The top-k vector is computed directly from the exclusion rows
        (a row's ρ sum is the first ``k - shift`` exclusion entries
        scaled by ``e_i``); the full ρ matrix is wrapped as a
        :class:`_WindowRho` and only materialized if a query answer
        asks for rank-level probabilities later.
        """
        k = self.k
        count = end - self.start
        existential = existential_full[self.start : end]
        window = _WindowRho(
            self.exclusions, self.live_rows, self.live_shifts, existential,
            count, k,
        )
        topk = np.zeros(count)
        if self.live_rows:
            for sh, rows in _shift_groups(self.live_rows, self.live_shifts):
                if sh == 0:
                    topk[rows] = (
                        existential[rows] * self.exclusions[rows].sum(axis=1)
                    )
                elif sh < k:
                    topk[rows] = (
                        existential[rows]
                        * self.exclusions[rows, : k - sh].sum(axis=1)
                    )
        return window, topk


class _WindowRho:
    """Deferred ρ materialization for one emitted row range.

    Shares the emitter's buffers; materializes to the ``(count, k)``
    float64 block on demand (see ``_PendingRho`` in
    :mod:`repro.queries.psr`).
    """

    __slots__ = ("exclusions", "live_rows", "live_shifts", "existential", "count", "k")

    def __init__(
        self,
        exclusions: np.ndarray,
        live_rows: List[int],
        live_shifts: List[int],
        existential: np.ndarray,
        count: int,
        k: int,
    ) -> None:
        self.exclusions = exclusions
        self.live_rows = live_rows
        self.live_shifts = live_shifts
        self.existential = existential
        self.count = count
        self.k = k

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.count, self.k)

    def materialize(self) -> np.ndarray:
        k = self.k
        rho = np.zeros((self.count, k))
        if self.live_rows:
            for sh, rows in _shift_groups(self.live_rows, self.live_shifts):
                if sh == 0:
                    rho[rows] = (
                        self.existential[rows, None] * self.exclusions[rows]
                    )
                elif sh < k:
                    rho[rows, sh:] = (
                        self.existential[rows, None]
                        * self.exclusions[rows, : k - sh]
                    )
        return rho


def _shift_groups(
    live_rows: List[int], live_shifts: List[int]
) -> List[Tuple[int, np.ndarray]]:
    """Live rows grouped by their saturation shift."""
    live = np.array(live_rows, dtype=np.int64)
    if min(live_shifts) == max(live_shifts):
        # One shift value across the range -- the common case for
        # small delta windows (and for complete prefixes).
        return [(live_shifts[0], live)]
    shifts = np.array(live_shifts, dtype=np.int64)
    return [(int(sh), live[shifts == sh]) for sh in np.unique(shifts)]


def _scan_numpy(
    probabilities: List[float],
    xtuple_indices: List[int],
    k: int,
    st: _NumpyScanState,
    stop: int,
    emitter: Optional[_RowEmitter],
    checkpoints: Optional[List[ScanCheckpoint]],
    base: int = 0,
) -> int:
    """Advance the columnar scan from ``st.row`` to ``stop``.

    With ``emitter=None`` the loop only transitions state (the
    fast-forward used when resuming from a checkpoint).  Returns the
    row where Lemma 2's early stop fired, or ``stop``.  The input lists
    hold rows ``base ..`` (delta windows pass a slice instead of
    materializing the whole column).
    """
    open_masses = st.open_masses
    remaining = st.remaining
    closed_dp = st.closed_dp
    shift = st.shift
    p_open = st.p_open
    divisions = st.divisions
    i = st.row
    next_ck = max(
        CHECKPOINT_INTERVAL,
        ((i + CHECKPOINT_INTERVAL - 1) // CHECKPOINT_INTERVAL)
        * CHECKPOINT_INTERVAL,
    )
    while i < stop:
        if shift >= k:
            break
        if checkpoints is not None and i == next_ck:
            checkpoints.append(
                ScanCheckpoint(
                    row=i,
                    shift=shift,
                    closed_dp=closed_dp.copy(),
                    open_masses=dict(open_masses),
                )
            )
        if i >= next_ck:
            next_ck += CHECKPOINT_INTERVAL
        e_i = probabilities[i - base]
        l = xtuple_indices[i - base]
        q = open_masses.get(l, 0.0)

        if q >= 1.0 - SATURATION_EPSILON:
            # Siblings already exhaust the probability mass: the ρ row
            # stays zero (`live` stays False).
            remaining[l] -= 1
            if remaining[l] == 0:
                del open_masses[l]  # saturated: lives in `shift`
            i += 1
            continue

        if q <= 0.0:
            p_excl = p_open
        else:
            p_excl = _divide_factor(p_open, q)
            divisions += 1

        if emitter is not None:
            emitter.record(i, shift, p_excl)

        new_mass = q + e_i
        if new_mass > 1.0:
            new_mass = 1.0
        saturating = new_mass >= 1.0 - SATURATION_EPSILON

        remaining[l] -= 1
        closing = remaining[l] == 0
        if saturating:
            p_open = p_excl
            shift += 1
        elif closing:
            # The factor is final: emit rows on the old base, then
            # fold it into the closed product.
            p_open = p_excl
            if emitter is not None:
                emitter.flush(closed_dp)
            shifted = closed_dp[:-1] * new_mass
            closed_dp *= 1.0 - new_mass
            closed_dp[1:] += shifted
        else:
            p_open = _multiply_factor(p_excl, new_mass)
        if closing:
            open_masses.pop(l, None)
        else:
            open_masses[l] = 1.0 if saturating else new_mass

        if divisions >= REBUILD_INTERVAL:
            # Fresh product over the open masses: resets accumulated
            # division round-off.
            p_open = _open_product(open_masses, -1)
            divisions = 0
        i += 1

    st.row = i
    st.shift = shift
    st.p_open = p_open
    st.divisions = divisions
    return i


def compute_rank_probabilities_numpy(
    ranked: RankedDatabase, k: int
) -> RankProbabilities:
    """Vectorized PSR over a pre-sorted database (NumPy backend)."""
    require_valid_k(k)
    n = ranked.num_tuples
    st = _numpy_state(ranked, k, None)
    emitter = _RowEmitter(0, n, k)
    checkpoints: List[ScanCheckpoint] = []
    cutoff = _scan_numpy(
        ranked.probabilities,
        ranked.xtuple_indices,
        k,
        st,
        n,
        emitter,
        checkpoints,
    )
    emitter.flush(st.closed_dp)
    window, topk = emitter.finalize(ranked.probabilities_array, cutoff)
    return RankProbabilities(
        k=k,
        ranked=ranked,
        cutoff=cutoff,
        rho_prefix=window.materialize(),
        topk_prefix=topk,
        backend="numpy",
        checkpoints=checkpoints,
    )


def _delta_window_numpy(
    old_rp: RankProbabilities,
    delta: RankDelta,
    start: int,
    stop: int,
    checkpoints: List[ScanCheckpoint],
) -> Tuple[np.ndarray, np.ndarray, int, List[ScanCheckpoint]]:
    """Re-emit rows ``[start, stop)`` of the patched view (columnar).

    Restores the nearest checkpoint at or above ``start``, fast-forwards
    the state over the unchanged prefix rows in between (no emission),
    then runs the ordinary batched scan over the window.
    """
    new_ranked = delta.new_ranked
    k = old_rp.k
    st = _numpy_state(
        new_ranked, k, nearest_checkpoint(checkpoints, start),
        defer_product=True,
    )
    probabilities, xtuple_indices, base = resume_window_state(
        st, new_ranked, k, start, stop
    )
    st.p_open = _open_product(st.open_masses, -1)
    emitter = _RowEmitter(start, stop - start, k)
    fresh: List[ScanCheckpoint] = []
    end = _scan_numpy(
        probabilities, xtuple_indices, k, st, stop, emitter, fresh, base
    )
    emitter.flush(st.closed_dp)
    window, topk = emitter.finalize(new_ranked.probabilities_array, end)
    return window, topk, end, fresh
