"""Columnar NumPy kernel for the PSR scan.

The scalar reference kernel (:mod:`repro.queries.psr`) interleaves
three O(k) inner loops per tuple: divide the current x-tuple's factor
out of the Poisson-binomial vector, emit the ρ row, fold the enlarged
factor back in.  Running those loops as per-tuple NumPy calls does not
pay -- at ``k = 100`` a single array op costs about as much as the
whole scalar loop.  This kernel restructures the computation around a
closed/open factorization of the Poisson-binomial product instead:

* ``closed_dp`` -- the capped product over factors of **closed**
  x-tuples (all members scanned).  Closed factors never change again,
  so this vector is add-only and numerically trivial.
* ``p_open`` -- the product over factors of **open** x-tuples
  (straddling the scan position), kept as a small *uncapped* Python
  list of coefficients.  Because the full polynomial is available, a
  factor can be divided out *exactly* in whichever recurrence
  direction is stable (forward for ``q <= 1/2``, backward from the top
  coefficient for ``q > 1/2``) -- the instability that forces the
  reference kernel into from-scratch rebuilds never arises.

The exclusion vector of tuple ``t_i`` (x-tuple ``τ_l``) is then

    dp_excl_i = closed_dp ⊛ (p_open / factor(q_i))   truncated to k,

one short convolution per tuple.  These convolutions are **batched**:
``closed_dp`` only changes when an x-tuple closes, so all exclusion
rows between two close events share one base and are emitted as a
single ``(rows × L) @ (L × k)`` matmul against a strided Toeplitz view
of ``closed_dp``.  The scan's per-tuple work is therefore a handful of
scalar list operations of length ``|open|``; all O(k) work runs at
array speed in per-epoch batches.

ρ rows are the exclusion rows scaled by ``e_i`` and shifted by the
saturation count (grouped by shift value); top-k probabilities are row
sums.  Saturation and Lemma 2's early stop behave exactly as in the
reference kernel.  Worst-case cost is O(n·(k + |open|)) -- strictly
better than the reference kernel's O(n·|open|·k) rebuild regime on
workloads with wide rank overlap.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.db.database import RankedDatabase
from repro.queries.deterministic import require_valid_k
from repro.queries.psr import (
    DECONVOLUTION_LIMIT,
    SATURATION_EPSILON,
    RankProbabilities,
    member_counts,
)

#: The open polynomial is rebuilt from the open masses after this many
#: divisions, bounding floating-point drift from long divide/multiply
#: chains (each division is stable, but errors accumulate additively).
REBUILD_INTERVAL = 4096


def _multiply_factor(poly: List[float], q: float) -> List[float]:
    """``poly · (1-q+q·z)`` (full, uncapped product)."""
    one_minus = 1.0 - q
    out = [0.0] * (len(poly) + 1)
    for s, c in enumerate(poly):
        out[s] += c * one_minus
        out[s + 1] += c * q
    return out


def _divide_factor(poly: List[float], q: float) -> List[float]:
    """``poly / (1-q+q·z)`` exactly, in the stable recurrence direction.

    Forward (low-to-high) amplifies error by ``q/(1-q)`` per step, so
    it serves ``q <= 1/2``; backward (high-to-low) damps by ``(1-q)/q``
    and serves ``q > 1/2`` -- possible because the polynomial is
    uncapped, so its true top coefficient is available.
    """
    size = len(poly) - 1
    out = [0.0] * size
    if q <= DECONVOLUTION_LIMIT:
        one_minus = 1.0 - q
        prev = 0.0
        for s in range(size):
            prev = (poly[s] - q * prev) / one_minus
            if prev < 0.0:  # round-off guard; true coefficients are >= 0
                prev = 0.0
            out[s] = prev
        return out
    one_minus = 1.0 - q
    prev = poly[size] / q
    out[size - 1] = prev
    for s in range(size - 1, 0, -1):
        prev = (poly[s] - one_minus * prev) / q
        if prev < 0.0:
            prev = 0.0
        out[s - 1] = prev
    return out


def _open_product(open_masses: Dict[int, float], skip: int) -> List[float]:
    """Product over open, non-saturated factors except ``skip``."""
    poly = [1.0]
    for l, q in open_masses.items():
        if l != skip and q < 1.0 - SATURATION_EPSILON:
            poly = _multiply_factor(poly, q)
    return poly


def compute_rank_probabilities_numpy(
    ranked: RankedDatabase, k: int
) -> RankProbabilities:
    """Vectorized PSR over a pre-sorted database (NumPy backend)."""
    require_valid_k(k)
    n = ranked.num_tuples
    probabilities = ranked.probabilities
    xtuple_indices = ranked.xtuple_indices

    remaining = member_counts(ranked)
    open_masses: Dict[int, float] = {}
    p_open: List[float] = [1.0]
    divisions = 0
    closed_dp = np.zeros(k)
    closed_dp[0] = 1.0
    shift = 0
    cutoff = n

    # Per-scanned-tuple recordings.  np.empty keeps the allocation
    # lazy: complete databases cut off after ~k x-tuples and never
    # touch most rows.
    exclusions = np.empty((n, k))
    shifts = np.empty(n, dtype=np.int64)
    live = np.zeros(n, dtype=bool)

    # Exclusion polynomials awaiting batch emission: all rows between
    # two close events share the same closed_dp base.
    pending_rows: List[int] = []
    pending_polys: List[List[float]] = []

    def flush() -> None:
        """Emit pending rows: one matmul against a Toeplitz view."""
        if not pending_rows:
            return
        width = min(max(len(p) for p in pending_polys), k)
        matrix = np.array(
            [
                p[:width] + [0.0] * (width - len(p))
                for p in pending_polys
            ]
        )
        # toeplitz[j, s] = closed_dp[s - j]: row j of the product is
        # the base shifted right by j.
        buffer = np.concatenate((np.zeros(width - 1), closed_dp))
        toeplitz = np.lib.stride_tricks.as_strided(
            buffer[width - 1 :],
            shape=(width, k),
            strides=(-buffer.strides[0], buffer.strides[0]),
        )
        exclusions[pending_rows] = matrix @ toeplitz
        pending_rows.clear()
        pending_polys.clear()

    for i in range(n):
        if shift >= k:
            cutoff = i
            break
        e_i = probabilities[i]
        l = xtuple_indices[i]
        q = open_masses.get(l, 0.0)

        if q >= 1.0 - SATURATION_EPSILON:
            # Siblings already exhaust the probability mass: the ρ row
            # stays zero (`live` stays False).
            remaining[l] -= 1
            if remaining[l] == 0:
                del open_masses[l]  # saturated: lives in `shift`
            continue

        if q <= 0.0:
            p_excl = p_open
        else:
            p_excl = _divide_factor(p_open, q)
            divisions += 1

        live[i] = True
        shifts[i] = shift
        pending_rows.append(i)
        pending_polys.append(p_excl)

        new_mass = q + e_i
        if new_mass > 1.0:
            new_mass = 1.0
        saturating = new_mass >= 1.0 - SATURATION_EPSILON

        remaining[l] -= 1
        closing = remaining[l] == 0
        if saturating:
            p_open = p_excl
            shift += 1
        elif closing:
            # The factor is final: emit rows on the old base, then
            # fold it into the closed product.
            p_open = p_excl
            flush()
            shifted = closed_dp[:-1] * new_mass
            closed_dp *= 1.0 - new_mass
            closed_dp[1:] += shifted
        else:
            p_open = _multiply_factor(p_excl, new_mass)
        if closing:
            open_masses.pop(l, None)
        else:
            open_masses[l] = 1.0 if saturating else new_mass

        if divisions >= REBUILD_INTERVAL:
            # Fresh product over the open masses: resets accumulated
            # division round-off.
            p_open = _open_product(open_masses, -1)
            divisions = 0

    flush()

    # ------------------------------------------------------------------
    # ρ rows (shift-grouped) and top-k probabilities.
    # ------------------------------------------------------------------
    shifts = shifts[:cutoff]
    live = live[:cutoff]
    rho = np.zeros((cutoff, k))
    existential = ranked.probabilities_array[:cutoff]
    if cutoff:
        for sh in np.unique(shifts[live]):
            rows = np.nonzero(live & (shifts == sh))[0]
            sh = int(sh)
            if sh == 0:
                rho[rows] = existential[rows, None] * exclusions[rows]
            elif sh < k:
                rho[rows, sh:] = (
                    existential[rows, None] * exclusions[rows, : k - sh]
                )
    topk = rho.sum(axis=1)

    return RankProbabilities(
        k=k,
        ranked=ranked,
        cutoff=cutoff,
        rho_prefix=rho,
        topk_prefix=topk,
        backend="numpy",
    )
