"""U-Topk: the most probable whole pw-result (library extension).

The paper restricts itself to U-kRanks / PT-k / Global-topk and leaves
other semantics to future work (Section II).  U-Topk (Soliman et al.,
ICDE 2007) asks for the *entire* top-k list with the highest
probability -- exactly the mode of the pw-result distribution, which
the PWR machinery enumerates without expanding possible worlds.  We
expose it here because it falls out of the reproduction for free and
rounds out the query surface.

Note this inherits PWR's cost: worst case exponential in ``k``; use on
workloads where PWR itself is feasible.
"""

from __future__ import annotations

from repro.core.pwr import iter_pw_results
from repro.db.database import RankedDatabase
from repro.queries.answers import UTopkAnswer


def evaluate(ranked: RankedDatabase, k: int) -> UTopkAnswer:
    """Answer a U-Topk query by scanning the pw-result stream.

    Ties on probability are broken toward the result encountered first
    in DFS order (which is the lexicographically best by rank).
    """
    best_result = None
    best_probability = -1.0
    for result, probability in iter_pw_results(ranked, k):
        if probability > best_probability:
            best_probability = probability
            best_result = result
    if best_result is None:  # pragma: no cover - empty DBs are rejected upstream
        raise ValueError("database produced no pw-results")
    return UTopkAnswer(k=k, result=best_result, probability=best_probability)
