"""PWS-quality and cleaning for probabilistic *range* queries (extension).

The paper builds on [16] (Cheng, Chen, Xie: "Cleaning uncertain data
with quality guarantees", VLDB 2008), which defined the PWS-quality and
solved quality computation + budgeted cleaning for *range and max*
queries; the paper's contribution is extending that to top-k, which is
much harder.  This module supplies the range-query side, so the library
covers the whole lineage: max queries are top-1 (use ``k = 1``), range
queries live here.

Why range queries are easy (and top-k is not): a range query's
pw-result -- the set of existing tuples with value inside ``[low,
high]`` -- decomposes *per x-tuple*.  Each entity independently
contributes either one in-range member (probability ``e_i``) or nothing
(the remaining mass: out-of-range members plus the null outcome).  The
pw-result distribution is therefore a product measure, its entropy is
the sum of per-entity entropies, and the PWS-quality has the closed
form

    S = Σ_l g_l,   g_l = Σ_{t_i∈τ_l, in range} Y(e_i) + Y(1 - R_l),

with ``R_l`` the x-tuple's in-range mass and ``Y(x) = x·log2 x``.  No
dynamic program needed.

Because ``g_l <= 0`` plays exactly the role of the top-k ``g(l, D)``
(a successful ``pclean`` zeroes it; failures leave it), the whole
cleaning machinery of Section V applies unchanged:
:func:`build_range_cleaning_problem` plugs these ``g_l`` into a
:class:`~repro.cleaning.model.CleaningProblem`, and DP/Greedy/RandP/
RandU plan budgeted cleaning for range queries -- reproducing [16]'s
setting, upgraded with this paper's sc-probabilities and probe costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.entropy import xlog2x

if TYPE_CHECKING:  # deferred: repro.cleaning imports repro.queries
    from repro.cleaning.model import CleaningProblem
from repro.db.database import ProbabilisticDatabase
from repro.db.possible_worlds import iter_worlds
from repro.db.tuples import ProbabilisticTuple, XTuple
from repro.exceptions import InvalidQueryError

ValueFunction = Callable[[ProbabilisticTuple], float]


def _default_value(t: ProbabilisticTuple) -> float:
    return float(t.value)


def _require_valid_range(low: float, high: float) -> None:
    if math.isnan(low) or math.isnan(high) or low > high:
        raise InvalidQueryError(
            f"range bounds must satisfy low <= high, got [{low!r}, {high!r}]"
        )


@dataclass(frozen=True)
class RangeAnswer:
    """Answer of a probabilistic range query.

    ``members`` lists every tuple whose value falls in ``[low, high]``
    with its existential probability -- which *is* its probability of
    appearing in the result, by independence across x-tuples and
    exclusivity within one.
    """

    low: float
    high: float
    members: Tuple[Tuple[str, float], ...]

    @property
    def tids(self) -> List[str]:
        return [tid for tid, _ in self.members]

    def __contains__(self, tid: str) -> bool:
        return any(member == tid for member, _ in self.members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class RangeQualityResult:
    """PWS-quality of a range query plus its per-entity decomposition.

    ``g_by_xtuple[l]`` is entity ``l``'s (non-positive) contribution;
    the values sum to ``quality`` and feed the cleaning planners.
    """

    low: float
    high: float
    quality: float
    g_by_xtuple: Tuple[float, ...]
    in_range_mass_by_xtuple: Tuple[float, ...]


def answer_range_query(
    db: ProbabilisticDatabase,
    low: float,
    high: float,
    value: Optional[ValueFunction] = None,
) -> RangeAnswer:
    """Tuples with value in ``[low, high]`` and their probabilities."""
    _require_valid_range(low, high)
    value = value or _default_value
    members = tuple(
        (t.tid, t.probability)
        for t in db
        if low <= value(t) <= high
    )
    return RangeAnswer(low=low, high=high, members=members)


def _xtuple_quality(
    xt: XTuple, low: float, high: float, value: ValueFunction
) -> Tuple[float, float]:
    """(g_l, in-range mass) for one entity."""
    g = 0.0
    in_range = 0.0
    for t in xt.alternatives:
        if low <= value(t) <= high:
            g += xlog2x(t.probability)
            in_range += t.probability
    g += xlog2x(max(0.0, 1.0 - in_range))
    return g, in_range


def compute_quality_range(
    db: ProbabilisticDatabase,
    low: float,
    high: float,
    value: Optional[ValueFunction] = None,
) -> RangeQualityResult:
    """Closed-form PWS-quality of a range query (O(n))."""
    _require_valid_range(low, high)
    value = value or _default_value
    g_values: List[float] = []
    masses: List[float] = []
    for xt in db.xtuples:
        g, mass = _xtuple_quality(xt, low, high, value)
        g_values.append(g)
        masses.append(mass)
    return RangeQualityResult(
        low=low,
        high=high,
        quality=math.fsum(g_values),
        g_by_xtuple=tuple(g_values),
        in_range_mass_by_xtuple=tuple(masses),
    )


def compute_quality_range_bruteforce(
    db: ProbabilisticDatabase,
    low: float,
    high: float,
    value: Optional[ValueFunction] = None,
) -> float:
    """Definition 4 evaluated over all possible worlds. Test oracle."""
    _require_valid_range(low, high)
    value = value or _default_value
    distribution: Dict[frozenset, float] = {}
    for world in iter_worlds(db):
        result = frozenset(
            t.tid for t in world.real_tuples if low <= value(t) <= high
        )
        distribution[result] = distribution.get(result, 0.0) + world.probability
    return math.fsum(
        xlog2x(p) for p in distribution.values() if p > 0.0
    )


def build_range_cleaning_problem(
    db: ProbabilisticDatabase,
    low: float,
    high: float,
    costs: Union[Mapping[str, int], Iterable[int]],
    sc_probabilities: Union[Mapping[str, float], Iterable[float]],
    budget: int,
    value: Optional[ValueFunction] = None,
) -> "CleaningProblem":
    """A budgeted cleaning instance protecting a range query.

    The returned problem drops straight into the Section V planners
    (DP, Greedy, RandP, RandU), Theorem 2's
    :func:`~repro.cleaning.improvement.expected_improvement`, the
    executor and the inverse/adaptive extensions -- the closed-form
    ``g_l`` here obeys the same "successful cleaning zeroes the
    entity's contribution" law the top-k ``g(l, D)`` does.

    ``RandP``'s weights become each entity's in-range probability mass
    (the natural analogue of its top-k probability mass).  The
    problem's ``k`` is fixed at 1 -- range queries have no ``k``; the
    planners never read it.
    """
    from repro.cleaning.model import CleaningProblem

    quality = compute_quality_range(db, low, high, value)
    ranked = db.ranked()

    def as_array(
        source: Union[Mapping[str, float], Iterable[float]], label: str
    ) -> Tuple[float, ...]:
        if isinstance(source, Mapping):
            missing = [xt.xid for xt in db.xtuples if xt.xid not in source]
            if missing:
                raise InvalidQueryError(
                    f"{label} mapping is missing x-tuples {missing[:5]!r}"
                )
            return tuple(source[xt.xid] for xt in db.xtuples)
        values = tuple(source)
        if len(values) != db.num_xtuples:
            raise InvalidQueryError(
                f"{label} sequence has {len(values)} entries for "
                f"{db.num_xtuples} x-tuples"
            )
        return values

    return CleaningProblem(
        ranked=ranked,
        k=1,
        g_by_xtuple=quality.g_by_xtuple,
        topk_mass_by_xtuple=quality.in_range_mass_by_xtuple,
        costs=as_array(costs, "costs"),
        sc_probabilities=as_array(sc_probabilities, "sc_probabilities"),
        budget=budget,
    )
