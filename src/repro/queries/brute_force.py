"""Brute-force oracles via exhaustive possible-world enumeration.

Everything here is exponential in the number of x-tuples and exists for
two purposes: (1) it *is* the paper's naive ``PW`` pipeline (Fig. 1(a),
Steps 1-3), which the benchmarks of Figure 4(d) time against PWR and
TP; (2) it is the ground truth that every efficient algorithm in this
library is tested against.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.db.database import RankedDatabase
from repro.db.possible_worlds import iter_worlds
from repro.queries.deterministic import PWResult, require_valid_k, topk_of_world


def pw_result_distribution(
    ranked: RankedDatabase, k: int
) -> Dict[PWResult, float]:
    """The exact distribution of pw-results (Definition 1).

    Evaluates a deterministic top-k query in every possible world and
    aggregates equal results.  Result probabilities sum to one.
    """
    require_valid_k(k)
    distribution: Dict[PWResult, float] = {}
    for world in iter_worlds(ranked.db):
        if world.probability <= 0.0:
            continue
        result = topk_of_world(ranked, world, k)
        distribution[result] = distribution.get(result, 0.0) + world.probability
    return distribution


def rank_probabilities_by_enumeration(
    ranked: RankedDatabase, k: int
) -> Dict[str, List[float]]:
    """``ρ_i(h)`` for every tuple, straight from Definition 2.

    Returns a mapping ``tid -> [ρ(1), ..., ρ(k)]``.  Tuples never in a
    pw-result map to all-zero vectors.
    """
    require_valid_k(k)
    rho: Dict[str, List[float]] = {t.tid: [0.0] * k for t in ranked.order}
    for result, probability in pw_result_distribution(ranked, k).items():
        for h, tid in enumerate(result, start=1):
            rho[tid][h - 1] += probability
    return rho


def topk_probabilities_by_enumeration(
    ranked: RankedDatabase, k: int
) -> Dict[str, float]:
    """``p_i`` for every tuple, straight from Definition 3."""
    rho = rank_probabilities_by_enumeration(ranked, k)
    return {tid: math.fsum(vector) for tid, vector in rho.items()}


def quality_by_enumeration(ranked: RankedDatabase, k: int) -> float:
    """PWS-quality from Definition 4 (the PW algorithm's final step)."""
    total = 0.0
    for probability in pw_result_distribution(ranked, k).values():
        if probability > 0.0:
            total += probability * math.log2(probability)
    return total


def result_entropy(distribution: Dict[PWResult, float]) -> float:
    """Shannon entropy (bits) of a pw-result distribution.

    The PWS-quality is the negated entropy; exposing the entropy makes
    the figures' captions (e.g. "quality = -2.55") easy to regenerate.
    """
    return -math.fsum(
        p * math.log2(p) for p in distribution.values() if p > 0.0
    )


def most_probable_results(
    distribution: Dict[PWResult, float], count: int = 1
) -> List[Tuple[PWResult, float]]:
    """The ``count`` most probable pw-results, ties broken lexicographically."""
    items = sorted(distribution.items(), key=lambda kv: (-kv[1], kv[0]))
    return items[:count]
