"""Deterministic top-k over one possible world.

The possible-world semantics (paper Fig. 1(a), Step 2) conceptually
evaluates an ordinary deterministic top-k query inside every possible
world; the result in one world is called a *pw-result*: the world's real
tuples, ordered by rank, truncated to the k best.  Null outcomes rank
below every real tuple, so a world holding fewer than k real tuples
yields a *short* result.
"""

from __future__ import annotations

from typing import Tuple

from repro.db.database import RankedDatabase
from repro.db.possible_worlds import PossibleWorld
from repro.exceptions import InvalidQueryError

#: A pw-result: tuple ids in descending rank order, length <= k.
PWResult = Tuple[str, ...]


def require_valid_k(k: int) -> None:
    """Validate the top-k parameter (must be a positive integer)."""
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise InvalidQueryError(f"k must be a positive integer, got {k!r}")


def topk_of_world(
    ranked: RankedDatabase, world: PossibleWorld, k: int
) -> PWResult:
    """The deterministic top-k result of one possible world.

    Parameters
    ----------
    ranked:
        The pre-sorted database the world was drawn from; supplies the
        total rank order (ranking score descending, insertion-order
        tie-break).
    world:
        The possible world to evaluate.
    k:
        Result size.  Worlds with fewer than ``k`` real tuples produce a
        shorter result (never padded with nulls).

    Returns
    -------
    The ids of the world's best (at most) ``k`` tuples, highest rank
    first.
    """
    require_valid_k(k)
    present = {t.tid for t in world.real_tuples}
    result = []
    for t in ranked.order:
        if t.tid in present:
            result.append(t.tid)
            if len(result) == k:
                break
    return tuple(result)
