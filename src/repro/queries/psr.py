"""PSR: rank-h and top-k probabilities for every tuple in ``O(kn)``.

The paper evaluates U-kRanks, PT-k and Global-topk -- and the TP quality
algorithm -- from *rank probability information*: for each tuple ``t_i``
the probability ``ρ_i(h)`` that it occupies rank ``h`` in a pw-result,
and the top-k probability ``p_i = Σ_{h<=k} ρ_i(h)``.  The PSR algorithm
(Bernecker et al., TKDE 2010; adopted in Section IV-B) computes all of
them in one scan of the rank-sorted tuples.

The recurrence
--------------
Scan tuples in descending rank.  When tuple ``t_i`` of x-tuple ``τ_l``
is reached, each *other* x-tuple ``τ_j`` contributes a tuple ranked
above ``t_i`` independently with probability ``B_j = Σ_{t∈τ_j, t>t_i} e_t``
(mutual exclusion collapses each x-tuple to at most one contribution).
Then

    ρ_i(h) = e_i · Pr[exactly h-1 of the B_j fire],   j ≠ l,

a Poisson-binomial evaluated lazily: we maintain the distribution over
*all* x-tuples seen so far (capped at ``k`` -- only the first ``k``
entries are ever needed, and they stay exact under capping) and divide
out the current x-tuple's own factor.

Backends
--------
Two kernels implement the scan behind a common entry point
(:func:`compute_rank_probabilities`):

* the **python** kernel below -- the scalar reference implementation,
  kept for cross-validation;
* the **numpy** kernel (:mod:`repro.queries.psr_numpy`) -- a columnar
  formulation that keeps the per-tuple state transition as one fused
  array filter and defers all own-factor deconvolutions into a single
  batched post-pass vectorized across tuples.

Both produce a :class:`RankProbabilities` whose canonical storage is a
``(cutoff, k)`` float64 ``rho_prefix`` matrix plus a ``topk_prefix``
vector -- the columnar shape every downstream consumer (query
answering, TP quality, cleaning) reads directly.

Numerical notes
---------------
* Removing a factor ``q`` by the forward deconvolution amplifies error
  by ``q/(1-q)`` per entry, so for ``q > 0.5`` we rebuild the vector
  from scratch over the active factors instead.
* A factor that saturates (``q >= 1-ε``) guarantees one higher-ranked
  tuple; we drop it from the vector and count it in an integer
  ``shift``.  Once ``k`` factors have saturated, every remaining tuple
  has zero top-k probability -- exactly Lemma 2's early stop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.backend import resolve_backend
from repro.db.database import RankedDatabase
from repro.db.tuples import ProbabilisticTuple
from repro.queries.deterministic import require_valid_k

#: Factors within this distance of 1 are treated as saturated.
SATURATION_EPSILON = 1e-12

#: Threshold above which factor removal falls back to a from-scratch
#: rebuild (forward deconvolution is stable only for q <= 1/2).
DECONVOLUTION_LIMIT = 0.5


def _add_factor(dp: List[float], q: float) -> None:
    """Multiply the capped Poisson-binomial vector by a factor ``q``.

    In place; entries ``0..k-1`` remain exact under capping because the
    update only looks at equal-or-lower indices.
    """
    one_minus = 1.0 - q
    for s in range(len(dp) - 1, 0, -1):
        dp[s] = dp[s] * one_minus + dp[s - 1] * q
    dp[0] *= one_minus


def _remove_factor_forward(dp: List[float], q: float) -> List[float]:
    """Divide a factor ``q`` out of the capped vector (stable for q<=1/2)."""
    one_minus = 1.0 - q
    out = [0.0] * len(dp)
    prev = dp[0] / one_minus
    out[0] = prev
    for s in range(1, len(dp)):
        prev = (dp[s] - q * prev) / one_minus
        if prev < 0.0:  # round-off guard; true probabilities are >= 0
            prev = 0.0
        out[s] = prev
    return out


def _rebuild_without(
    active: Dict[int, float], skip: int, k: int
) -> List[float]:
    """Poisson-binomial over all active factors except ``skip``."""
    dp = [0.0] * k
    dp[0] = 1.0
    for l, q in active.items():
        if l != skip:
            _add_factor(dp, q)
    return dp


@dataclass(eq=False)
class RankProbabilities:
    """Rank-probability information for one (database, ranking, k).

    Canonical storage is columnar: ``rho_prefix`` is a ``(cutoff, k)``
    float64 matrix with ``rho_prefix[i, h-1] = ρ(h)`` of the ``i``-th
    ranked tuple, and ``topk_prefix`` the matching top-k probability
    vector.  Tuples at or beyond ``cutoff`` are exactly zero everywhere
    (Lemma 2 fired) and carry no rows.
    """

    k: int
    ranked: RankedDatabase
    cutoff: int
    rho_prefix: np.ndarray
    topk_prefix: np.ndarray
    backend: str = field(default="python")

    def __eq__(self, other: object) -> bool:
        # Array fields need elementwise comparison; the dataclass
        # default would raise on them.
        if not isinstance(other, RankProbabilities):
            return NotImplemented
        return (
            self.k == other.k
            and self.ranked is other.ranked
            and self.cutoff == other.cutoff
            and np.array_equal(self.rho_prefix, other.rho_prefix)
            and np.array_equal(self.topk_prefix, other.topk_prefix)
        )

    def rank_probability(self, tid: str, h: int) -> float:
        """``ρ_i(h)``: probability tuple ``tid`` takes rank ``h`` (1-based)."""
        if not 1 <= h <= self.k:
            raise ValueError(f"rank h must lie in 1..{self.k}, got {h}")
        i = self.ranked.rank_of(tid)
        if i >= self.cutoff:
            return 0.0
        return float(self.rho_prefix[i, h - 1])

    def rho(self, tid: str) -> List[float]:
        """The full vector ``[ρ(1), ..., ρ(k)]`` for tuple ``tid``."""
        i = self.ranked.rank_of(tid)
        if i >= self.cutoff:
            return [0.0] * self.k
        return self.rho_prefix[i].tolist()

    def topk_probability(self, tid: str) -> float:
        """``p_i``: probability tuple ``tid`` appears in a pw-result."""
        i = self.ranked.rank_of(tid)
        if i >= self.cutoff:
            return 0.0
        return float(self.topk_prefix[i])

    def topk_array(self) -> np.ndarray:
        """Top-k probabilities for all ``n`` tuples as a float64 array."""
        full = np.zeros(self.ranked.num_tuples)
        full[: self.cutoff] = self.topk_prefix
        return full

    def topk_probabilities(self) -> List[float]:
        """Top-k probabilities for all tuples, in ranked order."""
        return self.topk_array().tolist()

    def nonzero_tuples(
        self, tolerance: float = 0.0
    ) -> Iterator[Tuple[ProbabilisticTuple, float]]:
        """Yield ``(tuple, p_i)`` for tuples with ``p_i > tolerance``,
        highest rank first."""
        order = self.ranked.order
        for i in np.nonzero(self.topk_prefix > tolerance)[0]:
            yield order[i], float(self.topk_prefix[i])

    def topk_mass_by_xtuple_array(self) -> np.ndarray:
        """``Σ_{t_i∈τ_l} p_i`` per x-tuple as a float64 array."""
        return np.bincount(
            self.ranked.xtuple_indices_array[: self.cutoff],
            weights=self.topk_prefix,
            minlength=self.ranked.num_xtuples,
        )

    def topk_probability_by_xtuple(self) -> List[float]:
        """``Σ_{t_i∈τ_l} p_i`` per x-tuple (database order).

        These per-entity masses drive the RandP cleaning heuristic and,
        combined with the TP weights, the ``g(l, D)`` values of
        Theorem 2.
        """
        return self.topk_mass_by_xtuple_array().tolist()


def member_counts(ranked: RankedDatabase) -> List[int]:
    """Number of ranked tuples per x-tuple (dense x-tuple indexing).

    Both kernels use this to detect when an x-tuple *closes* (its last
    member is scanned): a closed factor never needs removal again, so
    it can be folded into the add-only closed-product base the
    ``q > 1/2`` rebuilds start from.  This keeps rebuilds O(|open|·k)
    -- the open set is just the x-tuples straddling the scan position
    -- instead of O(|seen|·k), which degenerates quadratically on
    incomplete databases where factors never saturate.
    """
    counts = [0] * ranked.num_xtuples
    for l in ranked.xtuple_indices:
        counts[l] += 1
    return counts


def _rebuild_from_base(
    base: List[float], open_masses: Dict[int, float], skip: int
) -> List[float]:
    """Closed-product base times all open factors except ``skip``.

    Saturated open factors are excluded -- they are accounted for by
    the integer ``shift``, never by the vector.
    """
    dp = list(base)
    for l, q in open_masses.items():
        if l != skip and q < 1.0 - SATURATION_EPSILON:
            _add_factor(dp, q)
    return dp


def _compute_rank_probabilities_python(
    ranked: RankedDatabase, k: int
) -> RankProbabilities:
    """The scalar reference kernel (kept for cross-validation)."""
    n = ranked.num_tuples
    probabilities = ranked.probabilities
    xtuple_indices = ranked.xtuple_indices

    remaining = member_counts(ranked)
    open_masses: Dict[int, float] = {}
    closed_dp: List[float] = [0.0] * k
    closed_dp[0] = 1.0
    dp: List[float] = [0.0] * k
    dp[0] = 1.0
    shift = 0

    rho_prefix: List[List[float]] = []
    topk_prefix: List[float] = []
    cutoff = n

    for i in range(n):
        if shift >= k:
            cutoff = i
            break
        e_i = probabilities[i]
        l = xtuple_indices[i]
        q = open_masses.get(l, 0.0)

        if q >= 1.0 - SATURATION_EPSILON:
            # Siblings already exhaust the probability mass: t_i exists
            # with (numerically) zero probability.
            rho_prefix.append([0.0] * k)
            topk_prefix.append(0.0)
            remaining[l] -= 1
            if remaining[l] == 0:
                del open_masses[l]  # saturated: lives in `shift`
            continue

        if q <= 0.0:
            dp_excl = dp
        elif q <= DECONVOLUTION_LIMIT:
            dp_excl = _remove_factor_forward(dp, q)
        else:
            dp_excl = _rebuild_from_base(closed_dp, open_masses, l)

        # ρ_i(h) = e_i * Pr[h-1 higher tuples] ; `shift` saturated
        # x-tuples always contribute one higher tuple each.
        rho_i = [0.0] * k
        p_i = 0.0
        for h in range(1, k + 1):
            s = h - 1 - shift
            if 0 <= s < k:
                value = e_i * dp_excl[s]
                rho_i[h - 1] = value
                p_i += value
        rho_prefix.append(rho_i)
        topk_prefix.append(p_i)

        # Fold t_i's mass into its x-tuple's factor for later tuples.
        # dp_excl is dead after the ρ computation, so mutating it (even
        # when it aliases dp) is safe.
        new_mass = min(1.0, q + e_i)
        saturated = new_mass >= 1.0 - SATURATION_EPSILON
        if saturated:
            shift += 1
            dp = dp_excl
        else:
            dp = dp_excl
            _add_factor(dp, new_mass)
        remaining[l] -= 1
        if remaining[l] == 0:
            open_masses.pop(l, None)
            if not saturated:
                _add_factor(closed_dp, new_mass)
        else:
            open_masses[l] = 1.0 if saturated else new_mass

    rho_matrix = (
        np.array(rho_prefix, dtype=np.float64)
        if rho_prefix
        else np.zeros((0, k))
    )
    return RankProbabilities(
        k=k,
        ranked=ranked,
        cutoff=cutoff,
        rho_prefix=rho_matrix,
        topk_prefix=np.array(topk_prefix, dtype=np.float64),
        backend="python",
    )


def compute_rank_probabilities(
    ranked: RankedDatabase, k: int, backend: Optional[str] = None
) -> RankProbabilities:
    """Run PSR over a pre-sorted database.

    Returns a :class:`RankProbabilities` carrying ``ρ_i(h)`` and ``p_i``
    for every tuple.  Runs in ``O(kn)`` plus rare ``O(A·k)`` rebuilds
    (``A`` = number of x-tuples partially scanned at that point), and
    stops early as soon as ``k`` x-tuples are guaranteed to contribute a
    higher-ranked tuple (Lemma 2).

    ``backend`` picks the kernel (``"numpy"`` or ``"python"``); when
    omitted, the process-wide default from :mod:`repro.core.backend`
    applies.  Both kernels agree within 1e-9 absolute on every entry.
    """
    require_valid_k(k)
    if resolve_backend(backend) == "numpy":
        from repro.queries.psr_numpy import compute_rank_probabilities_numpy

        return compute_rank_probabilities_numpy(ranked, k)
    return _compute_rank_probabilities_python(ranked, k)


def total_topk_mass(rank_probs: RankProbabilities) -> float:
    """``Σ_i p_i`` -- equals ``E[size of a pw-result]``.

    On complete databases (every possible world holds at least ``k``
    real tuples) this is exactly ``k``; the RandP heuristic relies on
    that normalization.
    """
    return math.fsum(rank_probs.topk_prefix.tolist())
