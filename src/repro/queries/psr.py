"""PSR: rank-h and top-k probabilities for every tuple in ``O(kn)``.

The paper evaluates U-kRanks, PT-k and Global-topk -- and the TP quality
algorithm -- from *rank probability information*: for each tuple ``t_i``
the probability ``ρ_i(h)`` that it occupies rank ``h`` in a pw-result,
and the top-k probability ``p_i = Σ_{h<=k} ρ_i(h)``.  The PSR algorithm
(Bernecker et al., TKDE 2010; adopted in Section IV-B) computes all of
them in one scan of the rank-sorted tuples.

The recurrence
--------------
Scan tuples in descending rank.  When tuple ``t_i`` of x-tuple ``τ_l``
is reached, each *other* x-tuple ``τ_j`` contributes a tuple ranked
above ``t_i`` independently with probability ``B_j = Σ_{t∈τ_j, t>t_i} e_t``
(mutual exclusion collapses each x-tuple to at most one contribution).
Then

    ρ_i(h) = e_i · Pr[exactly h-1 of the B_j fire],   j ≠ l,

a Poisson-binomial evaluated lazily: we maintain the distribution over
*all* x-tuples seen so far (capped at ``k`` -- only the first ``k``
entries are ever needed, and they stay exact under capping) and divide
out the current x-tuple's own factor.

Backends
--------
Three kernels implement the scan behind a common entry point
(:func:`compute_rank_probabilities`):

* the **python** kernel below -- the scalar reference implementation,
  kept for cross-validation;
* the **numpy** kernel (:mod:`repro.queries.psr_numpy`) -- a columnar
  formulation that keeps the per-tuple state transition as one fused
  array filter and defers all own-factor deconvolutions into a single
  batched post-pass vectorized across tuples;
* the **parallel** kernel (:mod:`repro.core.parallel`) -- the ranked
  rows sharded into contiguous blocks scanned by a process pool over
  shared-memory column views, block boundary states derived by a
  truncated-convolution prefix scan at the coordinator.

All produce a :class:`RankProbabilities` whose canonical storage is a
``(cutoff, k)`` float64 ``rho_prefix`` matrix plus a ``topk_prefix``
vector -- the columnar shape every downstream consumer (query
answering, TP quality, cleaning) reads directly.

Numerical notes
---------------
* Removing a factor ``q`` by the forward deconvolution amplifies error
  by ``q/(1-q)`` per entry, so for ``q > 0.5`` we rebuild the vector
  from scratch over the active factors instead.
* A factor that saturates (``q >= 1-ε``) guarantees one higher-ranked
  tuple; we drop it from the vector and count it in an integer
  ``shift``.  Once ``k`` factors have saturated, every remaining tuple
  has zero top-k probability -- exactly Lemma 2's early stop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.core.backend import resolve_backend
from repro.db.database import SATURATION_EPSILON, RankDelta, RankedDatabase
from repro.db.tuples import ProbabilisticTuple
from repro.queries.deterministic import require_valid_k

#: Threshold above which factor removal falls back to a from-scratch
#: rebuild (forward deconvolution is stable only for q <= 1/2).
DECONVOLUTION_LIMIT = 0.5

#: Both kernels snapshot their scan state every this many rows.  A
#: delta re-evaluation restores the nearest checkpoint at or above the
#: affected window and replays at most this many rows to reach it,
#: instead of rescanning from the top.  Storage is O(n/interval · k);
#: the interval trades that (and a ~1% recording overhead on the full
#: pass) against the per-delta replay length.
CHECKPOINT_INTERVAL = 64


def _fast_forward(
    probabilities: List[float],
    xtuple_indices: List[int],
    k: int,
    open_masses: Dict[int, float],
    closed_dp: List[float],
    shift: int,
    remaining: List[int],
    stop: int,
    row: int,
    base: int,
) -> int:
    """Advance only the factor state from ``row`` to ``stop``.

    The replay from a checkpoint to a delta window never emits rows,
    so it does not need the running Poisson-binomial product at all --
    just the open-mass dict, the closed product (``closed_dp`` may be a
    list or an ndarray; folds go through the caller-supplied closure
    semantics below) and the saturation shift.  The caller rebuilds its
    product representation from ``open_masses`` once at ``stop``.
    Returns the new ``shift``.
    """
    is_array = isinstance(closed_dp, np.ndarray)
    for i in range(row, stop):
        l = xtuple_indices[i - base]
        q = open_masses.get(l, 0.0)
        if q >= 1.0 - SATURATION_EPSILON:
            remaining[l] -= 1
            if remaining[l] == 0:
                del open_masses[l]
            continue
        new_mass = q + probabilities[i - base]
        if new_mass > 1.0:
            new_mass = 1.0
        saturating = new_mass >= 1.0 - SATURATION_EPSILON
        remaining[l] -= 1
        closing = remaining[l] == 0
        if saturating:
            shift += 1
            if shift >= k:
                # Lemma 2 fired inside the replay range: the caller's
                # window starts at or below the new cutoff, nothing
                # will be emitted anyway.
                return shift
        elif closing:
            if is_array:
                shifted = closed_dp[:-1] * new_mass
                closed_dp *= 1.0 - new_mass
                closed_dp[1:] += shifted
            else:
                _add_factor(closed_dp, new_mass)
        if closing:
            open_masses.pop(l, None)
        else:
            open_masses[l] = 1.0 if saturating else new_mass
    return shift


@dataclass(frozen=True)
class ScanCheckpoint:
    """PSR scan state at the top of row ``row`` (before processing it).

    ``closed_dp`` is the capped product over factors of closed,
    non-saturated x-tuples; ``open_masses`` maps dense x-tuple indices
    of partially scanned x-tuples to their accumulated mass (saturated
    entries hold exactly 1.0 and are accounted for by ``shift``).  The
    remaining per-x-tuple member counts are *not* stored -- they are an
    O(n) ``bincount`` over the suffix at restore time.  Checkpoints are
    value objects shared across patched :class:`RankProbabilities`
    instances; never mutate their arrays.
    """

    row: int
    shift: int
    closed_dp: np.ndarray
    open_masses: Dict[int, float]


def _add_factor(dp: List[float], q: float) -> None:
    """Multiply the capped Poisson-binomial vector by a factor ``q``.

    In place; entries ``0..k-1`` remain exact under capping because the
    update only looks at equal-or-lower indices.
    """
    one_minus = 1.0 - q
    for s in range(len(dp) - 1, 0, -1):
        dp[s] = dp[s] * one_minus + dp[s - 1] * q
    dp[0] *= one_minus


def _remove_factor_forward(dp: List[float], q: float) -> List[float]:
    """Divide a factor ``q`` out of the capped vector (stable for q<=1/2)."""
    one_minus = 1.0 - q
    out = [0.0] * len(dp)
    prev = dp[0] / one_minus
    out[0] = prev
    for s in range(1, len(dp)):
        prev = (dp[s] - q * prev) / one_minus
        if prev < 0.0:  # round-off guard; true probabilities are >= 0
            prev = 0.0
        out[s] = prev
    return out


def _rebuild_without(
    active: Dict[int, float], skip: int, k: int
) -> List[float]:
    """Poisson-binomial over all active factors except ``skip``."""
    dp = [0.0] * k
    dp[0] = 1.0
    for l, q in active.items():
        if l != skip:
            _add_factor(dp, q)
    return dp


class _WindowRhoLike(Protocol):
    """A deferred ρ window: anything that materializes to a matrix.

    The numpy kernel's ``_WindowRho`` satisfies this without psr.py
    importing :mod:`repro.queries.psr_numpy` (which imports this
    module).
    """

    def materialize(self) -> np.ndarray: ...


class _PendingRho:
    """A deferred splice of a ρ matrix after a rank delta.

    Nothing on the cleaning hot path reads full ρ rows -- quality and
    the cleaning inputs consume ``topk_prefix`` -- so a patched
    :class:`RankProbabilities` records *how* its matrix derives from
    its parent's (prefix rows, re-scanned window rows, reused tail
    rows) and materializes only when a query answer actually asks.
    Holds the parent's ρ state (an ndarray or another pending splice),
    never the parent object, so intermediate snapshots stay
    collectable.
    """

    __slots__ = ("parent", "prefix_end", "window", "tail")

    def __init__(
        self,
        parent: Union[np.ndarray, "_PendingRho"],
        prefix_end: int,
        window: "Union[np.ndarray, _WindowRhoLike]",
        tail: Optional[Tuple[int, int]],
    ) -> None:
        self.parent = parent
        self.prefix_end = prefix_end
        self.window = window
        #: ``(start, end)`` rows of the parent matrix, or ``None``.
        self.tail = tail

    def materialize(self) -> np.ndarray:
        chain = [self]
        parent = self.parent
        while isinstance(parent, _PendingRho):
            chain.append(parent)
            parent = parent.parent
        rho = parent
        for pending in reversed(chain):
            window = pending.window
            if not isinstance(window, np.ndarray):
                window = window.materialize()
            parts = [rho[: pending.prefix_end], window]
            if pending.tail is not None:
                parts.append(rho[pending.tail[0] : pending.tail[1]])
            rho = np.vstack(parts)
        return rho


class RankProbabilities:
    """Rank-probability information for one (database, ranking, k).

    Canonical storage is columnar: ``rho_prefix`` is a ``(cutoff, k)``
    float64 matrix with ``rho_prefix[i, h-1] = ρ(h)`` of the ``i``-th
    ranked tuple, and ``topk_prefix`` the matching top-k probability
    vector.  Tuples at or beyond ``cutoff`` are exactly zero everywhere
    (Lemma 2 fired) and carry no rows.  After a delta derivation the
    matrix may be pending (see :class:`_PendingRho`); it materializes
    transparently on first access.
    """

    def __init__(
        self,
        k: int,
        ranked: RankedDatabase,
        cutoff: int,
        rho_prefix: Union[np.ndarray, _PendingRho],
        topk_prefix: np.ndarray,
        backend: str = "python",
        checkpoints: Optional[List[ScanCheckpoint]] = None,
    ) -> None:
        self.k = k
        self.ranked = ranked
        self.cutoff = cutoff
        self._rho_state = rho_prefix
        self.topk_prefix = topk_prefix
        self.backend = backend
        #: Scan-state snapshots enabling O(window) delta re-evaluation
        #: (see :func:`apply_rank_delta`); ``None`` on legacy
        #: construction.
        self.checkpoints = checkpoints
        #: Execution report of the parallel backend (worker count,
        #: block count, pool-vs-serial mode, fallback reason); ``None``
        #: for results the serial kernels produced.
        self.parallel_info: Optional[Dict[str, object]] = None

    @property
    def rho_prefix(self) -> np.ndarray:
        """The ``(cutoff, k)`` ρ matrix (materialized lazily)."""
        if isinstance(self._rho_state, _PendingRho):
            self._rho_state = self._rho_state.materialize()
        return self._rho_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RankProbabilities k={self.k} cutoff={self.cutoff} "
            f"backend={self.backend!r}>"
        )

    def __eq__(self, other: object) -> bool:
        # Array fields need elementwise comparison; the dataclass
        # default would raise on them.
        if not isinstance(other, RankProbabilities):
            return NotImplemented
        return (
            self.k == other.k
            and self.ranked is other.ranked
            and self.cutoff == other.cutoff
            and np.array_equal(self.rho_prefix, other.rho_prefix)
            and np.array_equal(self.topk_prefix, other.topk_prefix)
        )

    def restricted_to(self, k: int) -> "RankProbabilities":
        """This PSR result viewed at a smaller ``k`` -- no new pass.

        ``ρ_i(h)`` does not depend on the query's ``k`` (it is the
        probability that exactly ``h - 1`` higher-ranked real tuples
        precede ``t_i``); ``k`` only decides how many columns the scan
        emits and where Lemma 2 truncates it.  A pass at ``k_max``
        therefore contains every smaller-``k`` result as a column
        prefix: slice the first ``k`` columns of ``rho_prefix`` and
        re-sum the top-k vector.  This is what lets a batch of queries
        at mixed ``k`` share **one** PSR pass at the maximum ``k``
        (:meth:`repro.queries.engine.QuerySession.prefill`).

        The restricted result keeps this result's ``cutoff``; rows a
        direct ``k``-pass would have truncated earlier are all-zero in
        the sliced columns, so every derived answer is identical.
        Scan checkpoints are not carried over (they snapshot ``k_max``
        column state), so delta-patching a restricted result falls back
        to a window re-scan from the top.
        """
        if k == self.k:
            return self
        if not 1 <= k < self.k:
            raise ValueError(
                f"can only restrict to 1 <= k < {self.k}, got {k}"
            )
        rho = np.ascontiguousarray(self.rho_prefix[:, :k])
        return RankProbabilities(
            k=k,
            ranked=self.ranked,
            cutoff=self.cutoff,
            rho_prefix=rho,
            topk_prefix=rho.sum(axis=1),
            backend=self.backend,
            checkpoints=None,
        )

    def rank_probability(self, tid: str, h: int) -> float:
        """``ρ_i(h)``: probability tuple ``tid`` takes rank ``h`` (1-based)."""
        if not 1 <= h <= self.k:
            raise ValueError(f"rank h must lie in 1..{self.k}, got {h}")
        i = self.ranked.rank_of(tid)
        if i >= self.cutoff:
            return 0.0
        return float(self.rho_prefix[i, h - 1])

    def rho(self, tid: str) -> List[float]:
        """The full vector ``[ρ(1), ..., ρ(k)]`` for tuple ``tid``."""
        i = self.ranked.rank_of(tid)
        if i >= self.cutoff:
            return [0.0] * self.k
        return self.rho_prefix[i].tolist()

    def topk_probability(self, tid: str) -> float:
        """``p_i``: probability tuple ``tid`` appears in a pw-result."""
        i = self.ranked.rank_of(tid)
        if i >= self.cutoff:
            return 0.0
        return float(self.topk_prefix[i])

    def topk_array(self) -> np.ndarray:
        """Top-k probabilities for all ``n`` tuples as a float64 array."""
        full = np.zeros(self.ranked.num_tuples)
        full[: self.cutoff] = self.topk_prefix
        return full

    def topk_probabilities(self) -> List[float]:
        """Top-k probabilities for all tuples, in ranked order."""
        return self.topk_array().tolist()

    def nonzero_tuples(
        self, tolerance: float = 0.0
    ) -> Iterator[Tuple[ProbabilisticTuple, float]]:
        """Yield ``(tuple, p_i)`` for tuples with ``p_i > tolerance``,
        highest rank first."""
        order = self.ranked.order
        for i in np.nonzero(self.topk_prefix > tolerance)[0]:
            yield order[i], float(self.topk_prefix[i])

    def topk_mass_by_xtuple_array(self) -> np.ndarray:
        """``Σ_{t_i∈τ_l} p_i`` per x-tuple as a float64 array."""
        return np.bincount(
            self.ranked.xtuple_indices_array[: self.cutoff],
            weights=self.topk_prefix,
            minlength=self.ranked.num_xtuples,
        )

    def topk_probability_by_xtuple(self) -> List[float]:
        """``Σ_{t_i∈τ_l} p_i`` per x-tuple (database order).

        These per-entity masses drive the RandP cleaning heuristic and,
        combined with the TP weights, the ``g(l, D)`` values of
        Theorem 2.
        """
        return self.topk_mass_by_xtuple_array().tolist()


def _rebuild_from_base(
    base: List[float], open_masses: Dict[int, float], skip: int
) -> List[float]:
    """Closed-product base times all open factors except ``skip``.

    Saturated open factors are excluded -- they are accounted for by
    the integer ``shift``, never by the vector.
    """
    dp = list(base)
    for l, q in open_masses.items():
        if l != skip and q < 1.0 - SATURATION_EPSILON:
            _add_factor(dp, q)
    return dp


class _PythonScanState:
    """Mutable scan state of the scalar kernel (resumable mid-stream)."""

    __slots__ = ("row", "shift", "open_masses", "closed_dp", "dp", "remaining")

    def __init__(
        self,
        row: int,
        shift: int,
        open_masses: Dict[int, float],
        closed_dp: List[float],
        dp: Optional[List[float]],
        remaining: List[int],
    ) -> None:
        self.row = row
        self.shift = shift
        self.open_masses = open_masses
        self.closed_dp = closed_dp
        self.dp = dp
        self.remaining = remaining


def _python_state(
    ranked: RankedDatabase,
    k: int,
    checkpoint: Optional[ScanCheckpoint],
    defer_product: bool = False,
) -> _PythonScanState:
    """Scan state at a checkpoint (or the initial state for ``None``).

    ``defer_product`` skips building the running product ``dp`` -- the
    fast-forward path maintains only the factor state and rebuilds the
    product once it reaches the window.
    """
    if checkpoint is None:
        row, shift = 0, 0
        closed_dp = [0.0] * k
        closed_dp[0] = 1.0
        open_masses: Dict[int, float] = {}
    else:
        row, shift = checkpoint.row, checkpoint.shift
        closed_dp = checkpoint.closed_dp.tolist()
        open_masses = dict(checkpoint.open_masses)
    remaining = np.bincount(
        ranked.xtuple_indices_array[row:], minlength=ranked.num_xtuples
    ).tolist()
    dp = (
        None
        if defer_product
        else _rebuild_from_base(closed_dp, open_masses, -1)
    )
    return _PythonScanState(row, shift, open_masses, closed_dp, dp, remaining)


def _scan_python(
    probabilities: List[float],
    xtuple_indices: List[int],
    k: int,
    st: _PythonScanState,
    stop: int,
    rho_out: Optional[List[List[float]]],
    topk_out: Optional[List[float]],
    checkpoints: Optional[List[ScanCheckpoint]],
    base: int = 0,
) -> int:
    """Advance the scalar scan from ``st.row`` to ``stop``.

    Emits ρ rows / top-k values when the output lists are given
    (``None`` = state-transition-only replay).  Returns the row where
    Lemma 2's early stop fired, or ``stop``.  The input lists hold rows
    ``base ..`` (delta windows pass a slice instead of materializing
    the whole column).
    """
    open_masses = st.open_masses
    remaining = st.remaining
    shift = st.shift
    closed_dp = st.closed_dp
    dp = st.dp
    i = st.row
    next_ck = max(
        CHECKPOINT_INTERVAL,
        ((i + CHECKPOINT_INTERVAL - 1) // CHECKPOINT_INTERVAL)
        * CHECKPOINT_INTERVAL,
    )
    while i < stop:
        if shift >= k:
            break
        if checkpoints is not None and i == next_ck:
            checkpoints.append(
                ScanCheckpoint(
                    row=i,
                    shift=shift,
                    closed_dp=np.array(closed_dp, dtype=np.float64),
                    open_masses=dict(open_masses),
                )
            )
        if i >= next_ck:
            next_ck += CHECKPOINT_INTERVAL
        e_i = probabilities[i - base]
        l = xtuple_indices[i - base]
        q = open_masses.get(l, 0.0)

        if q >= 1.0 - SATURATION_EPSILON:
            # Siblings already exhaust the probability mass: t_i exists
            # with (numerically) zero probability.
            if rho_out is not None:
                rho_out.append([0.0] * k)
                topk_out.append(0.0)
            remaining[l] -= 1
            if remaining[l] == 0:
                del open_masses[l]  # saturated: lives in `shift`
            i += 1
            continue

        if q <= 0.0:
            dp_excl = dp
        elif q <= DECONVOLUTION_LIMIT:
            dp_excl = _remove_factor_forward(dp, q)
        else:
            dp_excl = _rebuild_from_base(closed_dp, open_masses, l)

        if rho_out is not None:
            # ρ_i(h) = e_i * Pr[h-1 higher tuples] ; `shift` saturated
            # x-tuples always contribute one higher tuple each.
            rho_i = [0.0] * k
            p_i = 0.0
            for h in range(1, k + 1):
                s = h - 1 - shift
                if 0 <= s < k:
                    value = e_i * dp_excl[s]
                    rho_i[h - 1] = value
                    p_i += value
            rho_out.append(rho_i)
            topk_out.append(p_i)

        # Fold t_i's mass into its x-tuple's factor for later tuples.
        # dp_excl is dead after the ρ computation, so mutating it (even
        # when it aliases dp) is safe.
        new_mass = min(1.0, q + e_i)
        saturated = new_mass >= 1.0 - SATURATION_EPSILON
        if saturated:
            shift += 1
            dp = dp_excl
        else:
            dp = dp_excl
            _add_factor(dp, new_mass)
        remaining[l] -= 1
        if remaining[l] == 0:
            open_masses.pop(l, None)
            if not saturated:
                _add_factor(closed_dp, new_mass)
        else:
            open_masses[l] = 1.0 if saturated else new_mass
        i += 1

    st.row = i
    st.shift = shift
    st.dp = dp
    return i


def resume_window_state(
    st: _PythonScanState,
    new_ranked: RankedDatabase,
    k: int,
    start: int,
    stop: int,
) -> Tuple[List[float], List[int], int]:
    """Fast-forward a restored scan state to a delta window's start.

    Shared by both backends' delta windows: slices the columns to the
    rows the resume actually touches, advances the factor state from
    the checkpoint row to ``start`` (no product maintenance -- the
    caller rebuilds its product representation from ``st.open_masses``
    afterwards), and returns ``(probabilities, xtuple_indices, base)``
    for the subsequent window scan.
    """
    base = st.row
    probabilities = new_ranked.probabilities_array[base:stop].tolist()
    xtuple_indices = new_ranked.xtuple_indices_array[base:stop].tolist()
    st.shift = _fast_forward(
        probabilities,
        xtuple_indices,
        k,
        st.open_masses,
        st.closed_dp,
        st.shift,
        st.remaining,
        start,
        st.row,
        base,
    )
    st.row = start
    return probabilities, xtuple_indices, base


def nearest_checkpoint(
    checkpoints: List[ScanCheckpoint], row: int
) -> Optional[ScanCheckpoint]:
    """The latest checkpoint at or above ``row`` (``None`` = scan top)."""
    best = None
    for ck in checkpoints:
        if ck.row <= row and (best is None or ck.row > best.row):
            best = ck
    return best


def _compute_rank_probabilities_python(
    ranked: RankedDatabase, k: int
) -> RankProbabilities:
    """The scalar reference kernel (kept for cross-validation)."""
    n = ranked.num_tuples
    st = _python_state(ranked, k, None)
    rho_prefix: List[List[float]] = []
    topk_prefix: List[float] = []
    checkpoints: List[ScanCheckpoint] = []
    cutoff = _scan_python(
        ranked.probabilities,
        ranked.xtuple_indices,
        k,
        st,
        n,
        rho_prefix,
        topk_prefix,
        checkpoints,
    )

    rho_matrix = (
        np.array(rho_prefix, dtype=np.float64)
        if rho_prefix
        else np.zeros((0, k))
    )
    return RankProbabilities(
        k=k,
        ranked=ranked,
        cutoff=cutoff,
        rho_prefix=rho_matrix,
        topk_prefix=np.array(topk_prefix, dtype=np.float64),
        backend="python",
        checkpoints=checkpoints,
    )


def _delta_window_python(
    old_rp: RankProbabilities,
    delta: RankDelta,
    start: int,
    stop: int,
    checkpoints: List[ScanCheckpoint],
) -> Tuple[np.ndarray, np.ndarray, int, List[ScanCheckpoint]]:
    """Re-emit rows ``[start, stop)`` of the patched view (scalar)."""
    new_ranked = delta.new_ranked
    k = old_rp.k
    st = _python_state(
        new_ranked, k, nearest_checkpoint(checkpoints, start),
        defer_product=True,
    )
    probabilities, xtuple_indices, base = resume_window_state(
        st, new_ranked, k, start, stop
    )
    st.dp = _rebuild_from_base(st.closed_dp, st.open_masses, -1)
    rho_rows: List[List[float]] = []
    topk_rows: List[float] = []
    fresh: List[ScanCheckpoint] = []
    end = _scan_python(
        probabilities,
        xtuple_indices,
        k,
        st,
        stop,
        rho_rows,
        topk_rows,
        fresh,
        base,
    )
    rho = (
        np.array(rho_rows, dtype=np.float64)
        if rho_rows
        else np.zeros((0, k))
    )
    return rho, np.array(topk_rows, dtype=np.float64), end, fresh


def compute_rank_probabilities(
    ranked: RankedDatabase,
    k: int,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> RankProbabilities:
    """Run PSR over a pre-sorted database.

    Returns a :class:`RankProbabilities` carrying ``ρ_i(h)`` and ``p_i``
    for every tuple.  Runs in ``O(kn)`` plus rare ``O(A·k)`` rebuilds
    (``A`` = number of x-tuples partially scanned at that point), and
    stops early as soon as ``k`` x-tuples are guaranteed to contribute a
    higher-ranked tuple (Lemma 2).

    ``backend`` picks the kernel (``"numpy"``, ``"python"`` or
    ``"parallel"``); when omitted, the process-wide default from
    :mod:`repro.core.backend` applies.  ``workers`` sizes the parallel
    backend's process pool (ignored by the serial kernels); when
    omitted it resolves per :func:`repro.core.parallel.resolve_workers`.
    All backends agree within 1e-9 absolute on every entry.
    """
    require_valid_k(k)
    resolved = resolve_backend(backend)
    if resolved == "parallel":
        from repro.core.parallel import compute_rank_probabilities_parallel

        return compute_rank_probabilities_parallel(ranked, k, workers=workers)
    if resolved == "numpy":
        from repro.queries.psr_numpy import compute_rank_probabilities_numpy

        return compute_rank_probabilities_numpy(ranked, k)
    return _compute_rank_probabilities_python(ranked, k)


def _remap_checkpoint(ck: ScanCheckpoint, delta: RankDelta, row: int) -> ScanCheckpoint:
    """A checkpoint re-expressed in the patched view's coordinates.

    Rows move by the delta's offset below the window; on a removal the
    dense x-tuple indices above the vacated slot shift down by one.
    The ``closed_dp`` array is shared -- checkpoints are immutable.
    """
    if delta.new_index is None:
        masses = {
            delta.map_xtuple_index(l): q for l, q in ck.open_masses.items()
        }
    else:
        masses = ck.open_masses
    if row == ck.row and masses is ck.open_masses:
        return ck
    return ScanCheckpoint(
        row=row, shift=ck.shift, closed_dp=ck.closed_dp, open_masses=masses
    )


def apply_rank_delta(
    old_rp: RankProbabilities,
    delta: RankDelta,
    backend: Optional[str] = None,
) -> RankProbabilities:
    """PSR output for the patched view, from the old output + delta.

    Rows above the delta's window and below its tail are carried over
    verbatim; only the window ``[window_start, tail)`` is re-scanned,
    starting from the nearest stored :class:`ScanCheckpoint` (at most
    ``CHECKPOINT_INTERVAL`` replay rows away) -- O(n) array splicing
    plus O(k·window) kernel work instead of a fresh O(kn) pass.  When
    the swapped x-tuple never saturates (incomplete entities, outright
    removal) there is no tail and the re-scan runs from the window to
    the bottom; the prefix and checkpoint fast-forward still apply.

    Agrees with a from-scratch pass over the patched view within the
    backends' usual 1e-9 (exercised by ``tests/test_delta_engine.py``).
    """
    if delta.old_ranked is not old_rp.ranked:
        raise ValueError(
            "delta was derived from a different ranked view than the "
            "rank probabilities being patched"
        )
    resolved = resolve_backend(backend if backend is not None else old_rp.backend)
    k = old_rp.k
    new_ranked = delta.new_ranked
    start = delta.window_start
    prefix_ckpts = [
        _remap_checkpoint(ck, delta, ck.row)
        for ck in (old_rp.checkpoints or [])
        if ck.row <= min(start, old_rp.cutoff)
    ]

    if old_rp.cutoff <= start:
        # The old scan early-stopped above the affected window; the
        # patched view's scan is bitwise identical up to that point and
        # stops at the same row.
        return RankProbabilities(
            k=k,
            ranked=new_ranked,
            cutoff=old_rp.cutoff,
            rho_prefix=old_rp._rho_state,
            topk_prefix=old_rp.topk_prefix,
            backend=resolved,
            checkpoints=prefix_ckpts,
        )

    tail_old, tail_new = delta.tail_old, delta.tail_new
    if tail_old is not None and old_rp.cutoff < tail_old:
        # The old pass never reached the equalization point; nothing
        # below the window exists to reuse.
        tail_old = tail_new = None
    stop = tail_new if tail_new is not None else new_ranked.num_tuples

    if resolved != "python":
        # The numpy window kernel also serves "parallel" results: their
        # checkpoints sit on block boundaries, so the replay restores
        # the nearest boundary state and re-runs at most one block's
        # worth of rows through the serial columnar scan.
        from repro.queries.psr_numpy import _delta_window_numpy

        window = _delta_window_numpy(old_rp, delta, start, stop, prefix_ckpts)
    else:
        window = _delta_window_python(old_rp, delta, start, stop, prefix_ckpts)
    window_rho, window_topk, end, fresh_ckpts = window

    prefix_topk = old_rp.topk_prefix[:start]
    if end < stop or tail_new is None:
        cutoff = end
        rho = _PendingRho(old_rp._rho_state, start, window_rho, None)
        topk = np.concatenate([prefix_topk, window_topk])
        checkpoints = prefix_ckpts + fresh_ckpts
    else:
        offset = delta.row_offset
        cutoff = old_rp.cutoff + offset
        rho = _PendingRho(
            old_rp._rho_state, start, window_rho, (tail_old, old_rp.cutoff)
        )
        topk = np.concatenate(
            [
                prefix_topk,
                window_topk,
                old_rp.topk_prefix[tail_old : old_rp.cutoff],
            ]
        )
        tail_ckpts = [
            _remap_checkpoint(ck, delta, ck.row + offset)
            for ck in (old_rp.checkpoints or [])
            if ck.row >= tail_old
        ]
        checkpoints = prefix_ckpts + fresh_ckpts + tail_ckpts
    return RankProbabilities(
        k=k,
        ranked=new_ranked,
        cutoff=cutoff,
        rho_prefix=rho,
        topk_prefix=topk,
        backend=resolved,
        checkpoints=checkpoints,
    )


def total_topk_mass(rank_probs: RankProbabilities) -> float:
    """``Σ_i p_i`` -- equals ``E[size of a pw-result]``.

    On complete databases (every possible world holds at least ``k``
    real tuples) this is exactly ``k``; the RandP heuristic relies on
    that normalization.
    """
    return math.fsum(rank_probs.topk_prefix.tolist())
