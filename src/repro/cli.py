"""Command-line interface: ``python -m repro <command>``.

Every data-path command is a thin wrapper over the
:class:`~repro.api.service.TopKService` façade: flags are parsed into
the declarative request specs of :mod:`repro.api.specs`, the service
answers with a :class:`~repro.api.results.ServiceResult`, and the
human-readable summary is printed from the result payload.  With
``--json PATH`` the full wire envelope (spec + result + enough context
to chain commands) is written too, so CLI invocations compose:
``repro query --json q.json`` followed by ``repro clean --from q.json``
re-targets the same database, ranking and ``k``.

Commands:

``generate``
    Produce a synthetic or simulated-MOV probabilistic database as a
    JSON file (Section VI workloads).
``quality``
    Compute the PWS-quality of a top-k query over a database file with
    any of the four algorithms.
``query``
    Answer a U-kRanks / PT-k / Global-topk query (plus the quality,
    shared from the same PSR pass).
``clean``
    Plan budgeted cleaning with DP / Greedy / RandP / RandU, report the
    expected improvement, optionally simulate execution and write the
    cleaned database.
``store``
    Inspect and maintain a snapshot store directory.  ``status`` (the
    default action, read-only next to a live writer) reports recovered
    snapshots, journal backlog and bytes, segment bytes, tombstones,
    the cross-process lock holder, quarantined files and counters;
    ``compact`` checkpoints the write-ahead journal; ``gc`` applies a
    ``--keep-last-n`` / ``--pin`` retention policy through the store's
    two-phase delete; ``unlock --force`` clears a stale lock record
    left by a dead writer.

``quality`` / ``query`` / ``clean`` accept ``--store DIR`` to serve
over a crash-safe :class:`~repro.store.SnapshotStore`: snapshots are
persisted durably, cleaning outcomes are journaled before they are
published, and a restart of the CLI over the same directory recovers
them (see the README's "Durability & crash recovery" section).

Costs and sc-probabilities for ``clean`` are either generated from
seeds (matching the paper's experimental setup) or read from a JSON
mapping ``{xtuple_id: value}``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.api.results import ServiceResult
from repro.api.service import TopKService
from repro.api.specs import PLANNERS, CleaningSpec, QualitySpec, QuerySpec
from repro.core.quality import METHODS
from repro.exceptions import ReproError
from repro.datasets.mov import generate_mov
from repro.datasets.synthetic import generate_synthetic
from repro.db import io
from repro.db.ranking import RankingFunction, by_sum_of_keys, by_value


def _ranking_for(name: str) -> RankingFunction:
    if name == "value":
        return by_value()
    if name == "mov":
        return by_sum_of_keys("date", "rating")
    raise SystemExit(f"unknown ranking {name!r}; pick 'value' or 'mov'")


def _load_mapping(path: Optional[str]) -> Optional[Dict[str, Any]]:
    if path is None:
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def _service_for(
    db_path: str, ranking_name: str, store_dir: Optional[str] = None
) -> Tuple[TopKService, str]:
    """A one-shot service with the database file registered.

    With ``store_dir`` the service opens a durable
    :class:`~repro.store.SnapshotStore` there first -- recovering any
    previously persisted snapshots and replaying the cleaning journal
    -- and registration persists the database before publishing it.
    """
    service = TopKService(
        ranking=_ranking_for(ranking_name), store_dir=store_dir
    )
    snapshot_id = service.register(io.load_json(db_path)).snapshot_id
    return service, snapshot_id


def _write_envelope(
    path: Optional[str],
    command: str,
    result: ServiceResult,
    db_path: str,
    ranking: str,
) -> None:
    """Write the JSON-out envelope chaining commands together."""
    if path is None:
        return
    envelope = {
        "command": command,
        "db": str(db_path),
        "ranking": ranking,
        "result": result.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(envelope, f, indent=2)
        f.write("\n")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a workload database to JSON."""
    if args.kind == "synthetic":
        db = generate_synthetic(
            num_xtuples=args.xtuples,
            sigma=args.sigma,
            uncertainty=args.uncertainty,
            seed=args.seed,
        )
        ranking_name = "value"
    else:
        db = generate_mov(num_xtuples=args.xtuples, seed=args.seed)
        ranking_name = "mov"
    io.save_json(db, args.output)
    print(
        f"wrote {db.num_xtuples} x-tuples / {db.num_tuples} tuples "
        f"({db.name}) to {args.output}"
    )
    if args.json is not None:
        # Register under the ranking matching the workload (mov values
        # are mappings; by-value would not even rank them) and record
        # it in the envelope so chained commands inherit it.
        service = TopKService(ranking=_ranking_for(ranking_name))
        result = service.register(db)
        _write_envelope(
            args.json, "generate", result, args.output, ranking_name
        )
    return 0


def cmd_quality(args: argparse.Namespace) -> int:
    """``repro quality``: score a top-k query's ambiguity."""
    service, snapshot_id = _service_for(args.db, args.ranking, args.store)
    spec = QualitySpec(
        k=args.k,
        method=args.method,
        samples=args.samples,
        deadline_ms=args.deadline_ms,
    )
    result = service.quality(snapshot_id, spec)
    payload = result.payload
    print(f"PWS-quality (k={args.k}, {args.method}): {payload['quality']:.6f}")
    if "num_results" in payload:
        print(f"distinct pw-results: {payload['num_results']}")
    _write_envelope(args.json, "quality", result, args.db, args.ranking)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: answer the probabilistic top-k semantics."""
    service, snapshot_id = _service_for(args.db, args.ranking, args.store)
    spec = QuerySpec(
        k=args.k,
        semantics=args.semantics,
        threshold=args.threshold,
        deadline_ms=args.deadline_ms,
    )
    result = service.query(snapshot_id, spec)
    payload = result.payload
    if args.semantics in ("ptk", "all"):
        tids = [tid for tid, _ in payload["ptk"]["members"]]
        print(f"PT-{args.k} (T={args.threshold}): {tids}")
    if args.semantics in ("ukranks", "all"):
        winners = [
            (w["rank"], w["tid"], round(w["probability"], 4))
            for w in payload["ukranks"]["winners"]
        ]
        print(f"U-kRanks: {winners}")
    if args.semantics in ("global-topk", "all"):
        tids = [tid for tid, _ in payload["global_topk"]["members"]]
        print(f"Global-top{args.k}: {tids}")
    quality = payload.get("quality")
    if quality is None:
        # Costs nothing extra: the semantics above warmed the session's
        # PSR cache at this k.
        quality = service.quality(snapshot_id, QualitySpec(k=args.k)).payload[
            "quality"
        ]
    print(f"PWS-quality: {quality:.6f}")
    _write_envelope(args.json, "query", result, args.db, args.ranking)
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    """``repro clean``: plan (and optionally simulate) cleaning."""
    db_path, ranking_name, k = args.db, args.ranking, args.k
    if args.from_json is not None:
        with open(args.from_json, "r", encoding="utf-8") as f:
            envelope = json.load(f)
        db_path = db_path or envelope.get("db")
        if ranking_name is None:
            ranking_name = envelope.get("ranking")
        upstream_spec = envelope.get("result", {}).get("spec") or {}
        if k is None:
            k = upstream_spec.get("k")
    if db_path is None:
        raise SystemExit("clean needs --db (or --from with a db path)")
    if ranking_name is None:
        ranking_name = "value"
    if k is None:
        k = 15
    service, snapshot_id = _service_for(db_path, ranking_name, args.store)
    execute = bool(args.execute or args.output)
    spec = CleaningSpec(
        k=k,
        budget=args.budget,
        planner=args.planner,
        costs=_load_mapping(args.costs),
        sc_probabilities=_load_mapping(args.sc),
        cost_seed=args.costs_seed,
        sc_seed=args.sc_seed,
        execute=execute,
        seed=args.execute_seed,
        deadline_ms=args.deadline_ms,
    )
    result = service.clean(snapshot_id, spec)
    payload = result.payload
    plan = payload["plan"]
    print(f"quality before cleaning: {payload['quality_before']:.6f}")
    print(
        f"{payload['planner']} plan: {plan['total_operations']} operations on "
        f"{len(plan['operations'])} x-tuples, cost "
        f"{plan['total_cost']}/{args.budget}"
    )
    print(f"expected improvement: {payload['expected_improvement']:.6f}")
    if args.verbose:
        for xid in sorted(plan["operations"]):
            print(f"  pclean({xid}) x{plan['operations'][xid]}")

    if execute:
        print(
            f"simulated execution: {payload['num_succeeded']}/"
            f"{len(payload['probes'])} x-tuples cleaned, spent "
            f"{payload['cost_spent']} of {payload['cost_assigned']} assigned"
        )
        print(f"quality after cleaning: {payload['quality_after']:.6f}")
        if args.output:
            cleaned = service.database(payload["new_snapshot_id"])
            io.save_json(cleaned, args.output)
            print(f"wrote cleaned database to {args.output}")
    _write_envelope(args.json, "clean", result, db_path, ranking_name)
    return 0


def _print_store_status(status: Dict[str, Any]) -> None:
    print(f"store {status['root']}:")
    print(f"  snapshots: {len(status['snapshots'])}")
    for snapshot_id in status["snapshots"]:
        print(f"    {snapshot_id}")
    print(
        f"  journal: {status['journal_records']} records, "
        f"{status['journal_bytes']} bytes"
    )
    print(
        f"  segments: {status['segment_files']} files, "
        f"{status['segment_bytes']} bytes"
    )
    if status["tombstones"]:
        print(f"  tombstones awaiting unlink: {status['tombstones']}")
    holder = status.get("lock_holder")
    if holder is not None:
        liveness = {True: "alive", False: "dead", None: "unknown"}[
            holder.get("alive")
        ]
        print(f"  lock holder: pid {holder.get('pid')} ({liveness})")
    if status["pending_cleanings"]:
        print(f"  pending cleanings: {status['pending_cleanings']}")
    if status["quarantined_files"]:
        print(f"  quarantined: {status['quarantined_files']}")
    recovery = status["recovery"]
    if recovery["journal_truncated_bytes"]:
        print(
            f"  journal tail truncated: {recovery['journal_truncated_bytes']} "
            f"bytes ({recovery['journal_truncate_reason']})"
        )
    if recovery["swept_temp_files"]:
        print(f"  swept temp files: {recovery['swept_temp_files']}")


def _write_store_envelope(
    json_path: Optional[str], envelope: Dict[str, Any]
) -> None:
    if json_path is None:
        return
    with open(json_path, "w", encoding="utf-8") as f:
        json.dump(envelope, f, indent=2)
        f.write("\n")


def cmd_store(args: argparse.Namespace) -> int:
    """``repro store [status|compact|gc|unlock]``: maintain a store.

    ``status`` (the default) opens the directory *read-only* (shared
    lock, no repairs) and reports its health.  ``compact`` checkpoints
    the journal, dropping records whose segments are durably committed
    and unlinking tombstoned files.  ``gc`` applies a retention policy
    (``--keep-last-n`` / ``--pin``) through the store's two-phase
    delete, then checkpoints so the reclaim actually happens.
    ``unlock`` reports the recorded cross-process lock holder and,
    with ``--force``, clears a stale record (a verifiably live holder
    is never broken).  Every action writes a JSON envelope with
    ``--json``; lock contention surfaces as the typed
    ``StoreLockedError`` error envelope, exit 1.
    """
    from repro.store import RetentionPolicy, SnapshotStore, StoreLock

    action = args.action
    if action == "unlock":
        lock = StoreLock(args.dir)
        holder = lock.holder()
        if args.force:
            report = lock.force_break()
            broken = report["broken"]
            holder = report["holder"]
            print(
                "lock record cleared"
                if broken
                else "lock record NOT cleared (holder is alive)"
            )
        else:
            broken = False
            print(
                "no lock record"
                if holder is None
                else f"lock record: pid {holder.get('pid')} "
                f"(alive={holder.get('alive')}); re-run with --force "
                f"to clear a stale record"
            )
        _write_store_envelope(
            args.json,
            {
                "command": "store",
                "action": "unlock",
                "broken": broken,
                "holder": holder,
            },
        )
        return 0

    if action == "status":
        store = SnapshotStore(args.dir, durability="none", mode="readonly")
        status = store.status()
        _print_store_status(status)
        _write_store_envelope(
            args.json,
            {"command": "store", "action": "status", "status": status},
        )
        return 0

    store = SnapshotStore(args.dir, durability="fsync")
    if action == "compact":
        report = store.checkpoint()
        print(
            f"checkpoint: {report['records_before']} -> "
            f"{report['records_after']} journal records "
            f"({report['journal_bytes']} bytes), "
            f"{len(report['unlinked'])} segment files unlinked"
        )
    else:  # gc
        policy = RetentionPolicy(
            keep_last_n=args.keep_last_n, pinned=tuple(args.pin)
        )
        report = store.gc(policy)
        checkpoint = store.checkpoint()
        report = {"gc": report, "checkpoint": checkpoint}
        print(
            f"gc: {len(report['gc']['tombstoned'])} segments tombstoned, "
            f"{len(checkpoint['unlinked'])} files unlinked, "
            f"{len(report['gc']['live'])} live"
        )
    _write_store_envelope(
        args.json,
        {
            "command": "store",
            "action": action,
            "report": report,
            "status": store.status(),
        },
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic top-k quality and cleaning (ICDE 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a workload database")
    g.add_argument("kind", choices=("synthetic", "mov"))
    g.add_argument("--output", "-o", required=True)
    g.add_argument("--xtuples", type=int, default=1000)
    g.add_argument("--sigma", type=float, default=100.0)
    g.add_argument(
        "--uncertainty", choices=("gaussian", "uniform"), default="gaussian"
    )
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--json", help="write the wire envelope here")
    g.set_defaults(fn=cmd_generate)

    q = sub.add_parser("quality", help="compute the PWS-quality")
    q.add_argument("--db", required=True)
    q.add_argument("-k", type=int, default=15)
    q.add_argument("--method", choices=METHODS, default="tp")
    q.add_argument("--samples", type=int, default=10_000)
    q.add_argument("--ranking", choices=("value", "mov"), default="value")
    q.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="shed the request with a typed error past this budget",
    )
    q.add_argument(
        "--store",
        default=None,
        help="durable snapshot store directory (recovered on open)",
    )
    q.add_argument("--json", help="write the wire envelope here")
    q.set_defaults(fn=cmd_quality)

    r = sub.add_parser("query", help="answer a probabilistic top-k query")
    r.add_argument("--db", required=True)
    r.add_argument("-k", type=int, default=15)
    r.add_argument(
        "--semantics",
        choices=("ptk", "ukranks", "global-topk", "all"),
        default="all",
    )
    r.add_argument("--threshold", type=float, default=0.1)
    r.add_argument("--ranking", choices=("value", "mov"), default="value")
    r.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="shed the request with a typed error past this budget",
    )
    r.add_argument(
        "--store",
        default=None,
        help="durable snapshot store directory (recovered on open)",
    )
    r.add_argument("--json", help="write the wire envelope here")
    r.set_defaults(fn=cmd_query)

    c = sub.add_parser("clean", help="plan (and simulate) budgeted cleaning")
    c.add_argument("--db", help="database file (or supply --from)")
    c.add_argument("-k", type=int, default=None)
    c.add_argument("--budget", type=int, required=True)
    c.add_argument("--planner", choices=sorted(PLANNERS), default="greedy")
    c.add_argument("--costs", help="JSON mapping {xid: cost}")
    c.add_argument("--sc", help="JSON mapping {xid: sc-probability}")
    c.add_argument("--costs-seed", type=int, default=0)
    c.add_argument("--sc-seed", type=int, default=0)
    c.add_argument("--execute", action="store_true", help="simulate the probes")
    c.add_argument("--execute-seed", type=int, default=0)
    c.add_argument("--output", "-o", help="write the cleaned database here")
    c.add_argument(
        "--ranking",
        choices=("value", "mov"),
        default=None,
        help="defaults to the --from envelope's ranking, else 'value'",
    )
    c.add_argument(
        "--from",
        dest="from_json",
        help="JSON envelope from a previous query/quality run; supplies "
        "db, ranking and k unless overridden",
    )
    c.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="shed the request with a typed error past this budget",
    )
    c.add_argument(
        "--store",
        default=None,
        help="durable snapshot store directory; cleaning outcomes are "
        "journaled and persisted before they are published",
    )
    c.add_argument("--json", help="write the wire envelope here")
    c.add_argument("--verbose", "-v", action="store_true")
    c.set_defaults(fn=cmd_clean)

    s = sub.add_parser(
        "store",
        help="inspect / maintain a snapshot store directory",
    )
    s.add_argument(
        "action",
        nargs="?",
        default="status",
        choices=("status", "compact", "gc", "unlock"),
        help="status (default, read-only), compact the journal, "
        "gc segments by retention policy, or clear a stale lock record",
    )
    s.add_argument("--dir", required=True, help="store directory")
    s.add_argument("--json", help="write the action's envelope here")
    s.add_argument(
        "--keep-last-n",
        type=int,
        default=None,
        help="gc: keep only the newest N segments (plus pins)",
    )
    s.add_argument(
        "--pin",
        action="append",
        default=[],
        metavar="SNAPSHOT_ID",
        help="gc: never collect this snapshot (repeatable)",
    )
    s.add_argument(
        "--force",
        action="store_true",
        help="unlock: clear a stale lock record (live holders refuse)",
    )
    s.set_defaults(fn=cmd_store)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors -- validation failures, shed deadlines, an
    overloaded service -- exit 1 with a one-line message on stderr and
    (with ``--json``) a typed error envelope
    ``{"error": {"type": ..., "message": ...}}`` in place of the
    result, so scripted callers branch on the error type instead of
    parsing a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        json_path = getattr(args, "json", None)
        if json_path is not None:
            envelope = {
                "command": args.command,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                },
            }
            with open(json_path, "w", encoding="utf-8") as f:
                json.dump(envelope, f, indent=2)
                f.write("\n")
        print(f"error [{type(exc).__name__}]: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
