"""Command-line interface: ``python -m repro <command>``.

Commands:

``generate``
    Produce a synthetic or simulated-MOV probabilistic database as a
    JSON file (Section VI workloads).
``quality``
    Compute the PWS-quality of a top-k query over a database file with
    any of the four algorithms.
``query``
    Answer a U-kRanks / PT-k / Global-topk query (plus the quality,
    shared from the same PSR pass).
``clean``
    Plan budgeted cleaning with DP / Greedy / RandP / RandU, report the
    expected improvement, optionally simulate execution and write the
    cleaned database.

Costs and sc-probabilities for ``clean`` are either generated from
seeds (matching the paper's experimental setup) or read from a JSON
mapping ``{xtuple_id: value}``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Dict, Optional

from repro.cleaning.dp import DPCleaner
from repro.cleaning.executor import execute_plan
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.improvement import expected_improvement
from repro.cleaning.model import build_cleaning_problem
from repro.cleaning.random_cleaners import RandPCleaner, RandUCleaner
from repro.core.quality import METHODS, compute_quality_detailed
from repro.core.tp import compute_quality_tp
from repro.datasets.mov import generate_mov
from repro.datasets.synthetic import (
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)
from repro.db import io
from repro.db.ranking import by_sum_of_keys, by_value
from repro.queries.engine import evaluate

PLANNERS = {
    "dp": DPCleaner,
    "greedy": GreedyCleaner,
    "randp": RandPCleaner,
    "randu": RandUCleaner,
}


def _ranking_for(name: str):
    if name == "value":
        return by_value()
    if name == "mov":
        return by_sum_of_keys("date", "rating")
    raise SystemExit(f"unknown ranking {name!r}; pick 'value' or 'mov'")


def _load_mapping(path: Optional[str]) -> Optional[Dict[str, float]]:
    if path is None:
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a workload database to JSON."""
    if args.kind == "synthetic":
        db = generate_synthetic(
            num_xtuples=args.xtuples,
            sigma=args.sigma,
            uncertainty=args.uncertainty,
            seed=args.seed,
        )
    else:
        db = generate_mov(num_xtuples=args.xtuples, seed=args.seed)
    io.save_json(db, args.output)
    print(
        f"wrote {db.num_xtuples} x-tuples / {db.num_tuples} tuples "
        f"({db.name}) to {args.output}"
    )
    return 0


def cmd_quality(args: argparse.Namespace) -> int:
    """``repro quality``: score a top-k query's ambiguity."""
    db = io.load_json(args.db)
    ranked = db.ranked(_ranking_for(args.ranking))
    kwargs = {}
    if args.method == "montecarlo":
        kwargs["num_samples"] = args.samples
    result = compute_quality_detailed(ranked, args.k, method=args.method, **kwargs)
    print(f"PWS-quality (k={args.k}, {args.method}): {result.quality:.6f}")
    num_results = getattr(result, "num_results", None)
    if num_results is not None:
        print(f"distinct pw-results: {num_results}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: answer the probabilistic top-k semantics."""
    db = io.load_json(args.db)
    ranked = db.ranked(_ranking_for(args.ranking))
    report = evaluate(ranked, args.k, threshold=args.threshold)
    if args.semantics in ("ptk", "all"):
        print(f"PT-{args.k} (T={args.threshold}): {report.ptk.tids}")
    if args.semantics in ("ukranks", "all"):
        winners = [(w.rank, w.tid, round(w.probability, 4)) for w in report.ukranks.winners]
        print(f"U-kRanks: {winners}")
    if args.semantics in ("global-topk", "all"):
        print(f"Global-top{args.k}: {report.global_topk.tids}")
    print(f"PWS-quality: {report.quality_score:.6f}")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    """``repro clean``: plan (and optionally simulate) cleaning."""
    db = io.load_json(args.db)
    ranked = db.ranked(_ranking_for(args.ranking))
    quality = compute_quality_tp(ranked, args.k)
    costs = _load_mapping(args.costs) or generate_costs(db, seed=args.costs_seed)
    sc = _load_mapping(args.sc) or generate_sc_probabilities(db, seed=args.sc_seed)
    problem = build_cleaning_problem(quality, costs, sc, args.budget)

    planner = PLANNERS[args.planner]()
    plan = planner.plan(problem)
    improvement = expected_improvement(problem, plan)
    print(f"quality before cleaning: {quality.quality:.6f}")
    print(
        f"{planner.name} plan: {plan.total_operations} operations on "
        f"{len(plan)} x-tuples, cost {plan.total_cost(problem)}/{args.budget}"
    )
    print(f"expected improvement: {improvement:.6f}")
    if args.verbose:
        for xid in sorted(plan.operations):
            print(f"  pclean({xid}) x{plan.operations[xid]}")

    if args.execute or args.output:
        outcome = execute_plan(
            db, problem, plan, rng=random.Random(args.execute_seed)
        )
        after = compute_quality_tp(
            outcome.cleaned_db.ranked(_ranking_for(args.ranking)), args.k
        )
        print(
            f"simulated execution: {outcome.num_succeeded}/"
            f"{len(outcome.records)} x-tuples cleaned, spent "
            f"{outcome.cost_spent} of {outcome.cost_assigned} assigned"
        )
        print(f"quality after cleaning: {after.quality:.6f}")
        if args.output:
            io.save_json(outcome.cleaned_db, args.output)
            print(f"wrote cleaned database to {args.output}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic top-k quality and cleaning (ICDE 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a workload database")
    g.add_argument("kind", choices=("synthetic", "mov"))
    g.add_argument("--output", "-o", required=True)
    g.add_argument("--xtuples", type=int, default=1000)
    g.add_argument("--sigma", type=float, default=100.0)
    g.add_argument(
        "--uncertainty", choices=("gaussian", "uniform"), default="gaussian"
    )
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(fn=cmd_generate)

    q = sub.add_parser("quality", help="compute the PWS-quality")
    q.add_argument("--db", required=True)
    q.add_argument("-k", type=int, default=15)
    q.add_argument("--method", choices=METHODS, default="tp")
    q.add_argument("--samples", type=int, default=10_000)
    q.add_argument("--ranking", choices=("value", "mov"), default="value")
    q.set_defaults(fn=cmd_quality)

    r = sub.add_parser("query", help="answer a probabilistic top-k query")
    r.add_argument("--db", required=True)
    r.add_argument("-k", type=int, default=15)
    r.add_argument(
        "--semantics",
        choices=("ptk", "ukranks", "global-topk", "all"),
        default="all",
    )
    r.add_argument("--threshold", type=float, default=0.1)
    r.add_argument("--ranking", choices=("value", "mov"), default="value")
    r.set_defaults(fn=cmd_query)

    c = sub.add_parser("clean", help="plan (and simulate) budgeted cleaning")
    c.add_argument("--db", required=True)
    c.add_argument("-k", type=int, default=15)
    c.add_argument("--budget", type=int, required=True)
    c.add_argument("--planner", choices=sorted(PLANNERS), default="greedy")
    c.add_argument("--costs", help="JSON mapping {xid: cost}")
    c.add_argument("--sc", help="JSON mapping {xid: sc-probability}")
    c.add_argument("--costs-seed", type=int, default=0)
    c.add_argument("--sc-seed", type=int, default=0)
    c.add_argument("--execute", action="store_true", help="simulate the probes")
    c.add_argument("--execute-seed", type=int, default=0)
    c.add_argument("--output", "-o", help="write the cleaned database here")
    c.add_argument("--ranking", choices=("value", "mov"), default="value")
    c.add_argument("--verbose", "-v", action="store_true")
    c.set_defaults(fn=cmd_clean)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
