"""``repro-lint``: the repository's contracts as executable checks.

The kernels, the delta engine, the process-parallel backend and the
service façade each rest on invariants that a reviewer cannot see in a
diff hunk: randomness must flow through seeded generators or runs stop
being reproducible; shared-memory segments must be created by the one
registry-tracked helper or they leak past test teardown; deterministic
kernels must not read the wall clock or compare floats for equality;
request specs must stay frozen and wire-round-trippable; counters must
be declared in one registry or they ship half-wired; cross-process
locking must stay inside ``repro.store`` or two flock protocols end up
fighting over one directory.  This module
turns each of those into an AST-level rule with a stable ``REPnnn``
code, so every future change is checked by machine instead of memory.

Usage::

    repro-lint [paths ...] [--json] [--list-rules]
    python -m repro.tooling.lint src

Configuration lives in ``pyproject.toml``::

    [tool.repro-lint]
    paths = ["src"]              # default lint roots
    exclude = ["src/gen/*"]      # global path excludes (fnmatch)

    [tool.repro-lint.REP008]
    exclude = ["src/repro/cli.py"]   # extend one rule's scope
    # severity = "warning"           # or downgrade it
    # enabled = false                # or switch it off

Paths in ``include`` / ``exclude`` are ``fnmatch`` globs matched
against the file's path relative to the project root (the directory
holding ``pyproject.toml``, or ``--root``).  A finding on a line whose
source carries ``# repro-lint: disable=REPnnn`` is suppressed; the
project's policy is to prefer config-level excludes, which leave an
auditable trail here instead of scattering pragmas.

Exit status: 0 when no error-severity findings remain (warnings do not
fail the run), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.9/3.10 fallback
    tomllib = None  # type: ignore[assignment]

from repro.core.counters import SESSION_COUNTERS, STORE_COUNTERS

#: Severities a rule (or a config override) may use.
SEVERITIES = ("error", "warning")

#: Inline suppression marker checked on the finding's source line.
PRAGMA = "repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    severity: str
    path: str
    line: int
    column: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON encoding (the ``--json`` wire shape)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        """The human one-liner (``path:line:col: CODE severity: msg``)."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.code} {self.severity}: {self.message}"
        )


@dataclass
class ModuleSource:
    """One parsed file handed to every in-scope rule."""

    path: str  # project-root-relative, POSIX separators
    tree: ast.Module
    lines: List[str]

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Dotted-package parts under ``src/`` (empty outside it).

        ``src/repro/core/parallel.py`` -> ``("repro", "core")``; the
        layering rule keys on this.
        """
        parts = Path(self.path).parts
        if len(parts) < 2 or parts[0] != "src":
            return ()
        return tuple(parts[1:-1])


#: A rule body: yields ``(node, message)`` per violation.
Checker = Callable[[ModuleSource], Iterator[Tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule with its default scope and severity."""

    code: str
    name: str
    description: str
    checker: Checker
    severity: str = "error"
    include: Tuple[str, ...] = ("src/*",)
    exclude: Tuple[str, ...] = ()


#: The rule registry, in code order.
RULES: Dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    description: str,
    *,
    severity: str = "error",
    include: Tuple[str, ...] = ("src/*",),
    exclude: Tuple[str, ...] = (),
) -> Callable[[Checker], Checker]:
    """Register a checker function under a ``REPnnn`` code."""

    def decorate(checker: Checker) -> Checker:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code!r}")
        if severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")
        RULES[code] = Rule(
            code=code,
            name=name,
            description=description,
            checker=checker,
            severity=severity,
            include=include,
            exclude=exclude,
        )
        return checker

    return decorate


# ---------------------------------------------------------------------------
# Import resolution shared by several rules
# ---------------------------------------------------------------------------


class _ImportMap:
    """Alias -> dotted-name resolution over a module's imports.

    Tracks both module-level and function-level imports (a lazy
    ``import numpy.random`` inside a helper must not evade REP001);
    the layering rule uses its own module-level-only walk instead.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    self.aliases[name.asname or name.name.split(".")[0]] = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    if name.name == "*":
                        continue
                    self.aliases[name.asname or name.name] = (
                        f"{node.module}.{name.name}"
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression like ``np.random.default_rng``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


def _calls(source: ModuleSource) -> Iterator[ast.Call]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            yield node


# ---------------------------------------------------------------------------
# REP001 -- seeded RNG only
# ---------------------------------------------------------------------------

#: ``numpy.random`` constructors that are legitimate *seeded* plumbing
#: when called with an explicit seed/state argument.
_NP_SEEDED_CONSTRUCTORS = (
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
)


@rule(
    "REP001",
    "unseeded-rng",
    "Randomness must flow through an explicitly seeded random.Random or "
    "numpy Generator; module-level RNG state makes runs irreproducible.",
)
def _check_unseeded_rng(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    imports = _ImportMap(source.tree)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = sorted(
                name.name for name in node.names if name.name != "Random"
            )
            if bad:
                yield node, (
                    f"import of module-level RNG {bad!r} from 'random'; "
                    f"import the Random class and seed an instance instead"
                )
        if not isinstance(node, ast.Call):
            continue
        dotted = imports.resolve(node.func)
        if dotted is None:
            continue
        has_args = bool(node.args or node.keywords)
        if dotted == "random.Random":
            if not has_args:
                yield node, (
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed"
                )
        elif dotted == "random.SystemRandom" or dotted.startswith("random."):
            yield node, (
                f"call to module-level RNG '{dotted}'; construct a seeded "
                f"random.Random and thread it through instead"
            )
        elif dotted in _NP_SEEDED_CONSTRUCTORS:
            if not has_args:
                yield node, (
                    f"'{dotted}()' without a seed is nondeterministic; "
                    f"pass an explicit seed"
                )
        elif dotted.startswith("numpy.random."):
            yield node, (
                f"call to legacy global-state RNG '{dotted}'; use a seeded "
                f"numpy.random.default_rng(seed) Generator instead"
            )


# ---------------------------------------------------------------------------
# REP002 -- shared memory only through the tracked helper
# ---------------------------------------------------------------------------


@rule(
    "REP002",
    "untracked-shared-memory",
    "SharedMemory(create=True) is allowed only inside the registry-tracked "
    "helper in core/parallel.py; untracked segments leak on /dev/shm.",
    exclude=("src/repro/core/parallel.py",),
)
def _check_untracked_shm(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    imports = _ImportMap(source.tree)
    for node in _calls(source):
        dotted = imports.resolve(node.func)
        if dotted is None or not dotted.endswith("SharedMemory"):
            continue
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        ) or (
            len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value is True
        )
        if creates:
            yield node, (
                "SharedMemory(create=True) outside repro.core.parallel's "
                "registry-tracked _Segment helper; segments created here "
                "escape leak accounting and unlink sweeps"
            )


# ---------------------------------------------------------------------------
# REP003 -- no wall clock in deterministic modules
# ---------------------------------------------------------------------------

_WALL_CLOCK = frozenset(
    (
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    )
)


@rule(
    "REP003",
    "wall-clock-in-kernel",
    "Kernel/query/cleaning modules are deterministic functions of their "
    "inputs; wall-clock reads (time.time, datetime.now) break the "
    "bit-reproducibility contract.  Monotonic/perf counters are fine.",
    include=(
        "src/repro/db/*",
        "src/repro/core/*",
        "src/repro/queries/*",
        "src/repro/cleaning/*",
    ),
)
def _check_wall_clock(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    imports = _ImportMap(source.tree)
    for node in _calls(source):
        dotted = imports.resolve(node.func)
        if dotted in _WALL_CLOCK:
            yield node, (
                f"wall-clock read '{dotted}' inside a deterministic module; "
                f"use time.monotonic()/time.perf_counter() for durations, "
                f"or take timestamps at the service boundary"
            )


# ---------------------------------------------------------------------------
# REP004 -- no float equality in kernel code
# ---------------------------------------------------------------------------


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Negated literal: -1.0 parses as UnaryOp(USub, Constant(1.0)).
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


@rule(
    "REP004",
    "float-equality",
    "Float == / != in core/ and queries/ hides accumulated roundoff; "
    "compare against the 1e-9 cross-check tolerance helpers instead.",
    include=("src/repro/core/*", "src/repro/queries/*"),
)
def _check_float_equality(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                yield node, (
                    "float equality comparison against a float literal; "
                    "use an explicit tolerance (the kernels' cross-checks "
                    "use 1e-9) or restructure around an ordered comparison"
                )


# ---------------------------------------------------------------------------
# REP005 -- API specs stay frozen and wire-round-trippable
# ---------------------------------------------------------------------------


def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return decorator
    return None


@rule(
    "REP005",
    "unfrozen-api-spec",
    "Dataclasses in repro.api are wire values: they must be frozen=True, "
    "and spec classes (those with a TYPE tag) must round-trip through "
    "to_dict/from_dict.",
    include=("src/repro/api/*",),
)
def _check_frozen_specs(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decorator = _dataclass_decorator(node)
        if decorator is None:
            continue
        frozen = isinstance(decorator, ast.Call) and any(
            kw.arg == "frozen"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in decorator.keywords
        )
        if not frozen:
            yield node, (
                f"api dataclass {node.name!r} is not frozen=True; specs and "
                f"results are immutable wire values"
            )
        has_type_tag = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "TYPE" for t in stmt.targets
            )
            for stmt in node.body
        )
        if has_type_tag:
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            missing = sorted({"to_dict", "from_dict"} - methods)
            if missing:
                yield node, (
                    f"spec dataclass {node.name!r} lacks {missing}; every "
                    f"TYPE-tagged spec must JSON-round-trip"
                )


# ---------------------------------------------------------------------------
# REP006 -- exception hygiene on worker/supervisor paths
# ---------------------------------------------------------------------------


def _names_base_exception(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "BaseException"
    if isinstance(annotation, ast.Tuple):
        return any(_names_base_exception(e) for e in annotation.elts)
    return False


@rule(
    "REP006",
    "swallowed-base-exception",
    "No bare except:, and an except BaseException: handler must re-raise; "
    "swallowing KeyboardInterrupt/SystemExit turns worker supervision "
    "into silent hangs.",
)
def _check_exception_hygiene(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield node, (
                "bare 'except:' catches SystemExit and KeyboardInterrupt; "
                "name the exceptions this path can actually handle"
            )
            continue
        if _names_base_exception(node.type):
            reraises = any(
                isinstance(inner, ast.Raise) and inner.exc is None
                for inner in ast.walk(node)
            )
            if not reraises:
                yield node, (
                    "'except BaseException:' without a bare re-raise "
                    "swallows interpreter shutdown signals; clean up, "
                    "then 'raise'"
                )


# ---------------------------------------------------------------------------
# REP007 -- counters declared in the registry
# ---------------------------------------------------------------------------


@rule(
    "REP007",
    "undeclared-counter",
    "Attributes named psr_* are operational counters; every one must be "
    "declared in repro.core.counters (SESSION_COUNTERS or STORE_COUNTERS) "
    "so it is carried across derives and surfaced in result envelopes.",
)
def _check_counter_registry(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    declared = frozenset(SESSION_COUNTERS) | frozenset(STORE_COUNTERS)
    for node in ast.walk(source.tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr.startswith("psr_")
                and target.attr not in declared
            ):
                yield target, (
                    f"counter attribute {target.attr!r} is not declared in "
                    f"repro.core.counters (SESSION_COUNTERS or "
                    f"STORE_COUNTERS); undeclared counters ship half-wired "
                    f"(dropped on derive, absent from result envelopes)"
                )


# ---------------------------------------------------------------------------
# REP008 -- no print() in library code
# ---------------------------------------------------------------------------


@rule(
    "REP008",
    "print-in-library",
    "Library modules must not print(); output belongs to the CLI's JSON "
    "envelopes (and the lint tool's own reporter).",
    exclude=("src/repro/tooling/*",),
)
def _check_no_print(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    for node in _calls(source):
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield node, (
                "print() in library code; return data and let the CLI "
                "render it, or use the JSON envelope helpers"
            )


# ---------------------------------------------------------------------------
# REP009 -- import layering
# ---------------------------------------------------------------------------

#: Packages the foundation layer may import from ``repro``.
_DB_ALLOWED = ("repro.db", "repro.exceptions")

#: Everything the persistence layer may import from ``repro``: the data
#: layer below it, the fault-injection harness, and the lock-order
#: checker.  Importing the serving layer back would create a cycle.
_STORE_ALLOWED = (
    "repro.db",
    "repro.exceptions",
    "repro.testing",
    "repro.core",
    "repro.store",
)

#: Units allowed to import the persistence layer.  The serving layer
#: persists through it; nothing below the store may reach up into it.
_STORE_IMPORTERS = ("api", "store", "cli", "__init__")

#: Units allowed to import the service façade / CLI / bench harness.
#: ``__init__`` is the top-level package root -- the public re-export
#: surface -- which by design depends on everything below it.
_API_IMPORTERS = ("api", "bench", "cli", "__init__")
_CLI_IMPORTERS = ("cli", "__main__")
_BENCH_IMPORTERS = ("bench", "cli")

#: Everything the tooling package may import from ``repro``.
_TOOLING_ALLOWED = ("repro.core.counters", "repro.exceptions", "repro.tooling")


def _module_level_repro_imports(
    source: ModuleSource,
) -> Iterator[Tuple[ast.stmt, str]]:
    """Top-level ``repro.*`` imports (TYPE_CHECKING blocks excluded)."""
    for stmt in source.tree.body:
        if isinstance(stmt, ast.Import):
            for name in stmt.names:
                if name.name == "repro" or name.name.startswith("repro."):
                    yield stmt, name.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0:
            module = stmt.module or ""
            if module == "repro" or module.startswith("repro."):
                yield stmt, module


@rule(
    "REP009",
    "layering-violation",
    "Module-level imports must respect the package layering: repro.db "
    "imports nothing above itself; repro.store sits between db and api "
    "and never imports the serving layer; only api/bench/cli import "
    "repro.api; only __main__ imports repro.cli; repro.tooling stays a "
    "leaf.  Function-level lazy imports remain the sanctioned "
    "cycle-breaker.",
)
def _check_layering(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    parts = source.package_parts
    if not parts or parts[0] != "repro":
        return
    # The "unit" a module belongs to for layering purposes: its first
    # subpackage, or -- for top-level modules like cli.py -- its stem.
    package = parts[1] if len(parts) > 1 else Path(source.path).stem
    for stmt, imported in _module_level_repro_imports(source):
        if package == "db" and not imported.startswith(_DB_ALLOWED):
            yield stmt, (
                f"repro.db is the foundation layer and must not import "
                f"{imported!r}; move the dependency up or make it a "
                f"function-level lazy import"
            )
        if package == "store" and not imported.startswith(_STORE_ALLOWED):
            yield stmt, (
                f"repro.store is the persistence layer and must not import "
                f"{imported!r} (allowed: {_STORE_ALLOWED}); in particular "
                f"it never imports the serving layer back"
            )
        if imported.startswith("repro.store") and package not in _STORE_IMPORTERS:
            yield stmt, (
                f"{imported!r} (the persistence layer) may only be imported "
                f"by {_STORE_IMPORTERS}"
            )
        if imported.startswith("repro.api") and package not in _API_IMPORTERS:
            yield stmt, (
                f"{imported!r} (the service façade) may only be imported "
                f"by {_API_IMPORTERS}; lower layers must not depend on it"
            )
        if imported.startswith("repro.cli") and package not in _CLI_IMPORTERS:
            yield stmt, f"{imported!r} may only be imported by the __main__ shim"
        if imported.startswith("repro.bench") and package not in _BENCH_IMPORTERS:
            yield stmt, (
                f"{imported!r} (the benchmark harness) may only be imported "
                f"by {_BENCH_IMPORTERS}"
            )
        if imported.startswith("repro.tooling") and package != "tooling":
            yield stmt, (
                f"{imported!r} is developer tooling and must not be "
                f"imported by the library"
            )
        if package == "tooling" and not imported.startswith(_TOOLING_ALLOWED):
            yield stmt, (
                f"repro.tooling must stay loadable while the library is "
                f"broken; it may not import {imported!r} (allowed: "
                f"{_TOOLING_ALLOWED})"
            )


# ---------------------------------------------------------------------------
# REP010 -- no mutable default arguments
# ---------------------------------------------------------------------------


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set")
        and not node.args
        and not node.keywords
    )


@rule(
    "REP010",
    "mutable-default-argument",
    "A mutable default ([] / {} / set()) is evaluated once and shared "
    "across calls; default to None and construct inside the function.",
)
def _check_mutable_defaults(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield default, (
                    f"mutable default argument in {node.name!r}; use None "
                    f"and construct inside the body"
                )


# ---------------------------------------------------------------------------
# REP011 -- file writes only in the sanctioned modules
# ---------------------------------------------------------------------------

#: Modules allowed to open files for writing: the crash-safe store
#: (which owns the temp+fsync+rename protocol), the db serializers,
#: and the CLI's explicit output flags.  A write anywhere else
#: bypasses the durability protocol and the stranded-temp accounting.
_WRITE_SANCTIONED = (
    "src/repro/store/*",
    "src/repro/db/io.py",
    "src/repro/cli.py",
)

#: ``os.open`` flag names that imply write access.
_OS_WRITE_FLAGS = frozenset(
    ("O_WRONLY", "O_RDWR", "O_CREAT", "O_APPEND", "O_TRUNC")
)


def _write_mode(node: ast.Call, mode_position: int) -> Optional[str]:
    """The literal mode string of an ``open()`` call, if it writes.

    ``mode_position`` is 1 for the builtin (``open(path, mode)``) and 0
    for the ``Path.open(mode)`` method form.
    """
    mode: Optional[ast.expr] = None
    if len(node.args) > mode_position:
        mode = node.args[mode_position]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return None
    if any(flag in mode.value for flag in ("w", "a", "x", "+")):
        return mode.value
    return None


@rule(
    "REP011",
    "unscoped-file-write",
    "Opening a file for writing is allowed only in repro.store (the "
    "crash-safe write protocol), repro.db.io (the serializers) and the "
    "CLI; writes elsewhere bypass the temp+fsync+rename discipline and "
    "the stranded-temp-file accounting.",
    exclude=_WRITE_SANCTIONED,
)
def _check_scoped_writes(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    for node in _calls(source):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _write_mode(node, mode_position=1)
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            # ``os.open`` is an Attribute call too, but takes integer
            # flags, not a mode string; the flag walk below covers it.
            mode = _write_mode(node, mode_position=0)
        else:
            mode = None
        if mode is not None:
            yield node, (
                f"open(..., {mode!r}) outside the sanctioned write "
                f"modules {list(_WRITE_SANCTIONED)}; route the write "
                f"through repro.store or repro.db.io"
            )
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr in _OS_WRITE_FLAGS:
            yield node, (
                f"os.{node.attr} implies write access outside the "
                f"sanctioned write modules {list(_WRITE_SANCTIONED)}; "
                f"route the write through repro.store"
            )


# ---------------------------------------------------------------------------
# REP012 -- fcntl / lock-file manipulation only in repro.store
# ---------------------------------------------------------------------------

#: Modules allowed to touch ``fcntl``: the store package owns the one
#: cross-process locking protocol (``repro.store.locks``).  A second
#: flock elsewhere would either deadlock against the store's (if
#: ordered wrong) or silently fail to exclude it (if on a different
#: file) -- both are protocol forks, not features.
_LOCKING_SANCTIONED = ("src/repro/store/*",)


@rule(
    "REP012",
    "unscoped-file-locking",
    "fcntl / cross-process lock-file manipulation is allowed only in "
    "repro.store, which owns the one advisory-locking protocol "
    "(bounded wait, holder records, stale-lock recovery); every other "
    "layer must go through the store.",
    exclude=_LOCKING_SANCTIONED,
)
def _check_scoped_locking(source: ModuleSource) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "fcntl" or alias.name.startswith("fcntl."):
                    yield node, (
                        f"import of {alias.name!r} outside the sanctioned "
                        f"locking modules {list(_LOCKING_SANCTIONED)}; "
                        f"take cross-process locks through "
                        f"repro.store.locks.StoreLock"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "fcntl" or (
                node.module or ""
            ).startswith("fcntl."):
                yield node, (
                    f"import from {node.module!r} outside the sanctioned "
                    f"locking modules {list(_LOCKING_SANCTIONED)}; take "
                    f"cross-process locks through "
                    f"repro.store.locks.StoreLock"
                )
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "fcntl"
            ):
                yield node, (
                    f"fcntl.{node.attr} outside the sanctioned locking "
                    f"modules {list(_LOCKING_SANCTIONED)}; take "
                    f"cross-process locks through "
                    f"repro.store.locks.StoreLock"
                )


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass
class RuleConfig:
    """Per-rule overrides from ``[tool.repro-lint.REPnnn]``."""

    enabled: bool = True
    severity: Optional[str] = None
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()


@dataclass
class LintConfig:
    """The resolved ``[tool.repro-lint]`` table."""

    paths: Tuple[str, ...] = ("src",)
    exclude: Tuple[str, ...] = ()
    rules: Dict[str, RuleConfig] = field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Load the ``[tool.repro-lint]`` table (absent table = defaults)."""
        if tomllib is None or not pyproject.is_file():
            return cls()
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("repro-lint", {})
        if not isinstance(table, dict):
            raise ValueError("[tool.repro-lint] must be a table")
        rules: Dict[str, RuleConfig] = {}
        for key, value in table.items():
            if not isinstance(value, dict):
                continue
            severity = value.get("severity")
            if severity is not None and severity not in SEVERITIES:
                raise ValueError(
                    f"[tool.repro-lint.{key}] severity must be one of "
                    f"{SEVERITIES}, got {severity!r}"
                )
            rules[key] = RuleConfig(
                enabled=bool(value.get("enabled", True)),
                severity=severity,
                include=tuple(value.get("include", ())),
                exclude=tuple(value.get("exclude", ())),
            )
        return cls(
            paths=tuple(table.get("paths", ("src",))),
            exclude=tuple(table.get("exclude", ())),
            rules=rules,
        )


def _matches(path: str, patterns: Iterable[str]) -> bool:
    return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)


def _rule_applies(rule_: Rule, override: RuleConfig, path: str) -> bool:
    include = tuple(rule_.include) + tuple(override.include)
    exclude = tuple(rule_.exclude) + tuple(override.exclude)
    return _matches(path, include) and not _matches(path, exclude)


def _suppressed(source: ModuleSource, finding_line: int, code: str) -> bool:
    """Whether the finding's source line carries a disable pragma."""
    if not 1 <= finding_line <= len(source.lines):
        return False
    line = source.lines[finding_line - 1]
    marker = line.find(PRAGMA)
    if marker < 0:
        return False
    directive = line[marker + len(PRAGMA) :].strip()
    if not directive.startswith("disable"):
        return False
    _, _, codes = directive.partition("=")
    codes = codes.strip()
    if not codes:
        return True  # bare "disable" suppresses every rule on the line
    return code in {c.strip() for c in codes.split(",")}


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def to_dict(self) -> Dict[str, object]:
        """The ``--json`` payload."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {"errors": self.errors, "warnings": self.warnings},
        }


def _python_files(root: Path, paths: Sequence[str]) -> Iterator[Path]:
    seen = set()
    for raw in paths:
        target = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if target.is_file() and target.suffix == ".py":
            candidates: Iterable[Path] = (target,)
        elif target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


def lint_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) against every enabled rule."""
    root = (root or Path.cwd()).resolve()
    if config is None:
        config = LintConfig.from_pyproject(root / "pyproject.toml")
    findings: List[Finding] = []
    files = 0
    for file_path in _python_files(root, paths):
        files += 1
        try:
            rel = file_path.relative_to(root).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        if _matches(rel, config.exclude):
            continue
        text = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(file_path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    code="REP000",
                    severity="error",
                    path=rel,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        source = ModuleSource(path=rel, tree=tree, lines=text.splitlines())
        for rule_ in RULES.values():
            override = config.rules.get(rule_.code, _NO_OVERRIDE)
            if not override.enabled:
                continue
            if not _rule_applies(rule_, override, rel):
                continue
            severity = override.severity or rule_.severity
            for node, message in rule_.checker(source):
                line = getattr(node, "lineno", 1)
                column = getattr(node, "col_offset", 0)
                if _suppressed(source, line, rule_.code):
                    continue
                findings.append(
                    Finding(
                        code=rule_.code,
                        severity=severity,
                        path=rel,
                        line=line,
                        column=column,
                        message=message,
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return LintReport(findings=findings, files_checked=files)


_NO_OVERRIDE = RuleConfig()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _render_rule_list() -> str:
    lines = []
    for rule_ in RULES.values():
        lines.append(f"{rule_.code}  {rule_.name}  [{rule_.severity}]")
        lines.append(f"    {rule_.description}")
        lines.append(f"    include: {list(rule_.include)}")
        if rule_.exclude:
            lines.append(f"    exclude: {list(rule_.exclude)}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-lint`` / ``python -m repro.tooling.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis: this repository's "
            "reproducibility/serving contracts as REPnnn rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths, falling back to 'src')",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro-lint] and run every rule at its defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rule_list())
        return 0

    root = Path(args.root).resolve()
    config = (
        LintConfig()
        if args.no_config
        else LintConfig.from_pyproject(root / "pyproject.toml")
    )
    paths = list(args.paths) or list(config.paths)
    try:
        report = lint_paths(paths, root=root, config=config)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        if report.findings:
            print(
                f"repro-lint: {report.errors} error(s), "
                f"{report.warnings} warning(s) in {report.files_checked} file(s)"
            )
        else:
            print(
                f"repro-lint: clean ({report.files_checked} files, "
                f"{len(RULES)} rules)"
            )
    return 1 if report.errors else 0


if __name__ == "__main__":
    sys.exit(main())
