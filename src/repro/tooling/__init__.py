"""Project-specific developer tooling.

:mod:`repro.tooling.lint` is ``repro-lint``: a small AST-based static
analyzer that encodes this repository's correctness contracts --
seeded-RNG-only randomness, registry-tracked shared memory,
deterministic kernels (no wall clock, no float equality), frozen
round-tripping API specs, registry-declared counters, exception
hygiene, import layering -- as machine-checked rules (REP001...).
Run it as ``repro-lint`` or ``python -m repro.tooling.lint``; configure
it under ``[tool.repro-lint]`` in ``pyproject.toml``.

The package deliberately sits at the edge of the import graph: it may
import :mod:`repro.core.counters` (the registry REP007 checks against)
and nothing else from ``repro``, so the linter can always load even
while the code it lints is broken.
"""

from typing import Any

__all__ = ["Finding", "LintReport", "lint_paths", "main"]


def __getattr__(name: str) -> Any:
    # Lazy re-export: ``python -m repro.tooling.lint`` imports this
    # package before runpy executes the submodule as __main__; an eager
    # import here would load lint twice and trip runpy's double-import
    # warning.
    if name in __all__:
        from repro.tooling import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
