"""Round-trip tests for database serialization (repro.db.io)."""

import pytest
from hypothesis import given, settings

from repro.db import io
from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple

from strategies import databases


def _assert_equal_databases(a: ProbabilisticDatabase, b: ProbabilisticDatabase):
    assert a.num_xtuples == b.num_xtuples
    assert a.num_tuples == b.num_tuples
    for xa, xb in zip(a.xtuples, b.xtuples):
        assert xa.xid == xb.xid
        assert len(xa) == len(xb)
        for ta, tb in zip(xa.alternatives, xb.alternatives):
            assert ta.tid == tb.tid
            assert ta.value == tb.value
            assert ta.probability == tb.probability


class TestDictRoundTrip:
    def test_udb1(self, udb1):
        payload = io.database_to_dict(udb1)
        restored = io.database_from_dict(payload)
        _assert_equal_databases(udb1, restored)
        assert restored.name == "udb1"

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            io.database_from_dict({"format": "something-else"})

    @settings(max_examples=25)
    @given(databases())
    def test_random_databases(self, db):
        _assert_equal_databases(db, io.database_from_dict(io.database_to_dict(db)))


class TestJsonRoundTrip:
    def test_udb1(self, udb1, tmp_path):
        path = tmp_path / "udb1.json"
        io.save_json(udb1, path)
        restored = io.load_json(path)
        _assert_equal_databases(udb1, restored)

    def test_mapping_values(self, tmp_path):
        db = ProbabilisticDatabase(
            [
                make_xtuple(
                    "m1",
                    [("a", {"date": 0.5, "rating": 0.75}, 0.6)],
                )
            ]
        )
        path = tmp_path / "mov.json"
        io.save_json(db, path)
        restored = io.load_json(path)
        assert restored.tuple("a").value == {"date": 0.5, "rating": 0.75}


class TestCsvRoundTrip:
    def test_udb1(self, udb1, tmp_path):
        path = tmp_path / "udb1.csv"
        io.save_csv(udb1, path)
        restored = io.load_csv(path, name="udb1")
        _assert_equal_databases(udb1, restored)

    def test_probability_precision_survives(self, tmp_path):
        p = 1.0 / 3.0
        db = ProbabilisticDatabase([make_xtuple("x", [("t", 1.0, p)])])
        path = tmp_path / "p.csv"
        io.save_csv(db, path)
        assert io.load_csv(path).tuple("t").probability == p

    def test_mapping_values(self, tmp_path):
        db = ProbabilisticDatabase(
            [make_xtuple("m1", [("a", {"date": 0.5, "rating": 1.0}, 0.6)])]
        )
        path = tmp_path / "mov.csv"
        io.save_csv(db, path)
        restored = io.load_csv(path)
        assert restored.tuple("a").value == {"date": 0.5, "rating": 1.0}

    def test_grouping_preserves_xtuple_membership(self, udb2, tmp_path):
        path = tmp_path / "udb2.csv"
        io.save_csv(udb2, path)
        restored = io.load_csv(path)
        assert restored.xtuple("S3").alternatives[0].tid == "t5"
        assert restored.num_xtuples == 4
