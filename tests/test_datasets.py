"""Dataset generators: paper properties, determinism, validity."""

import math
import statistics

import pytest

from repro.core.tp import compute_quality_tp
from repro.datasets.mov import MovConfig, generate_mov, mov_ranking
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)


class TestSyntheticGenerator:
    def test_default_shape(self):
        db = generate_synthetic(num_xtuples=50, seed=1)
        assert db.num_xtuples == 50
        # 10 histogram bars per x-tuple (a bar of negligible mass may be
        # dropped, but with sigma=100 over width<=100 all bars survive).
        assert db.num_tuples == 500

    def test_xtuples_are_complete(self):
        db = generate_synthetic(num_xtuples=40, seed=2)
        assert db.is_complete

    def test_values_lie_in_interval_of_width_at_most_100(self):
        db = generate_synthetic(num_xtuples=30, seed=3)
        for xt in db.xtuples:
            values = [t.value for t in xt.alternatives]
            assert max(values) - min(values) <= 100.0

    def test_deterministic_under_seed(self):
        a = generate_synthetic(num_xtuples=20, seed=9)
        b = generate_synthetic(num_xtuples=20, seed=9)
        assert [t.tid for t in a] == [t.tid for t in b]
        assert [t.probability for t in a] == [t.probability for t in b]

    def test_seeds_differ(self):
        a = generate_synthetic(num_xtuples=20, seed=1)
        b = generate_synthetic(num_xtuples=20, seed=2)
        assert [t.value for t in a] != [t.value for t in b]

    def test_uniform_pdf_gives_equal_bars(self):
        db = generate_synthetic(num_xtuples=10, uncertainty="uniform", seed=4)
        for xt in db.xtuples:
            for t in xt.alternatives:
                assert t.probability == pytest.approx(0.1)

    def test_small_sigma_concentrates_mass(self):
        narrow = generate_synthetic(num_xtuples=15, sigma=10.0, seed=5)
        wide = generate_synthetic(num_xtuples=15, sigma=100.0, seed=5)

        def max_bar(db):
            return statistics.fmean(
                max(t.probability for t in xt.alternatives)
                for xt in db.xtuples
            )

        assert max_bar(narrow) > max_bar(wide)

    def test_quality_ordering_by_sigma(self):
        """Figure 4(b)'s shape: smaller σ ⇒ higher (less negative)
        quality; uniform is the most ambiguous."""
        qualities = {}
        for sigma in (10.0, 100.0):
            db = generate_synthetic(num_xtuples=60, sigma=sigma, seed=6)
            qualities[sigma] = compute_quality_tp(db.ranked(), 5).quality
        uniform_db = generate_synthetic(
            num_xtuples=60, uncertainty="uniform", seed=6
        )
        qualities["uniform"] = compute_quality_tp(uniform_db.ranked(), 5).quality
        assert qualities[10.0] > qualities[100.0] > qualities["uniform"]

    def test_config_object_and_overrides_are_exclusive(self):
        with pytest.raises(TypeError):
            generate_synthetic(SyntheticConfig(), num_xtuples=5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_xtuples": 0},
            {"bars_per_xtuple": 0},
            {"uncertainty": "exotic"},
            {"sigma": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticConfig(**kwargs)


class TestCostsAndScProbabilities:
    def test_costs_in_range_and_deterministic(self):
        db = generate_synthetic(num_xtuples=30, seed=1)
        costs = generate_costs(db, seed=5)
        assert set(costs) == {xt.xid for xt in db.xtuples}
        assert all(1 <= c <= 10 for c in costs.values())
        assert costs == generate_costs(db, seed=5)

    def test_invalid_cost_range_rejected(self):
        db = generate_synthetic(num_xtuples=5, seed=1)
        with pytest.raises(ValueError):
            generate_costs(db, low=0)
        with pytest.raises(ValueError):
            generate_costs(db, low=5, high=2)

    def test_uniform_sc_probabilities(self):
        db = generate_synthetic(num_xtuples=200, seed=1)
        sc = generate_sc_probabilities(db, seed=2)
        values = list(sc.values())
        assert all(0.0 <= v <= 1.0 for v in values)
        assert statistics.fmean(values) == pytest.approx(0.5, abs=0.06)

    def test_uniform_range_shifts_average(self):
        db = generate_synthetic(num_xtuples=200, seed=1)
        sc = generate_sc_probabilities(db, low=0.8, high=1.0, seed=2)
        assert statistics.fmean(sc.values()) == pytest.approx(0.9, abs=0.03)

    def test_normal_sc_probabilities_clipped(self):
        db = generate_synthetic(num_xtuples=300, seed=1)
        sc = generate_sc_probabilities(
            db, distribution="normal", sigma=0.3, seed=3
        )
        values = list(sc.values())
        assert all(0.0 <= v <= 1.0 for v in values)
        assert statistics.fmean(values) == pytest.approx(0.5, abs=0.06)

    def test_invalid_sc_parameters_rejected(self):
        db = generate_synthetic(num_xtuples=5, seed=1)
        with pytest.raises(ValueError):
            generate_sc_probabilities(db, distribution="beta")
        with pytest.raises(ValueError):
            generate_sc_probabilities(db, low=-0.5)
        with pytest.raises(ValueError):
            generate_sc_probabilities(db, distribution="normal", sigma=0.0)


class TestMovGenerator:
    def test_shape_matches_paper(self):
        db = generate_mov(num_xtuples=500, seed=1)
        assert db.num_xtuples == 500
        mean_alternatives = db.num_tuples / db.num_xtuples
        assert mean_alternatives == pytest.approx(2.0, abs=0.15)

    def test_complete_by_default(self):
        db = generate_mov(num_xtuples=100, seed=2)
        assert db.is_complete

    def test_incomplete_fraction(self):
        db = generate_mov(num_xtuples=300, incomplete_fraction=0.5, seed=3)
        incomplete = sum(1 for xt in db.xtuples if not xt.is_complete)
        assert 0.3 < incomplete / db.num_xtuples < 0.7

    def test_values_are_normalized(self):
        db = generate_mov(num_xtuples=100, seed=4)
        for t in db:
            assert 0.0 <= t.value["date"] <= 1.0
            assert 0.0 <= t.value["rating"] <= 1.0

    def test_ranking_scores_date_plus_rating(self):
        db = generate_mov(num_xtuples=50, seed=5)
        ranked = db.ranked(mov_ranking())
        t = ranked.order[0]
        assert ranked.scores[0] == pytest.approx(
            t.value["date"] + t.value["rating"]
        )

    def test_deterministic_under_seed(self):
        a = generate_mov(num_xtuples=50, seed=6)
        b = generate_mov(num_xtuples=50, seed=6)
        assert [t.tid for t in a] == [t.tid for t in b]

    def test_quality_higher_than_synthetic_at_equal_size(self):
        """Figure 4(c)'s observation: MOV (≈2 alternatives/x-tuple) is
        less ambiguous than the synthetic data (10 per x-tuple)."""
        mov = generate_mov(num_xtuples=200, seed=7)
        synthetic = generate_synthetic(num_xtuples=200, seed=7)
        q_mov = compute_quality_tp(mov.ranked(mov_ranking()), 10).quality
        q_syn = compute_quality_tp(synthetic.ranked(), 10).quality
        assert q_mov > q_syn

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MovConfig(num_xtuples=0)
        with pytest.raises(ValueError):
            MovConfig(incomplete_fraction=1.5)

    def test_config_object_and_overrides_are_exclusive(self):
        with pytest.raises(TypeError):
            generate_mov(MovConfig(), num_xtuples=5)
