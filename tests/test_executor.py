"""Plan execution: outcome validity, cost accounting, Monte-Carlo match."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.executor import execute_plan
from repro.cleaning.improvement import expected_improvement
from repro.cleaning.model import CleaningPlan, build_cleaning_problem
from repro.core.tp import compute_quality_tp
from repro.db.database import ProbabilisticDatabase
from repro.db.tuples import make_xtuple

from strategies import cleaning_problems


def _paper_problem(udb1, budget=10, sc=None):
    quality = compute_quality_tp(udb1.ranked(), 2)
    sc = sc or {"S1": 0.5, "S2": 0.5, "S3": 0.5, "S4": 0.5}
    costs = {"S1": 1, "S2": 1, "S3": 1, "S4": 1}
    return build_cleaning_problem(quality, costs, sc, budget)


class TestExecutePlan:
    def test_certain_success_collapses_xtuple(self, udb1):
        problem = _paper_problem(udb1, sc={"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0})
        plan = CleaningPlan(operations={"S3": 1})
        outcome = execute_plan(udb1, problem, plan, rng=random.Random(0))
        assert outcome.num_succeeded == 1
        assert outcome.cleaned_db.xtuple("S3").is_certain
        assert outcome.cost_spent == 1

    def test_zero_sc_probability_never_succeeds(self, udb1):
        problem = _paper_problem(udb1, sc={"S1": 0.0, "S2": 0.0, "S3": 0.0, "S4": 0.0})
        plan = CleaningPlan(operations={"S3": 5})
        outcome = execute_plan(udb1, problem, plan, rng=random.Random(0))
        assert outcome.num_succeeded == 0
        assert outcome.cost_spent == 5
        assert outcome.cleaned_db.xtuple("S3") is udb1.xtuple("S3")

    def test_early_success_saves_budget(self, udb1):
        problem = _paper_problem(udb1, sc={"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0})
        plan = CleaningPlan(operations={"S3": 5})
        outcome = execute_plan(udb1, problem, plan, rng=random.Random(0))
        assert outcome.cost_spent == 1
        assert outcome.cost_assigned == 5
        assert outcome.cost_saved == 4
        record = outcome.records[0]
        assert record.performed == 1
        assert record.succeeded

    def test_revealed_tuple_matches_alternatives(self, udb1):
        problem = _paper_problem(udb1, sc={"S1": 1.0, "S2": 1.0, "S3": 1.0, "S4": 1.0})
        plan = CleaningPlan(operations={"S1": 1, "S2": 1, "S3": 1})
        outcome = execute_plan(udb1, problem, plan, rng=random.Random(42))
        for record in outcome.records:
            assert record.succeeded
            original = udb1.xtuple(record.xid)
            assert record.revealed_tid in {t.tid for t in original.alternatives}
            collapsed = outcome.cleaned_db.xtuple(record.xid)
            assert collapsed.is_certain
            assert collapsed.alternatives[0].tid == record.revealed_tid

    def test_incomplete_xtuple_can_reveal_null(self):
        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t0", 2.0, 0.1)]),  # 0.9 null mass
                make_xtuple("b", [("t1", 1.0, 1.0)]),
            ]
        )
        quality = compute_quality_tp(db.ranked(), 1)
        problem = build_cleaning_problem(
            quality, {"a": 1, "b": 1}, {"a": 1.0, "b": 1.0}, budget=5
        )
        plan = CleaningPlan(operations={"a": 1})
        # Seed chosen so the revealed outcome is the null mass.
        outcome = execute_plan(db, problem, plan, rng=random.Random(1))
        record = outcome.records[0]
        assert record.succeeded
        if record.revealed_null:
            assert not outcome.cleaned_db.has_xtuple("a")
        else:
            assert outcome.cleaned_db.xtuple("a").is_certain

    def test_default_rng_is_deterministic(self, udb1):
        problem = _paper_problem(udb1)
        plan = CleaningPlan(operations={"S1": 2, "S3": 2})
        a = execute_plan(udb1, problem, plan)
        b = execute_plan(udb1, problem, plan)
        assert [r.revealed_tid for r in a.records] == [
            r.revealed_tid for r in b.records
        ]


class TestRealizedVsExpected:
    def test_monte_carlo_realized_improvement_matches_theorem2(self, udb1):
        """Average realized improvement over many executions must match
        the Theorem 2 expectation -- the end-to-end validation that the
        planning objective measures something real."""
        problem = _paper_problem(udb1, sc={"S1": 0.6, "S2": 0.4, "S3": 0.7, "S4": 0.5})
        plan = CleaningPlan(operations={"S1": 2, "S2": 1, "S3": 1})
        expected = expected_improvement(problem, plan)
        before = problem.quality
        rng = random.Random(2024)
        samples = []
        for _ in range(3000):
            outcome = execute_plan(udb1, problem, plan, rng=rng)
            after = compute_quality_tp(
                outcome.cleaned_db.ranked(), 2
            ).quality
            samples.append(after - before)
        mean = statistics.fmean(samples)
        stderr = statistics.stdev(samples) / len(samples) ** 0.5
        assert abs(mean - expected) < 4 * stderr + 1e-3

    @settings(max_examples=20, deadline=None)
    @given(cleaning_problems(max_xtuples=3, max_budget=6), st.integers(0, 5))
    def test_execution_never_spends_more_than_assigned(self, db_problem, seed):
        db, problem = db_problem
        candidates = problem.candidate_indices()
        if not candidates:
            return
        plan = CleaningPlan(
            operations={problem.xtuple_id(l): 2 for l in candidates}
        )
        outcome = execute_plan(db, problem, plan, rng=random.Random(seed))
        assert 0 <= outcome.cost_spent <= outcome.cost_assigned
        assert outcome.cleaned_db.num_xtuples <= db.num_xtuples

    @settings(max_examples=20, deadline=None)
    @given(cleaning_problems(max_xtuples=3, max_budget=6), st.integers(0, 5))
    def test_cleaned_database_remains_valid(self, db_problem, seed):
        db, problem = db_problem
        candidates = problem.candidate_indices()
        if not candidates:
            return
        plan = CleaningPlan(
            operations={problem.xtuple_id(l): 1 for l in candidates}
        )
        outcome = execute_plan(db, problem, plan, rng=random.Random(seed))
        # Re-ranking and re-scoring must succeed on the cleaned DB.
        quality = compute_quality_tp(outcome.cleaned_db.ranked(), problem.k)
        assert quality.quality <= 1e-9
