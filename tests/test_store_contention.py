"""Multi-writer safety of the snapshot store.

The ISSUE's acceptance bar: two processes hammering one store root
must end with zero quarantines, a bounded journal, and a fresh reopen
that matches an in-memory oracle to 1e-9.  ``fcntl.flock`` is per
open-file-description, so two :class:`StoreLock` / store handles in
*one* process contend exactly like two processes -- that is what makes
the lock-semantics tests here deterministic.  The real two-interpreter
convergence run lives in :class:`TestTwoProcessConvergence`; group
commit (batch durability) and the ``contend`` fault kind round out the
sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from conftest import assert_payloads_close
from repro.api.service import TopKService
from repro.api.specs import CleaningSpec, QuerySpec
from repro.datasets.synthetic import generate_synthetic
from repro.db.database import RankedDatabase
from repro.db.ranking import by_value
from repro.exceptions import StoreLockedError, StoreReadOnlyError
from repro.store import SnapshotStore, StoreLock
from repro.store.format import encode_lock_record
from repro.store.locks import boot_nonce
from repro.testing import FaultEvent, FaultPlan, use_faults

K = 5
QUERY_SPEC = QuerySpec(k=K)
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = str(REPO_ROOT / "src")


def small_db(seed: int = 3):
    return generate_synthetic(num_xtuples=20, seed=seed)


def ranked_db(seed: int = 3) -> RankedDatabase:
    return RankedDatabase(small_db(seed), by_value())


def dead_pid() -> int:
    """A PID that is (with overwhelming likelihood) no longer alive."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


# ---------------------------------------------------------------------------
# Lock semantics (deterministic, in-process)
# ---------------------------------------------------------------------------


class TestFileLock:
    def test_two_handles_contend_like_two_processes(self, tmp_path):
        first = StoreLock(tmp_path)
        second = StoreLock(tmp_path, timeout_ms=50.0)
        with first.exclusive():
            with pytest.raises(StoreLockedError) as excinfo:
                with second.exclusive():
                    pass
            message = str(excinfo.value)
            assert f"pid {os.getpid()}" in message
            assert "alive" in message
            assert "unlock --force" in message
        # Released: the second handle now acquires cleanly.
        with second.exclusive():
            assert second.held()

    def test_shared_readers_coexist(self, tmp_path):
        first = StoreLock(tmp_path)
        second = StoreLock(tmp_path, timeout_ms=50.0)
        with first.shared():
            with second.shared():
                assert first.held() and second.held()

    def test_shared_excludes_exclusive_and_vice_versa(self, tmp_path):
        reader = StoreLock(tmp_path)
        writer = StoreLock(tmp_path, timeout_ms=50.0)
        with reader.shared():
            with pytest.raises(StoreLockedError):
                with writer.exclusive():
                    pass
        with writer.exclusive():
            blocked = StoreLock(tmp_path, timeout_ms=50.0)
            with pytest.raises(StoreLockedError):
                with blocked.shared():
                    pass

    def test_bounded_wait_succeeds_after_release(self, tmp_path):
        holder = StoreLock(tmp_path)
        waiter = StoreLock(tmp_path, timeout_ms=5_000.0)
        entered = threading.Event()

        def hold_briefly():
            with holder.exclusive():
                entered.set()
                time.sleep(0.08)

        thread = threading.Thread(target=hold_briefly)
        thread.start()
        try:
            assert entered.wait(5.0)
            with waiter.exclusive():
                assert waiter.waits == 1
        finally:
            thread.join()

    def test_holder_reports_record_and_liveness(self, tmp_path):
        lock = StoreLock(tmp_path)
        assert lock.holder() is None
        with lock.exclusive():
            holder = lock.holder()
            assert holder is not None
            assert holder["pid"] == os.getpid()
            assert holder["mode"] == "exclusive"
            if boot_nonce():
                assert holder["alive"] is True

    def test_release_clears_the_holder_record(self, tmp_path):
        # A record that outlived its hold used to name the *last*
        # holder forever, steering operators at a lock that was free.
        # Release truncates it (while still holding the flock), so a
        # readable record always means a current or crashed holder.
        lock = StoreLock(tmp_path)
        with lock.exclusive():
            assert lock.holder() is not None
        assert lock.holder() is None
        # Shared holds never write a record to begin with.
        with lock.shared():
            assert lock.holder() is None
        assert lock.holder() is None

    def test_stale_record_is_reported_dead_and_breakable(self, tmp_path):
        nonce = boot_nonce()
        if not nonce:
            pytest.skip("no boot id on this host; liveness is unknown")
        lock = StoreLock(tmp_path)
        lock.path.write_bytes(
            encode_lock_record(
                {"pid": dead_pid(), "boot": nonce, "mode": "exclusive"}
            )
        )
        holder = lock.holder()
        assert holder is not None and holder["alive"] is False
        report = lock.force_break()
        assert report["broken"] is True
        assert lock.holder() is None

    def test_force_break_refuses_a_live_holder(self, tmp_path):
        nonce = boot_nonce()
        if not nonce:
            pytest.skip("no boot id on this host; liveness is unknown")
        lock = StoreLock(tmp_path)
        lock.path.write_bytes(
            encode_lock_record(
                {"pid": os.getpid(), "boot": nonce, "mode": "exclusive"}
            )
        )
        report = lock.force_break()
        assert report["broken"] is False
        assert lock.holder() is not None

    def test_foreign_boot_liveness_is_unknown(self, tmp_path):
        lock = StoreLock(tmp_path)
        lock.path.write_bytes(
            encode_lock_record(
                {"pid": 1, "boot": "some-other-boot", "mode": "exclusive"}
            )
        )
        holder = lock.holder()
        assert holder is not None and holder["alive"] is None


# ---------------------------------------------------------------------------
# Store-level locking modes
# ---------------------------------------------------------------------------


class TestStoreModes:
    def test_open_is_shed_typed_while_writer_holds_the_lock(self, tmp_path):
        root = tmp_path / "store"
        SnapshotStore(root)  # creates the directory layout
        external = StoreLock(root)
        with external.exclusive():
            with pytest.raises(StoreLockedError):
                SnapshotStore(root, lock_timeout_ms=50.0)
            # Readers are shed too: recovery needs the shared lock.
            with pytest.raises(StoreLockedError):
                SnapshotStore(root, mode="readonly", lock_timeout_ms=50.0)

    def test_readonly_open_coexists_with_readers(self, tmp_path):
        root = tmp_path / "store"
        store = SnapshotStore(root)
        store.persist("s1", ranked_db())
        external = StoreLock(root)
        with external.shared():
            reader = SnapshotStore(
                root, mode="readonly", lock_timeout_ms=200.0
            )
            assert reader.has_segment("s1")

    def test_readonly_mode_rejects_every_write(self, tmp_path):
        root = tmp_path / "store"
        SnapshotStore(root).persist("s1", ranked_db())
        reader = SnapshotStore(root, durability="none", mode="readonly")
        with pytest.raises(StoreReadOnlyError):
            reader.persist("s2", ranked_db(4))
        with pytest.raises(StoreReadOnlyError):
            reader.journal_clean("s1", {"k": K}, "s2", "hash")
        with pytest.raises(StoreReadOnlyError):
            reader.checkpoint()
        with pytest.raises(StoreReadOnlyError):
            reader.gc()

    def test_lock_waits_surface_as_a_counter(self, tmp_path):
        root = tmp_path / "store"
        SnapshotStore(root)
        external = StoreLock(root)
        entered = threading.Event()

        def hold_briefly():
            with external.shared():
                entered.set()
                time.sleep(0.08)

        thread = threading.Thread(target=hold_briefly)
        thread.start()
        try:
            assert entered.wait(5.0)
            store = SnapshotStore(root, lock_timeout_ms=5_000.0)
            assert store.counters()["psr_store_lock_waits"] >= 1
        finally:
            thread.join()

    def test_status_lock_holder_clears_between_operations(self, tmp_path):
        root = tmp_path / "store"
        store = SnapshotStore(root)
        store.persist("s1", ranked_db())
        status = store.status()
        # Between operations nobody holds the flock and the release
        # cleared the record: a non-None holder in status always means
        # an operation in flight or a holder that crashed, never a
        # writer that finished long ago.
        assert status["lock_holder"] is None
        assert status["segment_files"] == 1
        assert status["segment_bytes"] > 0
        assert status["tombstones"] == 0


# ---------------------------------------------------------------------------
# Group commit (durability="batch")
# ---------------------------------------------------------------------------


class TestGroupCommit:
    def append_records(self, store: SnapshotStore, n: int = 8) -> None:
        for i in range(n):
            store.journal_clean(
                "base", {"k": K, "i": i}, f"outcome{i}", f"hash{i}"
            )

    def test_batch_coalesces_journal_fsyncs(self, tmp_path):
        strict = SnapshotStore(tmp_path / "strict", durability="fsync")
        self.append_records(strict)
        assert strict.journal_fsyncs == 8

        batch = SnapshotStore(
            tmp_path / "batch",
            durability="batch",
            flush_interval_ms=60_000.0,
        )
        self.append_records(batch)
        # Nothing forced a sync yet; the read barrier flushes once.
        records = batch.journal_records()
        assert len(records) == 8
        assert batch.journal_fsyncs < strict.journal_fsyncs
        assert batch.counters()["psr_store_group_flushes"] >= 1
        # Batch trades latency, never content: the journals are
        # byte-identical once flushed.
        strict_bytes = (tmp_path / "strict" / "journal.wal").read_bytes()
        batch_bytes = (tmp_path / "batch" / "journal.wal").read_bytes()
        assert strict_bytes == batch_bytes

    def test_zero_interval_flushes_every_append(self, tmp_path):
        batch = SnapshotStore(
            tmp_path / "store", durability="batch", flush_interval_ms=0.0
        )
        self.append_records(batch, n=3)
        assert batch.journal_fsyncs == 3
        assert batch.counters()["psr_store_group_flushes"] == 3

    def test_persist_is_a_flush_barrier(self, tmp_path):
        batch = SnapshotStore(
            tmp_path / "store",
            durability="batch",
            flush_interval_ms=60_000.0,
        )
        batch.journal_clean("base", {"k": K}, "outcome", "hash")
        assert batch.journal_fsyncs == 0
        # WAL rule: the journal record must be durable before its
        # outcome segment commits.
        batch.persist("outcome-segment", ranked_db())
        assert batch.journal_fsyncs >= 1

    def test_strict_alias_and_default_are_fsync(self, tmp_path):
        assert SnapshotStore(tmp_path / "a").durability == "fsync"
        assert (
            SnapshotStore(tmp_path / "b", durability="strict").durability
            == "fsync"
        )

    def test_batch_journal_recovers_after_reopen(self, tmp_path):
        root = tmp_path / "store"
        batch = SnapshotStore(
            root, durability="batch", flush_interval_ms=60_000.0
        )
        batch.journal_clean("base", {"k": K}, "outcome", "hash")
        batch.journal_records()  # flush barrier
        reopened = SnapshotStore(root, durability="none")
        assert [r["outcome"] for r in reopened.journal_records()] == [
            "outcome"
        ]


# ---------------------------------------------------------------------------
# The "contend" fault kind: a second interpreter at an exact step
# ---------------------------------------------------------------------------


class TestContendFault:
    def test_second_process_is_shed_typed_mid_persist(self, tmp_path):
        root = tmp_path / "store"
        marker = tmp_path / "probe.json"
        store = SnapshotStore(root)
        command = textwrap.dedent(
            f"""
            import json, sys
            sys.path.insert(0, {SRC_DIR!r})
            from repro.exceptions import StoreLockedError
            from repro.store import SnapshotStore
            try:
                SnapshotStore({str(root)!r}, lock_timeout_ms=200.0)
            except StoreLockedError as exc:
                report = {{"locked": True, "message": str(exc)}}
            else:
                report = {{"locked": False}}
            with open({str(marker)!r}, "w") as f:
                json.dump(report, f)
            """
        )
        plan = FaultPlan(
            [
                FaultEvent(
                    kind="contend", step="segment:written", command=command
                )
            ]
        )
        with use_faults(plan):
            assert store.persist("s1", ranked_db())
        assert plan.drawn, "contend fault never fired"
        probe = json.loads(marker.read_text())
        # The second interpreter hit the held writer lock exactly
        # mid-write and failed *typed*, naming the live holder.
        assert probe["locked"] is True
        assert f"pid {os.getpid()}" in probe["message"]
        # The write itself was untouched by the contention.
        assert store.has_segment("s1")


# ---------------------------------------------------------------------------
# The acceptance bar: two real processes, one root
# ---------------------------------------------------------------------------

CHILD_SCRIPT = """
import sys

sys.path.insert(0, sys.argv[1])

from repro.api.service import TopKService
from repro.api.specs import CleaningSpec
from repro.datasets.synthetic import generate_synthetic

root = sys.argv[2]
seeds = [int(s) for s in sys.argv[3:]]
service = TopKService(store_dir=root)
base = service.register(
    generate_synthetic(num_xtuples=20, seed=3)
).snapshot_id
for seed in seeds:
    service.clean(
        base, CleaningSpec(k=5, budget=40, execute=True, seed=seed)
    )
"""


class TestTwoProcessConvergence:
    def test_two_writers_converge_with_bounded_journal(self, tmp_path):
        root = tmp_path / "store"
        # Overlapping seed sets: both children register the same base
        # (idempotent adoption) and child B re-derives one of child
        # A's outcomes (content-addressed adoption under contention).
        seeds_a = [11, 12, 13]
        seeds_b = [13, 14, 15]
        env = dict(os.environ)
        env.pop("REPRO_FAULTS", None)
        env["REPRO_JOURNAL_MAX_RECORDS"] = "3"
        children = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    CHILD_SCRIPT,
                    SRC_DIR,
                    str(root),
                    *[str(s) for s in seeds],
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for seeds in (seeds_a, seeds_b)
        ]
        for child in children:
            _, stderr = child.communicate(timeout=240)
            assert child.returncode == 0, stderr

        # The fault-free oracle: one in-memory service, same workload.
        oracle = TopKService()
        base_id = oracle.register(small_db()).snapshot_id
        expected = {}
        for seed in sorted(set(seeds_a) | set(seeds_b)):
            spec = CleaningSpec(k=K, budget=40, execute=True, seed=seed)
            outcome = oracle.clean(base_id, spec).payload["new_snapshot_id"]
            expected[outcome] = oracle.query(outcome, QUERY_SPEC).payload

        reopened = TopKService(store_dir=root, durability="none")
        # Zero quarantines, nothing left to replay.
        assert reopened.store.recovery.quarantined == ()
        assert reopened.store.pending_cleanings() == []
        # The journal stayed bounded by the checkpoint threshold.
        assert len(reopened.store.journal_records()) <= 3
        # Every outcome both processes produced is present and agrees
        # with the oracle to 1e-9.
        loaded = set(reopened.store.recovery.loaded)
        assert {base_id, *expected} <= loaded
        for outcome_id, payload in expected.items():
            assert_payloads_close(
                reopened.query(outcome_id, QUERY_SPEC).payload, payload
            )

    def test_mid_compaction_crash_under_contention_stays_consistent(
        self, tmp_path
    ):
        # One writer is armed to die mid-compaction (after the rewrite
        # hit the temp file, before the rename committed) while a
        # clean writer races it on the same root.  Whichever records
        # were acknowledged must survive, uncorrupted, and replay to
        # the oracle's answers.
        root = tmp_path / "store"
        seeds_a = [21, 22, 23]
        seeds_b = [24, 25, 26]
        env = dict(os.environ)
        env.pop("REPRO_FAULTS", None)
        env["REPRO_JOURNAL_MAX_RECORDS"] = "2"
        env_armed = dict(env)
        env_armed["REPRO_FAULTS"] = json.dumps(
            {"events": [{"kind": "crash", "step": "checkpoint:written"}]}
        )
        children = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    CHILD_SCRIPT,
                    SRC_DIR,
                    str(root),
                    *[str(s) for s in seeds],
                ],
                env=child_env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for seeds, child_env in ((seeds_a, env_armed), (seeds_b, env))
        ]
        stderrs = []
        for child in children:
            _, stderr = child.communicate(timeout=240)
            stderrs.append(stderr)
        # The unfaulted writer must finish; the armed one either died
        # at the injected step or never compacted (the other process
        # got there first) -- both are legal outcomes under contention.
        assert children[1].returncode == 0, stderrs[1]
        if children[0].returncode != 0:
            assert "SimulatedCrashError" in stderrs[0]

        oracle = TopKService()
        base_id = oracle.register(small_db()).snapshot_id
        expected = {}
        for seed in seeds_a + seeds_b:
            spec = CleaningSpec(k=K, budget=40, execute=True, seed=seed)
            outcome = oracle.clean(base_id, spec).payload["new_snapshot_id"]
            expected[outcome] = oracle.query(outcome, QUERY_SPEC).payload

        reopened = TopKService(store_dir=root, durability="none")
        # The crash corrupted nothing: no quarantine, no torn journal,
        # every acknowledged cleaning either durable or replayed.
        assert reopened.store.recovery.quarantined == ()
        assert reopened.store.recovery.journal_truncated_bytes == 0
        assert reopened.store.pending_cleanings() == []
        present = set(reopened.store.recovery.loaded) & set(expected)
        # The clean writer's three outcomes are all durable (the dead
        # writer's are whatever it acknowledged before dying).
        assert len(present) >= 3
        for outcome_id in present:
            assert_payloads_close(
                reopened.query(outcome_id, QUERY_SPEC).payload,
                expected[outcome_id],
            )
        # Compaction still bounds the journal after the dust settles.
        reopened.store.checkpoint()
        reopened.store.checkpoint()  # retires any tombstones
        assert reopened.store.journal_records() == []
