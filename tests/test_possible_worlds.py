"""Unit and property tests for possible-world semantics."""

import math
import random

import pytest
from hypothesis import given, settings

from repro.db.database import ProbabilisticDatabase
from repro.db.possible_worlds import (
    iter_worlds,
    sample_world,
    world_probability,
)
from repro.db.tuples import make_xtuple

from strategies import databases


class TestIterWorlds:
    def test_paper_world_probability(self, udb1):
        # The paper: W = {t0, t3, t4, t6} has probability 0.072.
        target = frozenset({"t0", "t3", "t4", "t6"})
        worlds = {
            frozenset(t.tid for t in w.real_tuples): w.probability
            for w in iter_worlds(udb1)
        }
        assert worlds[target] == pytest.approx(0.072)

    def test_complete_database_world_count(self, udb1):
        worlds = list(iter_worlds(udb1))
        assert len(worlds) == 8
        assert all(len(w.real_tuples) == 4 for w in worlds)

    def test_incomplete_database_includes_null_worlds(self):
        db = ProbabilisticDatabase(
            [make_xtuple("a", [("t0", 1.0, 0.25), ("t1", 2.0, 0.25)])]
        )
        worlds = list(iter_worlds(db))
        assert len(worlds) == 3
        null_world = next(w for w in worlds if not w.real_tuples)
        assert null_world.probability == pytest.approx(0.5)

    def test_contains(self, udb1):
        world = next(iter_worlds(udb1))
        present = world.real_tuples[0].tid
        assert present in world
        assert "definitely-not" not in world


class TestWorldProbability:
    def test_explicit_selection(self, udb1):
        p = world_probability(udb1, ["t0", "t3", "t4", "t6"])
        assert p == pytest.approx(0.072)

    def test_null_selection(self):
        db = ProbabilisticDatabase(
            [make_xtuple("a", [("t0", 1.0, 0.25)])]
        )
        assert world_probability(db, [None]) == pytest.approx(0.75)
        assert world_probability(db, ["t0"]) == pytest.approx(0.25)

    def test_wrong_length_rejected(self, udb1):
        with pytest.raises(ValueError):
            world_probability(udb1, ["t0"])

    def test_unknown_member_rejected(self, udb1):
        with pytest.raises(ValueError):
            world_probability(udb1, ["t2", "t0", "t4", "t6"])


class TestWorldProperties:
    @settings(max_examples=60)
    @given(databases())
    def test_probabilities_sum_to_one(self, db):
        total = math.fsum(w.probability for w in iter_worlds(db))
        assert total == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=60)
    @given(databases())
    def test_each_world_picks_at_most_one_per_xtuple(self, db):
        for world in iter_worlds(db):
            assert len(world.choices) == db.num_xtuples
            for xt, choice in zip(db.xtuples, world.choices):
                if choice is not None:
                    assert choice.xtuple_id == xt.xid

    @settings(max_examples=30)
    @given(databases(complete=True))
    def test_complete_databases_have_no_null_choices(self, db):
        for world in iter_worlds(db):
            assert all(choice is not None for choice in world.choices)

    @settings(max_examples=20)
    @given(databases(max_xtuples=3, max_alternatives=2))
    def test_world_count_matches_formula(self, db):
        assert len(list(iter_worlds(db))) == db.num_possible_worlds()


class TestSampling:
    def test_sampling_matches_enumeration(self, udb1):
        rng = random.Random(123)
        counts = {}
        n = 20_000
        for _ in range(n):
            w = sample_world(udb1, rng)
            key = frozenset(t.tid for t in w.real_tuples)
            counts[key] = counts.get(key, 0) + 1
        exact = {
            frozenset(t.tid for t in w.real_tuples): w.probability
            for w in iter_worlds(udb1)
        }
        for key, probability in exact.items():
            observed = counts.get(key, 0) / n
            assert observed == pytest.approx(probability, abs=0.02)

    def test_sampled_world_probability_is_consistent(self, udb1):
        rng = random.Random(7)
        w = sample_world(udb1, rng)
        selection = [c.tid if c is not None else None for c in w.choices]
        assert w.probability == pytest.approx(
            world_probability(udb1, selection)
        )
