"""Runtime invariant checkers: frozen columns and lock-order tracking.

Two invariants the static rules cannot see are enforced at runtime and
tested here:

* The canonical columnar arrays of a :class:`RankedDatabase` are
  write-protected the moment a view is built (construction and the
  ``_patched`` delta path alike); in-place mutation -- the one bug
  class that silently corrupts every memoized PSR row derived from the
  view -- raises immediately.  :meth:`RankedDatabase.mutable_view` is
  the audited escape hatch and re-freezes on exit, even on error.
* The serving stack's lock hierarchy (admission < snapshot < registry
  < worker pool) is checked per-acquisition under
  ``REPRO_DEBUG_LOCKS=1`` / :func:`repro.core.lockcheck.enable`, so an
  inversion raises :class:`LockOrderError` at the inversion site
  instead of deadlocking once a month.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import lockcheck
from repro.core.lockcheck import (
    RANK_ADMISSION,
    RANK_POOL_REGISTRY,
    RANK_SNAPSHOT,
    RANK_WORKER_POOL,
    OrderedLock,
    OrderedSemaphore,
)
from repro.core.resilience import RetryPolicy
from repro.datasets.synthetic import generate_synthetic
from repro.db.database import CANONICAL_COLUMNS
from repro.exceptions import LockOrderError


@pytest.fixture
def ranked():
    return generate_synthetic(num_xtuples=12, seed=7).ranked()


@pytest.fixture
def tracking():
    """Lock-order tracking on for the test, off (and clean) afterwards."""
    lockcheck.enable()
    yield
    lockcheck.disable()


# ---------------------------------------------------------------------------
# Frozen canonical columns
# ---------------------------------------------------------------------------


class TestFrozenColumns:
    def test_every_canonical_column_is_write_protected(self, ranked):
        for column in CANONICAL_COLUMNS:
            array = getattr(ranked, column)
            assert not array.flags.writeable, column
            with pytest.raises(ValueError):
                array[0] = array[0]

    def test_patched_views_are_frozen_too(self, ranked):
        patched, _delta = ranked.with_xtuple_removed(ranked.xtuple_ids[0])
        for column in CANONICAL_COLUMNS:
            assert not getattr(patched, column).flags.writeable, column

    def test_mutable_view_grants_and_refreezes(self, ranked):
        before = ranked.scores_array.copy()
        with ranked.mutable_view("scores_array") as scores:
            scores[0] = before[0]  # write succeeds inside the window
        assert not ranked.scores_array.flags.writeable
        np.testing.assert_array_equal(ranked.scores_array, before)

    def test_mutable_view_refreezes_on_error(self, ranked):
        with pytest.raises(RuntimeError, match="boom"):
            with ranked.mutable_view("probabilities_array"):
                raise RuntimeError("boom")
        assert not ranked.probabilities_array.flags.writeable

    def test_mutable_view_rejects_non_canonical_names(self, ranked):
        with pytest.raises(ValueError, match="unknown canonical column"):
            with ranked.mutable_view("xtuple_ids"):
                pass


# ---------------------------------------------------------------------------
# Lock-order tracking
# ---------------------------------------------------------------------------


class TestLockOrder:
    def test_increasing_ranks_are_legal(self, tracking):
        outer = OrderedLock("t.snapshot", RANK_SNAPSHOT)
        inner = OrderedLock("t.registry", RANK_POOL_REGISTRY)
        with outer, inner:
            held = lockcheck.held_locks()
            assert [rank for rank, _ in held] == [
                RANK_SNAPSHOT,
                RANK_POOL_REGISTRY,
            ]
        assert lockcheck.held_locks() == []

    def test_inversion_raises_at_the_site(self, tracking):
        registry = OrderedLock("t.registry", RANK_POOL_REGISTRY)
        snapshot = OrderedLock("t.snapshot", RANK_SNAPSHOT)
        with registry:
            with pytest.raises(LockOrderError, match="strictly increasing"):
                snapshot.acquire()
        assert lockcheck.held_locks() == []

    def test_same_rank_is_an_inversion(self, tracking):
        a = OrderedLock("t.a", RANK_SNAPSHOT)
        b = OrderedLock("t.b", RANK_SNAPSHOT)
        with a:
            with pytest.raises(LockOrderError):
                b.acquire()

    def test_reacquisition_is_reported_not_deadlocked(self, tracking):
        lock = OrderedLock("t.lock", RANK_WORKER_POOL)
        with lock:
            with pytest.raises(LockOrderError, match="re-acquired"):
                lock.acquire()

    def test_semaphore_participates_in_the_hierarchy(self, tracking):
        admission = OrderedSemaphore("t.admission", RANK_ADMISSION, 2)
        snapshot = OrderedLock("t.snapshot", RANK_SNAPSHOT)
        assert admission.acquire(timeout=1.0)
        with snapshot:  # admission -> snapshot: declared order
            pass
        admission.release()
        with snapshot:
            with pytest.raises(LockOrderError):
                admission.acquire(timeout=1.0)

    def test_disabled_tracking_costs_nothing_and_checks_nothing(self):
        lockcheck.disable()
        registry = OrderedLock("t.registry", RANK_POOL_REGISTRY)
        snapshot = OrderedLock("t.snapshot", RANK_SNAPSHOT)
        with registry, snapshot:  # inverted, but tracking is off
            pass
        assert not lockcheck.tracking_enabled()

    def test_tracking_is_per_thread(self, tracking):
        registry = OrderedLock("t.registry", RANK_POOL_REGISTRY)
        errors = []

        def other_thread():
            snapshot = OrderedLock("t.snapshot", RANK_SNAPSHOT)
            try:
                with snapshot:
                    pass
            except LockOrderError as exc:  # pragma: no cover
                errors.append(exc)

        with registry:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert errors == []  # holdings are thread-local, not global


class TestPoolUnderTracking:
    def test_session_pool_respects_declared_order(self, ranked, tracking):
        from repro.api.pool import SessionPool

        pool = SessionPool(max_sessions=2)
        snapshot_id = pool.register(ranked)
        with pool.lease(snapshot_id) as session:
            assert session.ranked is ranked
        with pool.lease(snapshot_id):
            pass
        assert lockcheck.held_locks() == []


# ---------------------------------------------------------------------------
# Regressions flushed out by repro-lint
# ---------------------------------------------------------------------------


class TestLintFoundRegressions:
    def test_zero_jitter_policy_sleeps_the_full_backoff(self):
        # REP004 flagged `self.jitter == 0.0`; the float-equality rewrite
        # must keep the exact-zero fast path byte-for-byte.
        policy = RetryPolicy(backoff_ms=100.0, jitter=0.0)
        assert policy.backoff_s(2) == pytest.approx(0.1)
        jittered = RetryPolicy(backoff_ms=100.0, jitter=0.5)
        assert 0.05 <= jittered.backoff_s(2) <= 0.1

    def test_get_pool_is_race_free_under_contention(self):
        # REP009's audit of core/parallel.py surfaced unlocked mutation
        # of the module-level pool singleton; _get_pool now serializes
        # on the ranked worker-pool lock.  Hammer it from many threads:
        # every caller must see the same executor and exactly one pool
        # must exist afterwards.
        from repro.core import parallel

        parallel.shutdown_pool()
        results, errors = [], []
        barrier = threading.Barrier(8)

        def grab():
            try:
                barrier.wait(timeout=10)
                results.append(parallel._get_pool(2))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert errors == []
            assert len(results) == 8
            assert len({id(pool) for pool in results}) == 1
        finally:
            parallel.shutdown_pool()
