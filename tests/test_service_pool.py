"""SessionPool: LRU bounds, lease semantics, threaded stress test."""

import threading

import pytest

from repro.api import (
    BatchSpec,
    CleaningSpec,
    QualitySpec,
    QuerySpec,
    SessionPool,
    TopKService,
)
from repro.datasets.synthetic import generate_synthetic
from repro.exceptions import UnknownSnapshotError

from conftest import assert_payloads_close


class TestLRU:
    def _dbs(self, count):
        return [generate_synthetic(num_xtuples=6, seed=s) for s in range(count)]

    def test_session_count_bounded(self):
        pool = SessionPool(max_sessions=2)
        for db in self._dbs(5):
            sid = pool.register(db)
            with pool.lease(sid) as session:
                session.evaluate(3)
            assert pool.num_cached_sessions <= 2
        assert pool.num_cached_sessions == 2
        assert pool.num_snapshots == 5
        assert pool.evictions == 3

    def test_eviction_is_least_recently_used(self):
        pool = SessionPool(max_sessions=2)
        a, b, c = (pool.register(db) for db in self._dbs(3))
        with pool.lease(a):
            pass
        with pool.lease(b):
            pass
        with pool.lease(a):
            pass  # refresh a; b is now LRU
        with pool.lease(c):
            pass  # evicts b
        assert pool.session_misses == 3
        with pool.lease(a):
            pass
        assert pool.session_hits == 2  # a twice
        with pool.lease(b):
            pass  # cold again after eviction
        assert pool.session_misses == 4

    def test_evicted_session_rebuilds_with_same_answers(self):
        db = generate_synthetic(num_xtuples=8, seed=1)
        pool = SessionPool(max_sessions=1)
        sid = pool.register(db)
        with pool.lease(sid) as session:
            before = session.evaluate(4)
        other = pool.register(generate_synthetic(num_xtuples=6, seed=9))
        with pool.lease(other):
            pass  # evicts sid's session
        with pool.lease(sid) as session:
            after = session.evaluate(4)
        assert after.ptk.tids == before.ptk.tids
        assert after.quality.quality == pytest.approx(before.quality.quality)

    def test_min_sessions_validated(self):
        with pytest.raises(ValueError):
            SessionPool(max_sessions=0)

    def test_lease_of_unknown_snapshot(self):
        pool = SessionPool()
        with pytest.raises(UnknownSnapshotError):
            with pool.lease("snap-nope"):
                pass


class TestConcurrency:
    """N threads x mixed evaluate/clean on shared snapshots.

    Every threaded result must match the result the serial path
    produces for the same request, and the pool must stay within its
    LRU bound throughout.
    """

    THREADS = 8
    ROUNDS = 6

    @pytest.fixture(scope="class")
    def workload(self):
        dbs = [
            generate_synthetic(num_xtuples=12, seed=seed) for seed in (1, 2, 3)
        ]
        requests = []
        for i, db in enumerate(dbs):
            requests.append(("query", i, QuerySpec(k=4, threshold=0.2)))
            requests.append(("query", i, QuerySpec(k=9, semantics="ptk")))
            requests.append(("quality", i, QualitySpec(k=6)))
            requests.append(
                ("batch", i, BatchSpec(items=(QuerySpec(k=3), QualitySpec(k=8))))
            )
            requests.append(
                (
                    "clean",
                    i,
                    CleaningSpec(k=4, budget=6, cost_seed=i, sc_seed=i, seed=i),
                )
            )
        return dbs, requests

    @staticmethod
    def _run(service, sids, request):
        verb, db_index, spec = request
        return getattr(service, verb)(sids[db_index], spec)

    def test_threaded_matches_serial(self, workload):
        dbs, requests = workload

        serial = TopKService(max_sessions=16)
        serial_sids = [serial.register(db).snapshot_id for db in dbs]
        expected = [
            self._run(serial, serial_sids, request) for request in requests
        ]

        max_sessions = 3
        service = TopKService(max_sessions=max_sessions)
        sids = [service.register(db).snapshot_id for db in dbs]
        results = {}
        errors = []
        bound_violations = []
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_index):
            try:
                barrier.wait(timeout=30)
                for round_index in range(self.ROUNDS):
                    # Interleave differently per thread/round so leases
                    # collide on every snapshot.
                    offset = worker_index + round_index
                    for j in range(len(requests)):
                        index = (j + offset) % len(requests)
                        result = self._run(service, sids, requests[index])
                        results[(worker_index, round_index, index)] = result
                        cached = service.pool.num_cached_sessions
                        if cached > max_sessions:
                            bound_violations.append(cached)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not [t for t in threads if t.is_alive()], "threads hung"
        assert not errors, errors
        assert not bound_violations, bound_violations

        assert len(results) == self.THREADS * self.ROUNDS * len(requests)
        for (_, _, index), result in results.items():
            assert_payloads_close(
                result.payload, expected[index].payload
            )
            assert result.kind == expected[index].kind
            assert result.snapshot_id == expected[index].snapshot_id

        # The pool stayed bounded and every snapshot family (3 bases +
        # 3 cleaning outcomes) is still addressable.
        assert service.pool.num_cached_sessions <= max_sessions
        for result in expected:
            if result.kind == "clean":
                assert result.payload["new_snapshot_id"] in service.pool


class TestRetentionSweep:
    def test_lease_taken_mid_sweep_keeps_its_durable_segment(self, tmp_path):
        # The in-use set travels to the store as a callback evaluated
        # under the store's exclusive lock, so a lease that lands
        # after sweep_store() was entered (here: forced between the
        # sweep's start and the GC's victim selection) still protects
        # its segment from being tombstoned mid-lease.
        from repro.store import RetentionPolicy, SnapshotStore

        store = SnapshotStore(tmp_path / "store", durability="none")
        pool = SessionPool(store=store)
        snap = pool.register(generate_synthetic(num_xtuples=6, seed=1))
        pool.retention = RetentionPolicy(keep_last_n=0)

        real_gc = store.gc

        def gc_with_midsweep_lease(policy, in_use=()):
            with pool.lease(snap):
                return real_gc(policy, in_use=in_use)

        store.gc = gc_with_midsweep_lease  # type: ignore[method-assign]
        try:
            report = pool.sweep_store()
        finally:
            store.gc = real_gc

        assert report is not None
        assert report["tombstoned"] == []
        assert report["protected"] == [snap]
        assert store.has_segment(snap)
