"""Incremental delta engine: patched views and sessions vs cold rebuilds.

The delta machinery must be *indistinguishable* from recomputing from
scratch: the array-patched :class:`RankedDatabase` has to be bitwise
identical to a cold re-rank, and a delta-derived
:class:`~repro.queries.engine.QuerySession` has to agree with a cold
session to 1e-9 on rank probabilities, quality and all three query
answers -- under arbitrary chains of probe outcomes (collapse /
failure / revealed-null), on both backends.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.adaptive import clean_adaptively
from repro.cleaning.executor import execute_plan
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.model import build_cleaning_problem
from repro.core.tp import compute_quality_tp
from repro.datasets.synthetic import (
    generate_costs,
    generate_sc_probabilities,
    generate_synthetic,
)
from repro.db.database import ProbabilisticDatabase, RankedDatabase
from repro.queries.engine import QuerySession
from repro.queries.psr import (
    CHECKPOINT_INTERVAL,
    apply_rank_delta,
    compute_rank_probabilities,
)

from strategies import databases

ABS = 1e-9

#: Probe outcomes a chain step can take (revealed-null only fires on
#: incomplete x-tuples; the strategy falls back to collapse otherwise).
OUTCOMES = ("collapse", "failure", "null")


def _assert_ranked_equal(patched: RankedDatabase, cold: RankedDatabase):
    assert np.array_equal(patched.scores_array, cold.scores_array)
    assert np.array_equal(patched.probabilities_array, cold.probabilities_array)
    assert np.array_equal(
        patched.xtuple_indices_array, cold.xtuple_indices_array
    )
    assert np.array_equal(patched.insertion_array, cold.insertion_array)
    assert np.array_equal(patched.completion_array, cold.completion_array)
    assert patched.xtuple_ids == cold.xtuple_ids
    assert [t.tid for t in patched.order] == [t.tid for t in cold.order]
    assert patched.position == cold.position


@st.composite
def probe_chains(draw, max_steps: int = 4):
    """A random database plus a chain of probe outcomes to apply."""
    db = draw(databases(max_xtuples=5, min_xtuples=2))
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, 10 ** 6),  # x-tuple choice (mod live count)
                st.integers(0, 10 ** 6),  # alternative choice
                st.sampled_from(OUTCOMES),
            ),
            min_size=1,
            max_size=max_steps,
        )
    )
    k = draw(st.integers(1, min(db.num_tuples + 1, 6)))
    return db, steps, k


def _apply_chain_cold(db, steps):
    """The probe chain applied through the public cold constructors.

    Returns the list of databases after each *effective* step
    (failures keep the previous snapshot) together with the realized
    step descriptions for the delta side to mirror.
    """
    realized = []
    current = db
    for xt_choice, alt_choice, outcome in steps:
        if current.num_xtuples == 0:
            break
        xt = current.xtuples[xt_choice % current.num_xtuples]
        if outcome == "failure":
            realized.append(("failure", None, None))
            continue
        if outcome == "null" and not xt.is_complete:
            current = ProbabilisticDatabase(
                [x for x in current.xtuples if x.xid != xt.xid],
                name=current.name,
            )
            realized.append(("null", xt.xid, None))
            continue
        tid = xt.alternatives[alt_choice % len(xt.alternatives)].tid
        current = current.with_xtuple_replaced(xt.xid, xt.collapsed_to(tid))
        realized.append(("collapse", xt.xid, tid))
    return current, realized


class TestRankedPatching:
    @settings(max_examples=60, deadline=None)
    @given(probe_chains())
    def test_patched_view_matches_cold_rerank(self, chain):
        db, steps, _ = chain
        ranked = db.ranked()
        cold_db, realized = _apply_chain_cold(db, steps)
        for outcome, xid, tid in realized:
            if outcome == "failure":
                continue
            if outcome == "null":
                ranked, _ = ranked.with_xtuple_removed(xid)
            else:
                xt = ranked.db.xtuple(xid)
                ranked, _ = ranked.with_xtuple_replaced(
                    xid, xt.collapsed_to(tid)
                )
        _assert_ranked_equal(ranked, cold_db.ranked())

    def test_uncertain_single_alternative_replacement_not_collapsed(self):
        # Same tid/value but probability < 1: must take the general
        # path, not the collapse fast path that pins probability to 1.
        from repro.db.tuples import make_xtuple

        db = generate_synthetic(num_xtuples=20, seed=4)
        ranked = db.ranked()
        xt = db.xtuples[5]
        first = xt.alternatives[0]
        replacement = make_xtuple(xt.xid, [(first.tid, first.value, 0.6)])
        patched, _ = ranked.with_xtuple_replaced(xt.xid, replacement)
        cold = db.with_xtuple_replaced(xt.xid, replacement).ranked()
        _assert_ranked_equal(patched, cold)
        row = patched.rank_of(first.tid)
        assert patched.probabilities_array[row] == 0.6

    def test_general_replacement_with_new_tuples(self):
        # Not a collapse: the replacement brings fresh tids/values, so
        # the searchsorted insert path runs (ties included).
        from repro.db.tuples import make_xtuple

        db = generate_synthetic(num_xtuples=30, seed=1)
        ranked = db.ranked()
        xid = db.xtuples[7].xid
        replacement = make_xtuple(
            xid,
            [(f"{xid}.n0", 5000.0, 0.5), (f"{xid}.n1", 1.0, 0.5)],
        )
        patched, delta = ranked.with_xtuple_replaced(xid, replacement)
        cold = db.with_xtuple_replaced(xid, replacement).ranked()
        _assert_ranked_equal(patched, cold)
        assert delta.inserted_rows.size == 2

    def test_delta_window_bounds(self):
        db = generate_synthetic(num_xtuples=50, seed=2)
        ranked = db.ranked()
        xt = db.xtuples[20]
        patched, delta = ranked.with_xtuple_replaced(
            xt.xid, xt.collapsed_to(xt.alternatives[3].tid)
        )
        assert delta.window_start == int(delta.removed_rows[0])
        # Complete x-tuple + certain replacement: the scans re-coincide
        # right after the member span.
        assert delta.tail_old == int(delta.removed_rows[-1]) + 1
        assert delta.tail_new == delta.tail_old + delta.row_offset
        # Rows above the window and below the tail are untouched.
        n_new = patched.num_tuples
        assert np.array_equal(
            patched.scores_array[: delta.window_start],
            ranked.scores_array[: delta.window_start],
        )
        assert np.array_equal(
            patched.scores_array[delta.tail_new :],
            ranked.scores_array[delta.tail_old :],
        )

    def test_incomplete_xtuple_has_no_tail(self):
        db = generate_synthetic(num_xtuples=40, completion=0.8, seed=3)
        ranked = db.ranked()
        xt = db.xtuples[10]
        _, delta = ranked.with_xtuple_replaced(
            xt.xid, xt.collapsed_to(xt.alternatives[0].tid)
        )
        assert delta.tail_old is None and delta.tail_new is None
        _, removal = ranked.with_xtuple_removed(xt.xid)
        assert removal.tail_old is None
        assert removal.new_index is None
        assert removal.map_xtuple_index(removal.old_index + 1) == (
            removal.old_index
        )


class TestDeltaPSR:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    @settings(max_examples=40, deadline=None)
    @given(probe_chains())
    def test_chained_deltas_match_cold_psr(self, backend, chain):
        db, steps, k = chain
        ranked = db.ranked()
        rank_probs = compute_rank_probabilities(ranked, k, backend=backend)
        _, realized = _apply_chain_cold(db, steps)
        for outcome, xid, tid in realized:
            if outcome == "failure":
                continue
            if outcome == "null":
                ranked, delta = ranked.with_xtuple_removed(xid)
            else:
                xt = ranked.db.xtuple(xid)
                ranked, delta = ranked.with_xtuple_replaced(
                    xid, xt.collapsed_to(tid)
                )
            rank_probs = apply_rank_delta(rank_probs, delta, backend=backend)
        cold = compute_rank_probabilities(ranked, k, backend=backend)
        assert rank_probs.cutoff == cold.cutoff
        assert rank_probs.topk_prefix == pytest.approx(
            cold.topk_prefix, abs=ABS
        )
        assert rank_probs.rho_prefix == pytest.approx(cold.rho_prefix, abs=ABS)

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    @pytest.mark.parametrize("completion", [1.0, 0.85])
    def test_checkpoint_restore_beyond_interval(self, backend, completion):
        # n >> CHECKPOINT_INTERVAL so the delta resumes mid-scan from a
        # stored checkpoint instead of replaying from the top.
        db = generate_synthetic(
            num_xtuples=60, completion=completion, seed=5
        )
        ranked = db.ranked()
        assert ranked.num_tuples > 2 * CHECKPOINT_INTERVAL
        k = 40
        rank_probs = compute_rank_probabilities(ranked, k, backend=backend)
        assert rank_probs.checkpoints  # recorded during the full pass
        rng = random.Random(11)
        for _ in range(4):
            xid = rng.choice(
                [x.xid for x in ranked.db.xtuples if len(x.alternatives) > 1]
            )
            xt = ranked.db.xtuple(xid)
            tid = rng.choice([t.tid for t in xt.alternatives])
            ranked, delta = ranked.with_xtuple_replaced(
                xid, xt.collapsed_to(tid)
            )
            rank_probs = apply_rank_delta(rank_probs, delta, backend=backend)
        cold = compute_rank_probabilities(ranked, k, backend=backend)
        assert rank_probs.cutoff == cold.cutoff
        assert rank_probs.topk_prefix == pytest.approx(
            cold.topk_prefix, abs=ABS
        )
        assert rank_probs.rho_prefix == pytest.approx(cold.rho_prefix, abs=ABS)

    def test_delta_from_foreign_view_rejected(self):
        db = generate_synthetic(num_xtuples=10, seed=6)
        ranked = db.ranked()
        other = db.ranked()
        rank_probs = compute_rank_probabilities(other, 5)
        xt = db.xtuples[0]
        _, delta = ranked.with_xtuple_replaced(
            xt.xid, xt.collapsed_to(xt.alternatives[0].tid)
        )
        with pytest.raises(ValueError):
            apply_rank_delta(rank_probs, delta)


class TestDeltaSessions:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    @settings(max_examples=25, deadline=None)
    @given(probe_chains())
    def test_delta_sessions_match_cold_sessions(self, backend, chain):
        db, steps, k = chain
        session = QuerySession(db, backend=backend)
        session.quality(k)
        _, realized = _apply_chain_cold(db, steps)
        for outcome, xid, tid in realized:
            if outcome == "failure":
                continue
            if outcome == "null":
                new_ranked, delta = session.ranked.with_xtuple_removed(xid)
            else:
                xt = session.db.xtuple(xid)
                new_ranked, delta = session.ranked.with_xtuple_replaced(
                    xid, xt.collapsed_to(tid)
                )
            session = session.derive(new_ranked, delta=delta)
        cold = QuerySession(session.db, backend=backend)
        assert session.quality(k).quality == pytest.approx(
            cold.quality(k).quality, abs=ABS
        )
        patched_rp = session.rank_probabilities(k)
        cold_rp = cold.rank_probabilities(k)
        assert patched_rp.cutoff == cold_rp.cutoff
        assert patched_rp.topk_prefix == pytest.approx(
            cold_rp.topk_prefix, abs=ABS
        )
        assert patched_rp.rho_prefix == pytest.approx(
            cold_rp.rho_prefix, abs=ABS
        )
        # Answers compare by their defining probabilities, not by tids:
        # the two paths agree to 1e-9, and winners picked by exact
        # argmax / threshold comparisons may legitimately flip between
        # tuples whose values tie within that tolerance.
        mine_ranks = {
            w.rank: w.probability for w in session.ukranks(k).winners
        }
        theirs_ranks = {
            w.rank: w.probability for w in cold.ukranks(k).winners
        }
        for rank in set(mine_ranks) | set(theirs_ranks):
            assert mine_ranks.get(rank, 0.0) == pytest.approx(
                theirs_ranks.get(rank, 0.0), abs=ABS
            )
        threshold = 0.25
        mine_ptk = dict(session.ptk(k, threshold).members)
        theirs_ptk = dict(cold.ptk(k, threshold).members)
        for tid in set(mine_ptk).symmetric_difference(theirs_ptk):
            topk = mine_ptk.get(tid, theirs_ptk.get(tid))
            assert topk == pytest.approx(threshold, abs=ABS)
        assert [p for _, p in session.global_topk(k).members] == pytest.approx(
            [p for _, p in cold.global_topk(k).members], abs=ABS
        )
        assert session.g_by_xtuple(k) == pytest.approx(
            cold.g_by_xtuple(k), abs=ABS
        )

    def test_check_support_fires_on_cached_quality(self):
        from repro.db.tuples import make_xtuple
        from repro.exceptions import InvalidQueryError

        db = ProbabilisticDatabase(
            [
                make_xtuple("a", [("t1", 9.0, 0.5)]),
                make_xtuple("b", [("t2", 8.0, 0.5)]),
            ]
        )
        session = QuerySession(db)
        session.quality(2)  # seed the cache without the check
        with pytest.raises(InvalidQueryError):
            session.quality(2, check_support=True)

    def test_patched_view_rejects_duplicate_foreign_tid(self):
        from repro.db.tuples import make_xtuple
        from repro.exceptions import InvalidDatabaseError

        db = generate_synthetic(num_xtuples=5, seed=8)
        ranked = db.ranked()
        foreign_tid = db.xtuples[1].alternatives[0].tid
        replacement = make_xtuple(
            db.xtuples[0].xid, [(foreign_tid, 1.0, 0.4)]
        )
        with pytest.raises(InvalidDatabaseError):
            ranked.with_xtuple_replaced(db.xtuples[0].xid, replacement)

    def test_counters_accumulate_along_the_chain(self, udb1):
        session = QuerySession(udb1)
        session.quality(2)
        xt = udb1.xtuple("S3")
        new_ranked, delta = session.ranked.with_xtuple_replaced(
            "S3", xt.collapsed_to("t5")
        )
        derived = session.derive(new_ranked, delta=delta)
        assert derived.delta_derives == 1
        assert derived.psr_patches == 1
        assert derived.psr_misses == session.psr_misses == 1
        derived.quality(2)  # patched: no new full pass
        assert derived.psr_misses == 1
        cold = derived.derive(udb1)
        assert cold.cold_derives == 1
        assert cold.delta_derives == 1

    def test_derive_rejects_mismatched_delta(self, udb1):
        session = QuerySession(udb1)
        xt = udb1.xtuple("S3")
        new_ranked, delta = session.ranked.with_xtuple_replaced(
            "S3", xt.collapsed_to("t5")
        )
        other = QuerySession(udb1)
        with pytest.raises(ValueError):
            other.derive(new_ranked, delta=delta)
        unrelated = ProbabilisticDatabase(udb1.xtuples, name="copy")
        with pytest.raises(ValueError):
            session.derive(unrelated, delta=delta)


class TestCleaningDeltaPath:
    def _setup(self, completion=1.0, budget=12, m=40):
        db = generate_synthetic(num_xtuples=m, completion=completion, seed=9)
        costs = generate_costs(db, seed=1)
        sc = generate_sc_probabilities(db, seed=2)
        session = QuerySession(db)
        problem = build_cleaning_problem(
            session.quality(10), costs, sc, budget
        )
        return db, session, problem

    @pytest.mark.parametrize("completion", [1.0, 0.8])
    def test_executor_delta_path_matches_cold_path(self, completion):
        db, session, problem = self._setup(completion=completion)
        plan = GreedyCleaner().plan(problem)
        delta_outcome = execute_plan(
            db, problem, plan, rng=random.Random(4), session=session,
            use_deltas=True,
        )
        cold_outcome = execute_plan(
            db, problem, plan, rng=random.Random(4), session=None
        )
        # Identical rng stream => identical probe records and content.
        assert delta_outcome.records == cold_outcome.records
        assert delta_outcome.cost_spent == cold_outcome.cost_spent
        assert [xt.xid for xt in delta_outcome.cleaned_db.xtuples] == [
            xt.xid for xt in cold_outcome.cleaned_db.xtuples
        ]
        assert delta_outcome.session is not None
        assert delta_outcome.session.db is delta_outcome.cleaned_db
        quality = delta_outcome.session.quality(10).quality
        cold_quality = compute_quality_tp(
            cold_outcome.cleaned_db.ranked(), 10
        ).quality
        assert quality == pytest.approx(cold_quality, abs=ABS)
        if delta_outcome.num_succeeded:
            assert delta_outcome.session.psr_patches > 0

    def test_foreign_session_falls_back_to_cold_derive(self):
        # A session over a different database must not hijack the delta
        # path; probes apply to ``db`` and the outcome session derives
        # cold, exactly as before the incremental engine.
        db, _, problem = self._setup()
        other_db = ProbabilisticDatabase(db.xtuples, name="twin")
        foreign = QuerySession(other_db)
        plan = GreedyCleaner().plan(problem)
        outcome = execute_plan(
            db, problem, plan, rng=random.Random(4), session=foreign,
            use_deltas=True,
        )
        baseline = execute_plan(db, problem, plan, rng=random.Random(4))
        assert outcome.records == baseline.records
        assert outcome.session is not None
        assert outcome.session.db is outcome.cleaned_db
        assert outcome.session.psr_patches == 0

    def test_adaptive_delta_run_is_one_full_pass(self):
        db, session, problem = self._setup(budget=15)
        result = clean_adaptively(
            db,
            problem,
            GreedyCleaner(),
            rng=random.Random(7),
            session=session,
            use_deltas=True,
        )
        assert result.session is not None
        # One full PSR pass for the whole run; every successful probe
        # shows up as a patch instead.
        assert result.session.psr_misses == 1
        succeeded = sum(r.outcome.num_succeeded for r in result.rounds)
        assert result.session.psr_patches == succeeded
        cold = compute_quality_tp(result.final_db.ranked(), 10).quality
        assert result.final_quality == pytest.approx(cold, abs=ABS)

    def test_adaptive_delta_and_cold_agree(self):
        db, session, problem = self._setup(budget=15)
        delta_run = clean_adaptively(
            db, problem, GreedyCleaner(), rng=random.Random(3),
            session=session, use_deltas=True,
        )
        db2, session2, problem2 = self._setup(budget=15)
        cold_run = clean_adaptively(
            db2, problem2, GreedyCleaner(), rng=random.Random(3),
            session=session2, use_deltas=False,
        )
        assert len(delta_run.rounds) == len(cold_run.rounds)
        assert delta_run.budget_spent == cold_run.budget_spent
        assert delta_run.final_quality == pytest.approx(
            cold_run.final_quality, abs=ABS
        )
        assert cold_run.session.psr_misses > delta_run.session.psr_misses

    def test_runs_reproducible_under_seeded_rng(self):
        db, session, problem = self._setup(budget=15)
        first = clean_adaptively(
            db, problem, GreedyCleaner(), rng=random.Random(21),
            session=session, use_deltas=True,
        )
        db2, session2, problem2 = self._setup(budget=15)
        second = clean_adaptively(
            db2, problem2, GreedyCleaner(), rng=random.Random(21),
            session=session2, use_deltas=True,
        )
        assert [r.outcome.records for r in first.rounds] == [
            r.outcome.records for r in second.rounds
        ]
        assert first.final_quality == second.final_quality
