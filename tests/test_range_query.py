"""Range-query quality and cleaning (the [16] lineage, extension)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.dp import DPCleaner
from repro.cleaning.greedy import GreedyCleaner
from repro.cleaning.improvement import expected_improvement, success_probability
from repro.cleaning.model import CleaningPlan
from repro.exceptions import InvalidQueryError
from repro.queries.range_query import (
    answer_range_query,
    build_range_cleaning_problem,
    compute_quality_range,
    compute_quality_range_bruteforce,
)

from strategies import databases


class TestAnswer:
    def test_udb1_range(self, udb1):
        answer = answer_range_query(udb1, 25.0, 30.0)
        # Values in [25, 30]: t2 (30), t4 (25), t5 (27), t6 (26).
        assert set(answer.tids) == {"t2", "t4", "t5", "t6"}
        probabilities = dict(answer.members)
        assert probabilities["t2"] == 0.7
        assert probabilities["t6"] == 1.0
        assert "t2" in answer
        assert "t0" not in answer
        assert len(answer) == 4

    def test_empty_range(self, udb1):
        assert len(answer_range_query(udb1, 100.0, 200.0)) == 0

    def test_invalid_bounds_rejected(self, udb1):
        with pytest.raises(InvalidQueryError):
            answer_range_query(udb1, 5.0, 1.0)
        with pytest.raises(InvalidQueryError):
            compute_quality_range(udb1, float("nan"), 1.0)


class TestQuality:
    def test_udb1_closed_form_matches_bruteforce(self, udb1):
        result = compute_quality_range(udb1, 25.0, 30.0)
        brute = compute_quality_range_bruteforce(udb1, 25.0, 30.0)
        assert result.quality == pytest.approx(brute, abs=1e-9)

    def test_certain_in_range_entity_contributes_zero(self, udb1):
        result = compute_quality_range(udb1, 25.0, 30.0)
        g = dict(zip((xt.xid for xt in udb1.xtuples), result.g_by_xtuple))
        assert g["S4"] == 0.0  # t6 certain and in range: no ambiguity

    def test_entity_fully_outside_range_contributes_zero(self, udb1):
        result = compute_quality_range(udb1, 24.0, 28.0)
        g = dict(zip((xt.xid for xt in udb1.xtuples), result.g_by_xtuple))
        assert g["S2"] == 0.0  # t2 (30) and t3 (22) both outside

    def test_g_values_sum_to_quality(self, udb1):
        result = compute_quality_range(udb1, 20.0, 31.0)
        assert math.fsum(result.g_by_xtuple) == pytest.approx(
            result.quality, abs=1e-12
        )

    def test_whole_domain_range_measures_entity_entropy(self, udb1):
        # Range covering everything: each complete x-tuple contributes
        # the negated entropy of its alternatives.
        result = compute_quality_range(udb1, -1e9, 1e9)
        g = dict(zip((xt.xid for xt in udb1.xtuples), result.g_by_xtuple))
        expected_s1 = 0.6 * math.log2(0.6) + 0.4 * math.log2(0.4)
        assert g["S1"] == pytest.approx(expected_s1)

    @settings(max_examples=80, deadline=None)
    @given(
        databases(),
        st.floats(min_value=-1.0, max_value=13.0),
        st.floats(min_value=0.0, max_value=14.0),
    )
    def test_closed_form_matches_bruteforce_random(self, db, low, width):
        high = low + width
        assert compute_quality_range(db, low, high).quality == pytest.approx(
            compute_quality_range_bruteforce(db, low, high), abs=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(databases())
    def test_quality_nonpositive_and_bounded(self, db):
        result = compute_quality_range(db, 0.0, 12.0)
        assert result.quality <= 1e-12
        for g, mass in zip(result.g_by_xtuple, result.in_range_mass_by_xtuple):
            assert g <= 1e-12
            assert -1e-9 <= mass <= 1.0 + 1e-9


class TestRangeCleaning:
    def _problem(self, udb1, budget=4):
        costs = {"S1": 1, "S2": 1, "S3": 1, "S4": 1}
        sc = {"S1": 0.5, "S2": 0.5, "S3": 0.5, "S4": 0.5}
        return build_range_cleaning_problem(udb1, 25.0, 30.0, costs, sc, budget)

    def test_candidates_exclude_unambiguous_entities(self, udb1):
        problem = self._problem(udb1)
        names = {problem.xtuple_id(l) for l in problem.candidate_indices()}
        # S4 certain, S2 has zero g in [24, 28]... here range [25, 30]:
        # S2 contributes (t2 in range), S4 certain-in-range -> excluded.
        assert "S4" not in names
        assert {"S1", "S2", "S3"} >= names
        assert "S3" in names

    def test_theorem2_analog_matches_outcome_enumeration(self, udb1):
        """Cleaning τ_l zeroes g_l on success; the closed-form expected
        improvement must equal the explicit outcome average."""
        problem = self._problem(udb1)
        plan = CleaningPlan(operations={"S3": 2})
        fast = expected_improvement(problem, plan)

        s3 = udb1.xtuple("S3")
        p_success = success_probability(0.5, 2)
        before = compute_quality_range(udb1, 25.0, 30.0).quality
        expected_after = (1 - p_success) * before
        for t in s3.alternatives:
            cleaned = udb1.with_xtuple_replaced("S3", s3.collapsed_to(t.tid))
            expected_after += (
                p_success
                * t.probability
                * compute_quality_range(cleaned, 25.0, 30.0).quality
            )
        assert fast == pytest.approx(expected_after - before, abs=1e-9)

    def test_planners_work_on_range_problems(self, udb1):
        problem = self._problem(udb1, budget=3)
        for planner in (DPCleaner(), GreedyCleaner()):
            plan = planner.plan(problem)
            assert plan.is_feasible(problem)
            assert expected_improvement(problem, plan) > 0.0

    def test_dp_optimal_on_range_problem(self, udb1):
        problem = self._problem(udb1, budget=3)
        candidates = problem.candidate_indices()
        best = 0.0
        ranges = [range(problem.max_operations(l) + 1) for l in candidates]
        for combo in itertools.product(*ranges):
            cost = sum(
                problem.costs[l] * m for l, m in zip(candidates, combo)
            )
            if cost > problem.budget:
                continue
            plan = CleaningPlan(
                operations={
                    problem.xtuple_id(l): m
                    for l, m in zip(candidates, combo)
                    if m > 0
                }
            )
            best = max(best, expected_improvement(problem, plan))
        dp_value = expected_improvement(problem, DPCleaner().plan(problem))
        assert dp_value == pytest.approx(best, abs=1e-9)

    def test_mapping_validation(self, udb1):
        with pytest.raises(InvalidQueryError):
            build_range_cleaning_problem(
                udb1, 25.0, 30.0, {"S1": 1}, {"S1": 0.5}, 4
            )
        with pytest.raises(InvalidQueryError):
            build_range_cleaning_problem(
                udb1, 25.0, 30.0, [1, 1], [0.5, 0.5, 0.5, 0.5], 4
            )
