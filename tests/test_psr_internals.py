"""Unit tests of PSR's Poisson-binomial vector primitives.

These pin the numerical behaviour the integration tests rely on:
add/remove round-trips, the capped vector's exactness on its first k
entries, and the rebuild fallback used for high factors.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.psr import (
    _add_factor,
    _rebuild_without,
    _remove_factor_forward,
)


def _poisson_binomial(factors, k):
    """Reference: full convolution, truncated to the first k entries."""
    dp = [1.0] + [0.0] * len(factors)
    for q in factors:
        for s in range(len(dp) - 1, 0, -1):
            dp[s] = dp[s] * (1 - q) + dp[s - 1] * q
        dp[0] *= 1 - q
    return dp[:k] + [0.0] * max(0, k - len(dp))


class TestAddFactor:
    def test_single_factor(self):
        dp = [1.0, 0.0, 0.0]
        _add_factor(dp, 0.3)
        assert dp == pytest.approx([0.7, 0.3, 0.0])

    def test_capped_prefix_stays_exact(self):
        factors = [0.2, 0.5, 0.7, 0.9]
        k = 3
        dp = [1.0] + [0.0] * (k - 1)
        for q in factors:
            _add_factor(dp, q)
        assert dp == pytest.approx(_poisson_binomial(factors, k), abs=1e-12)

    def test_zero_factor_is_identity(self):
        dp = [0.4, 0.6, 0.0]
        _add_factor(dp, 0.0)
        assert dp == pytest.approx([0.4, 0.6, 0.0])

    def test_one_factor_shifts(self):
        dp = [0.4, 0.6, 0.0]
        _add_factor(dp, 1.0)
        assert dp == pytest.approx([0.0, 0.4, 0.6])


class TestRemoveFactor:
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=0.5), min_size=1, max_size=6
        ),
        st.integers(0, 5),
    )
    def test_remove_inverts_add(self, factors, remove_index):
        remove_index %= len(factors)
        k = 4
        dp = [1.0] + [0.0] * (k - 1)
        for q in factors:
            _add_factor(dp, q)
        removed = _remove_factor_forward(dp, factors[remove_index])
        rest = factors[:remove_index] + factors[remove_index + 1 :]
        assert removed == pytest.approx(_poisson_binomial(rest, k), abs=1e-9)

    def test_remove_last_factor_restores_unit_vector(self):
        dp = [1.0, 0.0, 0.0]
        _add_factor(dp, 0.25)
        restored = _remove_factor_forward(dp, 0.25)
        assert restored == pytest.approx([1.0, 0.0, 0.0], abs=1e-12)

    def test_roundoff_clamped_nonnegative(self):
        dp = [1.0, 0.0]
        _add_factor(dp, 0.5)
        out = _remove_factor_forward(dp, 0.5)
        assert all(v >= 0.0 for v in out)


class TestRebuild:
    def test_rebuild_skips_requested_factor(self):
        active = {0: 0.9, 1: 0.3, 2: 0.6}
        k = 3
        rebuilt = _rebuild_without(active, 0, k)
        assert rebuilt == pytest.approx(_poisson_binomial([0.3, 0.6], k))

    def test_rebuild_with_missing_skip_uses_all(self):
        active = {1: 0.3, 2: 0.6}
        rebuilt = _rebuild_without(active, 99, 3)
        assert rebuilt == pytest.approx(_poisson_binomial([0.3, 0.6], 3))

    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0.5, max_value=0.99), min_size=2, max_size=5))
    def test_rebuild_agrees_with_reference_for_high_factors(self, factors):
        active = dict(enumerate(factors))
        k = 4
        for skip in active:
            rest = [q for l, q in active.items() if l != skip]
            assert _rebuild_without(active, skip, k) == pytest.approx(
                _poisson_binomial(rest, k), abs=1e-12
            )


class TestConsistency:
    @settings(max_examples=60)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=7)
    )
    def test_vector_entries_are_probabilities(self, factors):
        k = 5
        dp = [1.0] + [0.0] * (k - 1)
        for q in factors:
            _add_factor(dp, q)
        assert all(-1e-12 <= v <= 1.0 + 1e-12 for v in dp)
        assert math.fsum(dp) <= 1.0 + 1e-9
