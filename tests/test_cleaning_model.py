"""Validation and value-object behaviour of the cleaning model."""

import math

import pytest

from repro.cleaning.model import (
    CleaningPlan,
    CleaningProblem,
    EMPTY_PLAN,
    build_cleaning_problem,
)
from repro.core.tp import compute_quality_tp
from repro.exceptions import InvalidCleaningProblemError


@pytest.fixture
def quality(udb1):
    return compute_quality_tp(udb1.ranked(), 2)


def _problem(quality, budget=10, costs=None, sc=None):
    costs = costs or {"S1": 1, "S2": 2, "S3": 3, "S4": 4}
    sc = sc or {"S1": 0.5, "S2": 0.5, "S3": 0.5, "S4": 0.5}
    return build_cleaning_problem(quality, costs, sc, budget)


class TestBuildCleaningProblem:
    def test_arrays_follow_database_order(self, udb1, quality):
        problem = _problem(quality)
        assert problem.costs == (1, 2, 3, 4)
        assert problem.xtuple_id(0) == "S1"
        assert problem.xtuple_index("S3") == 2

    def test_sequence_inputs_accepted(self, quality):
        problem = build_cleaning_problem(
            quality, [1, 1, 1, 1], [0.5, 0.5, 0.5, 0.5], 5
        )
        assert problem.costs == (1, 1, 1, 1)

    def test_missing_mapping_entry_rejected(self, quality):
        with pytest.raises(InvalidCleaningProblemError):
            build_cleaning_problem(quality, {"S1": 1}, {"S1": 0.5}, 5)

    def test_unknown_mapping_entry_rejected(self, quality):
        costs = {"S1": 1, "S2": 1, "S3": 1, "S4": 1, "S9": 1}
        sc = {xid: 0.5 for xid in ("S1", "S2", "S3", "S4")}
        with pytest.raises(InvalidCleaningProblemError):
            build_cleaning_problem(quality, costs, sc, 5)

    def test_wrong_sequence_length_rejected(self, quality):
        with pytest.raises(InvalidCleaningProblemError):
            build_cleaning_problem(quality, [1, 1], [0.5] * 4, 5)

    @pytest.mark.parametrize("budget", [-1, 1.5, "10", None])
    def test_invalid_budget_rejected(self, quality, budget):
        with pytest.raises(InvalidCleaningProblemError):
            _problem(quality, budget=budget)

    @pytest.mark.parametrize("cost", [0, -3, 1.5, True])
    def test_invalid_cost_rejected(self, quality, cost):
        with pytest.raises(InvalidCleaningProblemError):
            _problem(quality, costs={"S1": cost, "S2": 1, "S3": 1, "S4": 1})

    @pytest.mark.parametrize("p", [-0.1, 1.1, float("nan")])
    def test_invalid_sc_probability_rejected(self, quality, p):
        with pytest.raises(InvalidCleaningProblemError):
            _problem(quality, sc={"S1": p, "S2": 0.5, "S3": 0.5, "S4": 0.5})

    def test_positive_g_rejected(self, udb1, quality):
        with pytest.raises(InvalidCleaningProblemError):
            CleaningProblem(
                ranked=quality.ranked,
                k=2,
                g_by_xtuple=(0.5, 0.0, 0.0, 0.0),
                topk_mass_by_xtuple=(0.0,) * 4,
                costs=(1,) * 4,
                sc_probabilities=(0.5,) * 4,
                budget=5,
            )


class TestProblemAccessors:
    def test_quality_is_g_sum(self, quality):
        problem = _problem(quality)
        assert problem.quality == pytest.approx(quality.quality, abs=1e-12)

    def test_max_operations(self, quality):
        problem = _problem(quality, budget=10)
        assert problem.max_operations(0) == 10  # cost 1
        assert problem.max_operations(3) == 2  # cost 4

    def test_with_budget_preserves_everything_else(self, quality):
        problem = _problem(quality, budget=10)
        other = problem.with_budget(3)
        assert other.budget == 3
        assert other.costs == problem.costs
        assert other.g_by_xtuple == problem.g_by_xtuple

    def test_candidates_drop_unaffordable(self, quality):
        problem = _problem(quality, budget=2)
        names = {problem.xtuple_id(l) for l in problem.candidate_indices()}
        # S3 costs 3 > budget 2; S4 has g = 0.
        assert names == {"S1", "S2"}

    def test_candidates_drop_zero_sc(self, quality):
        problem = _problem(
            quality, sc={"S1": 0.0, "S2": 0.5, "S3": 0.5, "S4": 0.5}
        )
        names = {problem.xtuple_id(l) for l in problem.candidate_indices()}
        assert "S1" not in names

    def test_unknown_xtuple_index_rejected(self, quality):
        problem = _problem(quality)
        with pytest.raises(InvalidCleaningProblemError):
            problem.xtuple_index("S9")


class TestCleaningPlan:
    def test_empty_plan(self, quality):
        problem = _problem(quality)
        assert len(EMPTY_PLAN) == 0
        assert EMPTY_PLAN.total_cost(problem) == 0
        assert EMPTY_PLAN.is_feasible(problem)
        assert EMPTY_PLAN.count("S1") == 0

    def test_cost_accounting(self, quality):
        problem = _problem(quality)
        plan = CleaningPlan(operations={"S1": 3, "S3": 2})
        assert plan.total_operations == 5
        assert plan.total_cost(problem) == 3 * 1 + 2 * 3
        assert "S1" in plan
        assert "S2" not in plan

    def test_feasibility(self, quality):
        problem = _problem(quality, budget=5)
        assert CleaningPlan(operations={"S1": 5}).is_feasible(problem)
        assert not CleaningPlan(operations={"S1": 6}).is_feasible(problem)

    @pytest.mark.parametrize("count", [0, -1, 1.5, "2"])
    def test_invalid_counts_rejected(self, count):
        with pytest.raises(InvalidCleaningProblemError):
            CleaningPlan(operations={"S1": count})

    def test_operations_are_copied(self):
        source = {"S1": 1}
        plan = CleaningPlan(operations=source)
        source["S2"] = 5
        assert "S2" not in plan
